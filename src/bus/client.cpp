#include "bus/client.hpp"

#include "obs/export.hpp"
#include "support/diag.hpp"
#include "trace/assemble.hpp"

namespace surgeon::bus {

std::optional<ser::StateBuffer> Client::decode_state() {
  auto bytes = bus_->take_incoming_state(module_);
  if (!bytes.has_value()) return std::nullopt;
  return ser::StateBuffer::decode(*bytes);
}

std::string Client::mh_stats(const std::string& format) const {
  static const obs::MetricsRegistry kEmpty;
  const obs::MetricsRegistry* registry = bus_->metrics();
  if (registry == nullptr) registry = &kEmpty;
  if (format == "prometheus") return obs::to_prometheus(*registry);
  if (format == "json") return obs::to_json(*registry);
  throw support::BusError("mh_stats: unknown format '" + format +
                          "' (expected \"prometheus\" or \"json\")");
}

std::string Client::mh_top(const std::string& format) const {
  if (format != "table" && format != "json") {
    throw support::BusError("mh_top: unknown format '" + format +
                            "' (expected \"table\" or \"json\")");
  }
  const TopHandler& handler = bus_->top_handler();
  if (!handler) return format == "json" ? "{}" : "";
  return handler(format);
}

std::string Client::mh_slo(const std::string& format) const {
  if (format != "text" && format != "json") {
    throw support::BusError("mh_slo: unknown format '" + format +
                            "' (expected \"text\" or \"json\")");
  }
  const SloHandler& handler = bus_->slo_handler();
  if (!handler) return format == "json" ? "{}" : "";
  return handler(format);
}

std::string Client::mh_trace(const std::string& format, bool drain) {
  if (format != "json" && format != "text") {
    throw support::BusError("mh_trace: unknown format '" + format +
                            "' (expected \"json\" or \"text\")");
  }
  trace::Recorder* recorder = bus_->tracer();
  if (recorder == nullptr) return format == "json" ? "[]\n" : "";
  const std::string& machine = bus_->module_info(module_).machine;
  std::vector<trace::Event> events;
  if (drain) {
    events = recorder->drain(machine);
  } else {
    const auto& journal = recorder->journal(machine);
    events.assign(journal.begin(), journal.end());
  }
  return format == "json" ? trace::events_to_json(events)
                          : trace::events_to_text(events);
}

}  // namespace surgeon::bus
