#include "bus/client.hpp"

#include "obs/export.hpp"
#include "support/diag.hpp"

namespace surgeon::bus {

std::optional<ser::StateBuffer> Client::decode_state() {
  auto bytes = bus_->take_incoming_state(module_);
  if (!bytes.has_value()) return std::nullopt;
  return ser::StateBuffer::decode(*bytes);
}

std::string Client::mh_stats(const std::string& format) const {
  static const obs::MetricsRegistry kEmpty;
  const obs::MetricsRegistry* registry = bus_->metrics();
  if (registry == nullptr) registry = &kEmpty;
  if (format == "prometheus") return obs::to_prometheus(*registry);
  if (format == "json") return obs::to_json(*registry);
  throw support::BusError("mh_stats: unknown format '" + format +
                          "' (expected \"prometheus\" or \"json\")");
}

}  // namespace surgeon::bus
