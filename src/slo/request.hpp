// Streaming request assembler (surgeon::slo).
//
// trace::assemble_requests folds journaled events into per-request hop
// breakdowns after the fact — which is the right tool for debugging, but
// the rings evict under sustained load. The RequestTracker instead hangs
// off the Recorder's observer hook, which fires for EVERY event before any
// eviction, and folds the same send/deliver/receive chain incrementally:
// the SLO plane therefore never loses a completion to ring pressure, no
// matter how small the flight-recorder capacity is.
//
// The open-request table is bounded: a workload that opens requests faster
// than they complete (or whose tail never reaches a terminal) evicts its
// oldest open entry and ticks `evicted_open`, so memory stays proportional
// to in-flight traffic across a million-request day.
#pragma once

#include <cstdint>
#include <map>

#include "slo/slo.hpp"
#include "trace/event.hpp"

namespace surgeon::slo {

class RequestTracker {
 public:
  explicit RequestTracker(std::size_t max_open = 65'536)
      : max_open_(max_open) {}

  /// Feed from trace::Recorder::add_observer. Events without a request id
  /// return immediately (one branch on the untagged path).
  void observe(const trace::Event& ev);

  /// Completed requests since the last drain, completion order.
  [[nodiscard]] std::vector<Completion> drain();
  [[nodiscard]] std::size_t pending() const noexcept {
    return completed_.size();
  }
  [[nodiscard]] std::size_t open() const noexcept { return open_.size(); }
  /// Open entries evicted by the max_open bound (requests that will never
  /// report a completion).
  [[nodiscard]] std::uint64_t evicted_open() const noexcept {
    return evicted_open_;
  }
  [[nodiscard]] std::uint64_t completions_total() const noexcept {
    return completions_total_;
  }

 private:
  struct Open {
    net::SimTime started_at = 0;
    bool partial = false;  // an expected record was missing
    Completion::Hop pending_hop;  // hop being assembled (deliver seen)
    bool hop_open = false;
    net::SimTime received_at = 0;  // last receive (handler interval start)
    net::SimTime upstream_sent_at = 0;  // last send (queue interval start)
    std::vector<Completion::Hop> hops;
  };

  void complete(std::uint64_t request, Open&& open, net::SimTime at);

  std::size_t max_open_;
  // Ordered map: eviction removes the lowest (oldest) request id.
  std::map<std::uint64_t, Open> open_;
  std::vector<Completion> completed_;
  std::uint64_t evicted_open_ = 0;
  std::uint64_t completions_total_ = 0;
};

}  // namespace surgeon::slo
