// Streaming SLO engine (surgeon::slo).
//
// The paper's transparency claim — reconfiguration must be invisible to the
// running application — is only testable at the granularity applications
// care about: the request. This module turns the request-scoped trace
// stream (trace::Event::request, assembled by slo::RequestTracker) into
// service-level objective arithmetic:
//
//   Objective   a data-driven target, e.g. "p99 of pipeline end-to-end
//               latency < 2000us over a 60s window", plus the two
//               burn-rate detector windows (fast/slow) that make alerts
//               both quick on sharp regressions and quiet on noise
//               (the SRE multi-window multi-burn-rate pattern).
//
//   Engine      sliding slot-ring windows per objective (good/bad counts)
//               and per service (hop-time attribution), fed one completed
//               request at a time. evaluate() runs the detectors and
//               returns edge-triggered AlertEvents with ascending ids —
//               the id sequence is part of the divulged state, which is
//               what makes "no alert lost or duplicated across monitor
//               replacement" an assertable property.
//
// The engine is deliberately bus-free: slo::Monitor owns one, wires it to
// ingest traffic, metrics, and the mh_slo query, and moves it across a
// Figure-5 replacement as an abstract state buffer.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/sim.hpp"
#include "serialize/state.hpp"

namespace surgeon::slo {

/// One service-level objective over end-to-end request latency.
struct Objective {
  std::string name;     // unique, e.g. "pipeline-p99"
  std::string service;  // completions are keyed by service
  double quantile = 0.99;           // latency quantile the threshold bounds
  net::SimTime threshold_us = 0;    // a request is "bad" above this
  net::SimTime window_us = 60'000'000;       // attainment window
  net::SimTime fast_window_us = 5'000'000;   // fast burn detector window
  net::SimTime slow_window_us = 60'000'000;  // slow burn detector window
  double fast_burn = 14.0;  // fire when burn(fast) >= this ...
  double slow_burn = 6.0;   // ... AND burn(slow) >= this

  friend bool operator==(const Objective&, const Objective&) = default;
};

/// Parses the compact objective spec the tools take on the command line:
///
///   "<name> service=<svc> p<QQ[.Q]><<T><us|ms|s> [window=<D>]
///    [fast=<D>@<burn>] [slow=<D>@<burn>]"
///
/// e.g. "pipeline-p99 service=pipeline p99<2000us window=60s fast=5s@14
/// slow=60s@6". Omitted windows keep the defaults above (slow window
/// defaults to the attainment window). Throws support::BusError on a
/// malformed spec.
Objective parse_objective(const std::string& spec);

/// One finished request, as streamed by slo::Probe.
struct Completion {
  std::uint64_t request = 0;
  net::SimTime started_at = 0;
  net::SimTime completed_at = 0;
  net::SimTime latency_us = 0;
  bool complete = true;  // every hop record survived (informational)
  struct Hop {
    std::string module;
    /// Upstream send -> this module's receive: wire transit plus queue
    /// wait behind earlier traffic (the saturation signal).
    net::SimTime queue_us = 0;
    /// This module's receive -> its forwarding send (0 on the terminal).
    net::SimTime handler_us = 0;
  };
  std::vector<Hop> hops;
};

/// Edge-triggered alert, emitted by Engine::evaluate. Ids ascend across
/// fire AND clear events; the counter is divulged state, so a replacement
/// clone continues the sequence without gaps or repeats.
struct AlertEvent {
  enum class Kind : std::uint8_t { kFire, kClear };
  std::uint64_t id = 0;
  std::string objective;
  Kind kind = Kind::kFire;
  net::SimTime at = 0;
  double burn_fast = 0.0;
  double burn_slow = 0.0;
  double attainment = 1.0;
};

[[nodiscard]] const char* alert_kind_name(AlertEvent::Kind kind) noexcept;

struct EngineOptions {
  /// Window slot granularity; detector windows are rounded to it.
  net::SimTime slot_us = 1'000'000;
  /// Slots retained per ring (must cover the widest objective window).
  std::size_t slots = 128;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {}) : options_(options) {}

  /// Throws support::BusError on a duplicate objective name.
  void add_objective(Objective objective);
  [[nodiscard]] const std::vector<Objective>& objectives() const noexcept {
    return objectives_;
  }
  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }

  /// Accredits one completed request to every objective of its service and
  /// to the service's hop-attribution window.
  void observe(const std::string& service, const Completion& completion);

  /// Runs the burn-rate detectors at virtual time `now`; returns the edge
  /// transitions (fire/clear) since the last evaluation, ids ascending.
  [[nodiscard]] std::vector<AlertEvent> evaluate(net::SimTime now);

  /// Registers a replacement blackout window [from_us, to_us]: bad
  /// completions finishing inside one are counted as blackout-correlated.
  /// Windows are kept newest-first, bounded.
  void note_blackout(net::SimTime from_us, net::SimTime to_us);

  // --- reporting ----------------------------------------------------------

  struct ObjectiveStatus {
    const Objective* objective = nullptr;
    std::uint64_t window_total = 0;  // completions in the attainment window
    std::uint64_t window_bad = 0;
    double attainment = 1.0;  // good fraction over the attainment window
    double burn_fast = 0.0;
    double burn_slow = 0.0;
    bool firing = false;
    std::uint64_t violations_total = 0;  // bad completions, lifetime
    std::uint64_t blackout_violations_total = 0;
    std::uint64_t alerts_total = 0;  // fire events, lifetime
  };
  struct HopStatus {
    std::string module;
    std::uint64_t count = 0;
    net::SimTime queue_us = 0;    // summed over the window
    net::SimTime handler_us = 0;  // summed over the window
  };
  struct ServiceStatus {
    std::string service;
    std::uint64_t completions_total = 0;
    std::uint64_t window_completions = 0;
    std::vector<HopStatus> hops;  // sorted by module name
    std::string worst_hop;        // max queue+handler sum over the window
  };

  [[nodiscard]] std::vector<ObjectiveStatus> objective_status(
      net::SimTime now) const;
  [[nodiscard]] std::vector<ServiceStatus> service_status(
      net::SimTime now) const;
  [[nodiscard]] const std::vector<std::pair<net::SimTime, net::SimTime>>&
  blackouts() const noexcept {
    return blackouts_;
  }
  [[nodiscard]] std::uint64_t completions_total() const noexcept {
    return completions_total_;
  }
  /// The id the next alert event will carry (issued ids are 1-based and
  /// contiguous across fire AND clear events).
  [[nodiscard]] std::uint64_t next_alert_id() const noexcept {
    return next_alert_ + 1;
  }

  // --- Figure 5 participation ---------------------------------------------

  /// Everything needed to continue objective arithmetic and the alert id
  /// sequence elsewhere: objectives, window rings, lifetime counters,
  /// firing flags, blackout windows.
  [[nodiscard]] ser::StateBuffer encode_state() const;
  /// Replaces this engine's state with a divulged buffer (clone side).
  /// Throws support::BusError on an unknown format.
  void install_state(const ser::StateBuffer& state);

 private:
  struct ObjSlot {
    net::SimTime start_us = 0;
    std::uint64_t total = 0;
    std::uint64_t bad = 0;
  };
  struct HopAgg {
    std::uint64_t count = 0;
    net::SimTime queue_us = 0;
    net::SimTime handler_us = 0;
  };
  struct SvcSlot {
    net::SimTime start_us = 0;
    std::uint64_t completions = 0;
    std::map<std::string, HopAgg> hops;
  };
  struct ObjState {
    std::vector<ObjSlot> slots;  // oldest first
    bool firing = false;
    std::uint64_t violations_total = 0;
    std::uint64_t blackout_violations_total = 0;
    std::uint64_t alerts_total = 0;
  };
  struct SvcState {
    std::vector<SvcSlot> slots;  // oldest first
    std::uint64_t completions_total = 0;
  };

  [[nodiscard]] bool in_blackout(net::SimTime at) const;
  template <typename Slot>
  Slot& slot_for(std::vector<Slot>& ring, net::SimTime at);
  /// Sums {total, bad} over slots overlapping [now - window, now].
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> window_counts(
      const std::vector<ObjSlot>& ring, net::SimTime now,
      net::SimTime window_us) const;
  [[nodiscard]] static double burn_rate(std::uint64_t total, std::uint64_t bad,
                                        double quantile);

  EngineOptions options_;
  std::vector<Objective> objectives_;
  std::map<std::string, ObjState> obj_state_;      // by objective name
  std::map<std::string, SvcState> svc_state_;      // by service
  std::vector<std::pair<net::SimTime, net::SimTime>> blackouts_;
  std::uint64_t completions_total_ = 0;
  std::uint64_t next_alert_ = 0;
};

}  // namespace surgeon::slo
