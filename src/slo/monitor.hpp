// The SLO plane's bus modules (surgeon::slo).
//
// Mirrors the telemetry plane's Reporter/Collector split (surgeon::profile),
// and for the same reason: by making both halves real bus modules whose
// traffic rides ordinary bindings, the SLO pipeline is faulted by chaos,
// sequenced by the reliable layer, and survives replacement via queue
// capture — the alert stream is as observable (and as protected) as the
// application traffic it judges.
//
//   Probe     holds the streaming RequestTracker (fed straight off the
//             flight recorder's observer hook, so it never loses a
//             completion to ring eviction), batches finished requests, and
//             streams them on its "records" interface to the monitor.
//
//   Monitor   drains "records" into the slo::Engine, publishes alert
//             events as ordinary bus messages on its "alerts" interface
//             AND as surgeon_slo_* metrics through obs, and answers the
//             mh_slo query. Replaceable by the Figure-5 script below: the
//             engine state (windows, lifetime counters, the alert id
//             sequence, blackout windows) moves as an abstract state
//             buffer, so a replacement neither loses nor re-fires alerts.
//
// Record-stream wire format, one message per batch on records -> ingest:
//   [service, count, { request, started_at, completed_at, latency_us,
//                      complete, nhops, { module, queue_us, handler_us
//                    }*nhops }*count]
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bus/bus.hpp"
#include "bus/client.hpp"
#include "obs/metrics.hpp"
#include "slo/request.hpp"
#include "slo/slo.hpp"

namespace surgeon::slo {

/// ModuleInfo.source tag for SLO-plane modules (keeps them recognizable
/// and lets the telemetry Reporter keep streaming their bus metrics —
/// unlike the telemetry plane itself, the SLO plane cannot feed back into
/// its own input, which is the trace stream, not the metrics registry).
inline constexpr const char* kSloSource = "builtin:slo";

// --- Probe -------------------------------------------------------------------

struct ProbeOptions {
  /// Drain cadence on the virtual clock.
  net::SimTime tick_us = 50'000;
  /// Completions per record-stream message (amortizes per-message bus cost
  /// so the enabled-path overhead stays inside the bench budget).
  std::size_t batch = 64;
  /// A partial batch is held back until its oldest completion is this old,
  /// so a trickle of traffic doesn't cost one bus message per request.
  /// Bounded staleness: small against the burn-rate detector windows.
  net::SimTime linger_us = 100'000;
  /// Idle backoff cap: each tick that drains nothing doubles the next
  /// delay up to this bound, so an idle probe costs O(1/max_tick_us) sim
  /// events instead of O(1/tick_us). First traffic after a quiet stretch
  /// waits at most this long for pickup; the next tick snaps back to
  /// tick_us.
  net::SimTime max_tick_us = 1'000'000;
  /// RequestTracker open-table bound.
  std::size_t max_open = 65'536;
};

class Probe {
 public:
  /// Registers module "sloprobe@<machine>" on `machine`, binds "records"
  /// to `monitor_module`.ingest, subscribes the tracker to `recorder`, and
  /// starts ticking. `service` labels every batch from this probe.
  Probe(bus::Bus& bus, trace::Recorder& recorder, std::string machine,
        std::string service, std::string monitor_module,
        ProbeOptions options = {});
  ~Probe();

  Probe(const Probe&) = delete;
  Probe& operator=(const Probe&) = delete;

  [[nodiscard]] const std::string& module_name() const noexcept {
    return module_;
  }
  [[nodiscard]] const RequestTracker& tracker() const noexcept {
    return tracker_;
  }
  /// Drains and streams everything immediately, partial batch included
  /// (tests and shutdown; the tick lingers partial batches instead).
  void flush();
  /// Stops the tick chain and the observer subscription.
  void stop() noexcept;

  [[nodiscard]] std::uint64_t batches_sent() const noexcept {
    return batches_sent_;
  }

 private:
  void schedule_tick();
  bool drain(bool force);
  void send_batch(std::size_t n);

  bus::Bus* bus_;
  trace::Recorder* recorder_;
  std::string machine_;
  std::string service_;
  std::string module_;
  bus::Client client_;
  ProbeOptions options_;
  RequestTracker tracker_;
  trace::Recorder::ObserverId observer_ = 0;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
  std::uint64_t batches_sent_ = 0;
  net::SimTime delay_us_ = 0;           // current tick delay (idle backoff)
  std::vector<Completion> pending_;     // drained, not yet streamed
  net::SimTime pending_since_ = 0;      // when pending_ became non-empty
};

// --- Monitor -----------------------------------------------------------------

struct MonitorOptions {
  /// Processing cadence: drain ingest, run the detectors, publish.
  net::SimTime tick_us = 50'000;
  /// Idle backoff cap (see ProbeOptions::max_tick_us): a tick that applies
  /// no records doubles the next delay up to this bound. Record batches
  /// arriving after a quiet stretch wait at most this long before the
  /// detectors see them.
  net::SimTime max_tick_us = 1'000'000;
  EngineOptions engine;
};

class Monitor {
 public:
  /// Registers the monitor module (interfaces: "ingest" use, "alerts"
  /// define) on `machine`. STATUS "new" activates immediately; "clone"
  /// stays passive until a state buffer arrives (Figure 4 discipline).
  Monitor(bus::Bus& bus, std::string module_name, std::string machine,
          MonitorOptions options = {}, std::string status = "new");
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  [[nodiscard]] const std::string& module_name() const noexcept {
    return module_;
  }
  [[nodiscard]] const MonitorOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] bool passivated() const noexcept { return passivated_; }
  [[nodiscard]] const Engine& engine() const noexcept { return engine_; }
  [[nodiscard]] std::uint64_t records_applied() const noexcept {
    return records_applied_;
  }
  [[nodiscard]] std::uint64_t malformed_dropped() const noexcept {
    return malformed_;
  }
  [[nodiscard]] std::uint64_t alerts_published() const noexcept {
    return alerts_published_;
  }

  /// Adds an objective to the engine ("new" instances; clones inherit the
  /// divulged objective set instead).
  void add_objective(Objective objective);
  /// Registers a replacement blackout window for violation correlation.
  void note_blackout(net::SimTime from_us, net::SimTime to_us);

  /// The mh_slo rendering: "text" or "json" (deterministic; byte-stable
  /// across a replacement of the monitor itself).
  [[nodiscard]] std::string report(const std::string& format) const;

  /// Removes the module from the bus and stops the tick chain.
  void retire();

  // --- Figure 5 participation ---------------------------------------------

  [[nodiscard]] ser::StateBuffer encode_state() const;
  void install_state(const ser::StateBuffer& state);

  /// One processing step, exposed for deterministic tests; normally driven
  /// by the virtual-clock tick chain.
  void tick();

 private:
  void schedule_tick();
  void activate();
  void apply(const bus::Message& msg);
  void publish_alert(const AlertEvent& ev);
  void refresh_gauges(net::SimTime now);
  [[nodiscard]] std::string report_text(net::SimTime now) const;
  [[nodiscard]] std::string report_json(net::SimTime now) const;

  // Per-objective gauge handles, resolved once (registry nodes are
  // reference-stable): a labeled lookup builds a label map per call, which
  // would dominate refresh_gauges on every productive tick.
  struct GaugeSet {
    obs::Gauge* attainment;
    obs::Gauge* burn_fast;
    obs::Gauge* burn_slow;
    obs::Gauge* firing;
  };
  GaugeSet& gauges_for(const std::string& objective);

  bus::Bus* bus_;
  std::string module_;
  std::string machine_;
  MonitorOptions options_;
  bus::Client client_;
  Engine engine_;
  std::map<std::string, GaugeSet> gauges_;
  bool active_ = false;
  bool passivated_ = false;
  // Evaluation gate: the window arithmetic is slot-granular, so with no new
  // records the detector verdict can only change when the clock crosses a
  // slot boundary. Idle ticks inside a slot skip the engine entirely.
  bool evaluated_once_ = false;
  net::SimTime eval_slot_ = 0;
  std::uint64_t eval_records_ = 0;
  std::uint64_t records_applied_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t alerts_published_ = 0;
  net::SimTime delay_us_ = 0;  // current tick delay (idle backoff)
  std::uint64_t slo_token_ = 0;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

// --- Figure-5 replacement of the monitor -------------------------------------

struct ReplaceMonitorReport {
  std::string old_instance;
  std::string new_instance;
  net::SimTime requested_at = 0;
  net::SimTime divulged_at = 0;
  net::SimTime restored_at = 0;
  std::size_t state_bytes = 0;
};

/// Replaces the monitor with a clone (optionally on another machine),
/// following the same Figure-5 steps (and obs::Span names) as
/// profile::replace_collector. Queued record batches migrate via queue
/// capture; the alert id sequence rides the state buffer, so subscribers
/// see every alert exactly once across the swap. `pump` advances the world
/// one scheduling round; `monitor` is swapped for the clone on success.
ReplaceMonitorReport replace_monitor(bus::Bus& bus,
                                     std::unique_ptr<Monitor>& monitor,
                                     const std::string& machine,
                                     const std::function<bool()>& pump,
                                     std::uint64_t max_rounds = 1'000'000);

}  // namespace surgeon::slo
