#include "slo/request.hpp"

#include <utility>

namespace surgeon::slo {

namespace {

constexpr const char* kTerminalSuffix = " (terminal)";

bool is_terminal_detail(const std::string& detail) {
  const std::size_t n = std::char_traits<char>::length(kTerminalSuffix);
  return detail.size() >= n &&
         detail.compare(detail.size() - n, n, kTerminalSuffix) == 0;
}

}  // namespace

void RequestTracker::observe(const trace::Event& ev) {
  if (ev.request == 0) return;  // untagged traffic: one branch and out
  switch (ev.kind) {
    case trace::EventKind::kSend: {
      if (ev.cause == 0) {
        // Entry send: the synthetic request context carries no event id.
        if (open_.size() >= max_open_ && !open_.contains(ev.request)) {
          // Oldest first: lowest request id. The workload outruns its
          // completions; shedding the oldest keeps memory bounded.
          open_.erase(open_.begin());
          ++evicted_open_;
        }
        Open& open = open_[ev.request];
        open.started_at = ev.at;
        open.upstream_sent_at = ev.at;
        break;
      }
      auto it = open_.find(ev.request);
      if (it == open_.end()) break;
      Open& open = it->second;
      // Handler interval of the module's hop: receive -> first send.
      if (!open.hops.empty() && open.hops.back().module == ev.module &&
          open.hops.back().handler_us == 0 && open.received_at != 0) {
        open.hops.back().handler_us = ev.at - open.received_at;
      }
      open.upstream_sent_at = ev.at;
      break;
    }
    case trace::EventKind::kDeliver: {
      auto it = open_.find(ev.request);
      if (it == open_.end()) break;
      Open& open = it->second;
      if (open.hop_open) open.partial = true;  // receive never arrived
      open.hop_open = true;
      open.pending_hop = Completion::Hop{ev.module, 0, 0};
      open.received_at = 0;
      // Reuse queue_us as scratch for the deliver timestamp until the
      // receive closes the interval.
      open.pending_hop.queue_us = ev.at;
      break;
    }
    case trace::EventKind::kReceive: {
      auto it = open_.find(ev.request);
      if (it == open_.end()) break;
      Open& open = it->second;
      if (open.hop_open && open.pending_hop.module == ev.module) {
        // Queue interval: upstream send -> this receive (wire transit plus
        // any wait behind earlier messages and the handler's own slices).
        // The deliver timestamp is the fallback when no send was seen.
        const net::SimTime from = open.upstream_sent_at != 0
                                      ? open.upstream_sent_at
                                      : open.pending_hop.queue_us;
        open.pending_hop.queue_us = ev.at - from;
      } else {
        // Deliver record never observed (tracker attached mid-request);
        // keep the hop with an unknown queue interval.
        open.pending_hop = Completion::Hop{ev.module, 0, 0};
        open.partial = true;
      }
      open.hop_open = false;
      open.received_at = ev.at;
      open.hops.push_back(std::move(open.pending_hop));
      if (is_terminal_detail(ev.detail)) {
        complete(ev.request, std::move(open), ev.at);
        open_.erase(it);
      }
      break;
    }
    default:
      break;
  }
}

void RequestTracker::complete(std::uint64_t request, Open&& open,
                              net::SimTime at) {
  Completion done;
  done.request = request;
  done.started_at = open.started_at;
  done.completed_at = at;
  done.latency_us = at - open.started_at;
  done.complete = !open.partial && open.started_at != 0;
  done.hops = std::move(open.hops);
  ++completions_total_;
  completed_.push_back(std::move(done));
}

std::vector<Completion> RequestTracker::drain() {
  return std::exchange(completed_, {});
}

}  // namespace surgeon::slo
