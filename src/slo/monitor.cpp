#include "slo/monitor.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/diag.hpp"

namespace surgeon::slo {

namespace {

using support::BusError;

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string fmt_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string duration_text(net::SimTime us) {
  if (us % 1'000'000 == 0) return std::to_string(us / 1'000'000) + "s";
  if (us % 1'000 == 0) return std::to_string(us / 1'000) + "ms";
  return std::to_string(us) + "us";
}

std::string quantile_text(double quantile) {
  const double pct = quantile * 100.0;
  if (pct == static_cast<double>(static_cast<int>(pct))) {
    return std::to_string(static_cast<int>(pct));
  }
  return fmt_fixed(pct, 1);
}

}  // namespace

// --- Probe -------------------------------------------------------------------

Probe::Probe(bus::Bus& bus, trace::Recorder& recorder, std::string machine,
             std::string service, std::string monitor_module,
             ProbeOptions options)
    : bus_(&bus),
      recorder_(&recorder),
      machine_(std::move(machine)),
      service_(std::move(service)),
      module_("sloprobe@" + machine_),
      client_(bus, module_),
      options_(options),
      tracker_(options.max_open),
      delay_us_(options.tick_us) {
  bus::ModuleInfo info;
  info.name = module_;
  info.machine = machine_;
  info.source = kSloSource;
  info.interfaces.push_back(
      bus::InterfaceSpec{"records", bus::IfaceRole::kDefine, "", ""});
  bus_->add_module(std::move(info));
  bus_->add_binding(bus::BindingEnd{module_, "records"},
                    bus::BindingEnd{std::move(monitor_module), "ingest"});
  observer_ = recorder_->add_observer(
      [this](const trace::Event& ev) { tracker_.observe(ev); });
  schedule_tick();
}

Probe::~Probe() {
  stop();
  if (bus_->has_module(module_)) bus_->remove_module(module_);
}

void Probe::stop() noexcept {
  alive_.reset();
  if (observer_ != 0) {
    recorder_->remove_observer(observer_);
    observer_ = 0;
  }
}

void Probe::schedule_tick() {
  std::weak_ptr<int> alive = alive_;
  bus_->simulator().schedule_after(delay_us_, [this, alive] {
    if (alive.expired()) return;
    // Idle backoff: a tick that finds nothing (no fresh completions, no
    // partial batch waiting out its linger) doubles the next delay up to
    // max_tick_us, so an idle probe stops churning the event queue. Any
    // work snaps the cadence back to tick_us.
    if (drain(/*force=*/false) || !pending_.empty()) {
      delay_us_ = options_.tick_us;
    } else {
      delay_us_ = std::min(delay_us_ * 2,
                           std::max(options_.tick_us, options_.max_tick_us));
    }
    schedule_tick();
  });
}

void Probe::flush() { (void)drain(/*force=*/true); }

bool Probe::drain(bool force) {
  std::vector<Completion> done = tracker_.drain();
  if (!done.empty()) {
    if (pending_.empty()) pending_since_ = bus_->simulator().now();
    pending_.insert(pending_.end(), std::make_move_iterator(done.begin()),
                    std::make_move_iterator(done.end()));
  }
  while (pending_.size() >= options_.batch) send_batch(options_.batch);
  // The partial batch lingers up to linger_us: a trickle of traffic then
  // costs one bus message per linger window, not one per request.
  if (!pending_.empty() &&
      (force ||
       bus_->simulator().now() - pending_since_ >= options_.linger_us)) {
    send_batch(pending_.size());
  }
  return !done.empty();
}

void Probe::send_batch(std::size_t n) {
  std::vector<ser::Value> values;
  values.reserve(2 + n * 8);
  values.emplace_back(service_);
  values.emplace_back(static_cast<std::int64_t>(n));
  for (std::size_t k = 0; k < n; ++k) {
    const Completion& c = pending_[k];
    values.emplace_back(static_cast<std::int64_t>(c.request));
    values.emplace_back(static_cast<std::int64_t>(c.started_at));
    values.emplace_back(static_cast<std::int64_t>(c.completed_at));
    values.emplace_back(static_cast<std::int64_t>(c.latency_us));
    values.emplace_back(static_cast<std::int64_t>(c.complete ? 1 : 0));
    values.emplace_back(static_cast<std::int64_t>(c.hops.size()));
    for (const Completion::Hop& hop : c.hops) {
      values.emplace_back(hop.module);
      values.emplace_back(static_cast<std::int64_t>(hop.queue_us));
      values.emplace_back(static_cast<std::int64_t>(hop.handler_us));
    }
  }
  client_.write("records", std::move(values));
  ++batches_sent_;
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(n));
  pending_since_ = bus_->simulator().now();
}

// --- Monitor -----------------------------------------------------------------

Monitor::Monitor(bus::Bus& bus, std::string module_name, std::string machine,
                 MonitorOptions options, std::string status)
    : bus_(&bus),
      module_(std::move(module_name)),
      machine_(std::move(machine)),
      options_(options),
      client_(bus, module_),
      engine_(options.engine),
      delay_us_(options.tick_us) {
  bus::ModuleInfo info;
  info.name = module_;
  info.machine = machine_;
  info.status = status;
  info.source = kSloSource;
  info.interfaces.push_back(
      bus::InterfaceSpec{"ingest", bus::IfaceRole::kUse, "", ""});
  info.interfaces.push_back(
      bus::InterfaceSpec{"alerts", bus::IfaceRole::kDefine, "", ""});
  bus_->add_module(std::move(info));
  if (status == "new") activate();
  schedule_tick();
}

Monitor::~Monitor() {
  bus_->clear_slo_handler(slo_token_);
  retire();
}

void Monitor::retire() {
  alive_.reset();
  if (bus_->has_module(module_)) bus_->remove_module(module_);
}

void Monitor::activate() {
  active_ = true;
  slo_token_ = bus_->set_slo_handler(
      [this](const std::string& format) { return report(format); });
}

void Monitor::add_objective(Objective objective) {
  engine_.add_objective(std::move(objective));
  evaluated_once_ = false;  // re-arm the evaluation gate for the newcomer
}

void Monitor::note_blackout(net::SimTime from_us, net::SimTime to_us) {
  engine_.note_blackout(from_us, to_us);
  evaluated_once_ = false;
}

void Monitor::schedule_tick() {
  std::weak_ptr<int> alive = alive_;
  bus_->simulator().schedule_after(delay_us_, [this, alive] {
    if (alive.expired()) return;
    tick();
  });
}

void Monitor::tick() {
  if (passivated_) return;  // divulged; awaiting retirement, no reschedule
  if (!active_) {
    // Clone discipline (Figure 4): queued record batches wait untouched
    // until the divulged engine state arrives. A waiting clone keeps the
    // base cadence — its restore latency is someone's blackout.
    if (bus_->has_incoming_state(module_)) {
      auto bytes = bus_->take_incoming_state(module_);
      install_state(ser::StateBuffer::decode(*bytes));
    }
    delay_us_ = options_.tick_us;
    schedule_tick();
    return;
  }
  if (client_.take_pending_signal()) {
    // Passivate BEFORE draining: queued batches belong to the successor
    // and reach it via queue capture.
    (void)client_.encode_state(encode_state());
    passivated_ = true;
    return;
  }
  const std::uint64_t applied_before = records_applied_;
  while (auto msg = client_.try_read("ingest")) apply(*msg);
  // Idle backoff, mirroring the probe's: ticks that apply no records
  // stretch toward max_tick_us. Slot roll-over evaluations still happen
  // (the gate below keys on the clock, not the cadence), just no more
  // than once per backed-off tick.
  delay_us_ = records_applied_ != applied_before
                  ? options_.tick_us
                  : std::min(delay_us_ * 2,
                             std::max(options_.tick_us, options_.max_tick_us));
  const net::SimTime now = bus_->simulator().now();
  // The engine's windows are slot-granular: with no new records since the
  // last evaluation, the detector verdict (and every gauge) is unchanged
  // until the clock crosses a slot boundary. Skipping idle in-slot ticks
  // keeps the enabled-path cost proportional to traffic, not virtual time.
  const net::SimTime slot = now / engine_.options().slot_us;
  if (!evaluated_once_ || slot != eval_slot_ ||
      records_applied_ != eval_records_) {
    for (const AlertEvent& ev : engine_.evaluate(now)) publish_alert(ev);
    refresh_gauges(now);
    evaluated_once_ = true;
    eval_slot_ = slot;
    eval_records_ = records_applied_;
  }
  schedule_tick();
}

void Monitor::apply(const bus::Message& msg) {
  const std::vector<ser::Value>& v = msg.values;
  if (v.size() < 2 || !v[0].is_string() || !v[1].is_int()) {
    ++malformed_;
    return;
  }
  const std::string& service = v[0].as_string();
  const std::int64_t count = v[1].as_int();
  obs::MetricsRegistry* reg = bus_->metrics();
  const bool metrics_on = reg != nullptr && reg->enabled();
  // The service is constant across the batch: resolve the hot series once
  // (a labeled-map lookup per completion would dominate the apply path).
  // Violation counters stay lazily resolved -- violations are the rare
  // case, and eager resolution would surface zero-valued series in the
  // exporter before the first violation.
  obs::Counter* completions_ctr = nullptr;
  obs::Histogram* latency_hist = nullptr;
  if (metrics_on) {
    completions_ctr =
        &reg->counter("surgeon_slo_completions_total", {{"service", service}});
    latency_hist =
        &reg->histogram("surgeon_slo_request_latency_us", {{"service", service}});
  }
  std::size_t i = 2;
  for (std::int64_t k = 0; k < count; ++k) {
    if (i + 6 > v.size()) {
      ++malformed_;
      return;
    }
    for (std::size_t j = i; j < i + 6; ++j) {
      if (!v[j].is_int()) {
        ++malformed_;
        return;
      }
    }
    Completion c;
    c.request = static_cast<std::uint64_t>(v[i].as_int());
    c.started_at = v[i + 1].as_int();
    c.completed_at = v[i + 2].as_int();
    c.latency_us = v[i + 3].as_int();
    c.complete = v[i + 4].as_int() != 0;
    const std::int64_t nhops = v[i + 5].as_int();
    i += 6;
    for (std::int64_t h = 0; h < nhops; ++h) {
      if (i + 3 > v.size() || !v[i].is_string() || !v[i + 1].is_int() ||
          !v[i + 2].is_int()) {
        ++malformed_;
        return;
      }
      c.hops.push_back(Completion::Hop{
          v[i].as_string(), static_cast<net::SimTime>(v[i + 1].as_int()),
          static_cast<net::SimTime>(v[i + 2].as_int())});
      i += 3;
    }
    if (metrics_on) {
      completions_ctr->inc();
      latency_hist->observe(static_cast<std::uint64_t>(c.latency_us));
      for (const Objective& obj : engine_.objectives()) {
        if (obj.service != service || c.latency_us <= obj.threshold_us) {
          continue;
        }
        reg->counter("surgeon_slo_violations_total",
                     {{"objective", obj.name}})
            .inc();
        if (std::any_of(engine_.blackouts().begin(),
                        engine_.blackouts().end(), [&](const auto& w) {
                          return c.completed_at >= w.first &&
                                 c.completed_at <= w.second;
                        })) {
          reg->counter("surgeon_slo_blackout_violations_total",
                       {{"objective", obj.name}})
              .inc();
        }
      }
    }
    engine_.observe(service, c);
    ++records_applied_;
  }
  if (i != v.size()) ++malformed_;  // trailing garbage: count, keep applied
}

void Monitor::publish_alert(const AlertEvent& ev) {
  // Alerts are ordinary bus traffic: chaos can drop them (fire-and-forget)
  // or the reliable layer sequences them — exactly like the application
  // messages whose latency they judge.
  client_.write(
      "alerts",
      {ser::Value{static_cast<std::int64_t>(ev.id)}, ser::Value{ev.objective},
       ser::Value{std::string{alert_kind_name(ev.kind)}},
       ser::Value{static_cast<std::int64_t>(ev.at)},
       ser::Value{static_cast<std::int64_t>(ev.burn_fast * 1000.0)},
       ser::Value{static_cast<std::int64_t>(ev.burn_slow * 1000.0)},
       ser::Value{static_cast<std::int64_t>(ev.attainment * 1'000'000.0)}});
  ++alerts_published_;
  obs::MetricsRegistry* reg = bus_->metrics();
  if (reg != nullptr && reg->enabled()) {
    reg->counter("surgeon_slo_alerts_total",
                 {{"kind", alert_kind_name(ev.kind)},
                  {"objective", ev.objective}})
        .inc();
  }
}

Monitor::GaugeSet& Monitor::gauges_for(const std::string& objective) {
  auto it = gauges_.find(objective);
  if (it == gauges_.end()) {
    obs::MetricsRegistry& reg = *bus_->metrics();
    GaugeSet set;
    set.attainment =
        &reg.gauge("surgeon_slo_attainment_ppm", {{"objective", objective}});
    set.burn_fast = &reg.gauge("surgeon_slo_burn_milli",
                               {{"objective", objective}, {"window", "fast"}});
    set.burn_slow = &reg.gauge("surgeon_slo_burn_milli",
                               {{"objective", objective}, {"window", "slow"}});
    set.firing = &reg.gauge("surgeon_slo_firing", {{"objective", objective}});
    it = gauges_.emplace(objective, set).first;
  }
  return it->second;
}

void Monitor::refresh_gauges(net::SimTime now) {
  obs::MetricsRegistry* reg = bus_->metrics();
  if (reg == nullptr || !reg->enabled()) return;
  for (const Engine::ObjectiveStatus& st : engine_.objective_status(now)) {
    GaugeSet& g = gauges_for(st.objective->name);
    g.attainment->set(static_cast<std::int64_t>(st.attainment * 1'000'000.0));
    g.burn_fast->set(static_cast<std::int64_t>(st.burn_fast * 1000.0));
    g.burn_slow->set(static_cast<std::int64_t>(st.burn_slow * 1000.0));
    g.firing->set(st.firing ? 1 : 0);
  }
}

// --- Monitor: the mh_slo renderings ------------------------------------------

std::string Monitor::report(const std::string& format) const {
  const net::SimTime now = bus_->simulator().now();
  if (format == "json") return report_json(now);
  if (format == "text") return report_text(now);
  throw BusError("mh_slo: unknown format '" + format +
                 "' (expected \"text\" or \"json\")");
}

std::string Monitor::report_text(net::SimTime now) const {
  std::ostringstream os;
  os << "SLO REPORT @ " << now << "us  completions "
     << engine_.completions_total() << "\n";
  for (const Engine::ObjectiveStatus& st : engine_.objective_status(now)) {
    const Objective& obj = *st.objective;
    os << "objective " << obj.name << "  service=" << obj.service << "  p"
       << quantile_text(obj.quantile) << "<" << obj.threshold_us
       << "us  window "
       << duration_text(obj.window_us) << "\n"
       << "  attainment " << fmt_fixed(st.attainment, 6) << "  (total "
       << st.window_total << ", bad " << st.window_bad << ")\n"
       << "  burn fast " << fmt_fixed(st.burn_fast, 3) << " ("
       << duration_text(obj.fast_window_us) << "@"
       << fmt_fixed(obj.fast_burn, 1) << ")  slow "
       << fmt_fixed(st.burn_slow, 3) << " ("
       << duration_text(obj.slow_window_us) << "@"
       << fmt_fixed(obj.slow_burn, 1) << ")  "
       << (st.firing ? "FIRING" : "ok") << "\n"
       << "  violations " << st.violations_total << " (blackout-correlated "
       << st.blackout_violations_total << ")  alerts " << st.alerts_total
       << "\n";
  }
  for (const Engine::ServiceStatus& st : engine_.service_status(now)) {
    os << "service " << st.service << "  completions "
       << st.completions_total << " (window " << st.window_completions
       << ")";
    if (!st.worst_hop.empty()) os << "  worst-hop " << st.worst_hop;
    os << "\n";
    for (const Engine::HopStatus& hop : st.hops) {
      os << "  hop " << hop.module << "  count " << hop.count << "  queue "
         << hop.queue_us << "us  handler " << hop.handler_us << "us\n";
    }
  }
  os << "blackouts " << engine_.blackouts().size() << "\n";
  for (const auto& [from, to] : engine_.blackouts()) {
    os << "  [" << from << "us, " << to << "us]\n";
  }
  return os.str();
}

std::string Monitor::report_json(net::SimTime now) const {
  std::ostringstream os;
  os << "{\"at\":" << now
     << ",\"completions\":" << engine_.completions_total()
     << ",\"objectives\":[";
  bool first = true;
  for (const Engine::ObjectiveStatus& st : engine_.objective_status(now)) {
    const Objective& obj = *st.objective;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":" << json_quote(obj.name)
       << ",\"service\":" << json_quote(obj.service)
       << ",\"quantile\":" << fmt_fixed(obj.quantile, 4)
       << ",\"threshold_us\":" << obj.threshold_us
       << ",\"window_us\":" << obj.window_us
       << ",\"attainment\":" << fmt_fixed(st.attainment, 6)
       << ",\"window_total\":" << st.window_total
       << ",\"window_bad\":" << st.window_bad
       << ",\"burn_fast\":" << fmt_fixed(st.burn_fast, 3)
       << ",\"burn_slow\":" << fmt_fixed(st.burn_slow, 3)
       << ",\"firing\":" << (st.firing ? "true" : "false")
       << ",\"violations\":" << st.violations_total
       << ",\"blackout_violations\":" << st.blackout_violations_total
       << ",\"alerts\":" << st.alerts_total << "}";
  }
  os << "],\"services\":[";
  first = true;
  for (const Engine::ServiceStatus& st : engine_.service_status(now)) {
    if (!first) os << ",";
    first = false;
    os << "{\"service\":" << json_quote(st.service)
       << ",\"completions\":" << st.completions_total
       << ",\"window_completions\":" << st.window_completions
       << ",\"worst_hop\":" << json_quote(st.worst_hop) << ",\"hops\":[";
    for (std::size_t i = 0; i < st.hops.size(); ++i) {
      const Engine::HopStatus& hop = st.hops[i];
      if (i != 0) os << ",";
      os << "{\"module\":" << json_quote(hop.module)
         << ",\"count\":" << hop.count << ",\"queue_us\":" << hop.queue_us
         << ",\"handler_us\":" << hop.handler_us << "}";
    }
    os << "]}";
  }
  os << "],\"blackouts\":[";
  first = true;
  for (const auto& [from, to] : engine_.blackouts()) {
    if (!first) os << ",";
    first = false;
    os << "{\"from_us\":" << from << ",\"to_us\":" << to << "}";
  }
  os << "]}";
  return os.str();
}

// --- Monitor: state divulge/install ------------------------------------------

ser::StateBuffer Monitor::encode_state() const { return engine_.encode_state(); }

void Monitor::install_state(const ser::StateBuffer& state) {
  engine_.install_state(state);
  activate();
}

// --- replace_monitor ---------------------------------------------------------

ReplaceMonitorReport replace_monitor(bus::Bus& bus,
                                     std::unique_ptr<Monitor>& monitor,
                                     const std::string& machine,
                                     const std::function<bool()>& pump,
                                     std::uint64_t max_rounds) {
  if (monitor == nullptr) {
    throw BusError("replace_monitor: no monitor attached");
  }
  obs::MetricsRegistry* reg = bus.metrics();
  net::Simulator& sim = bus.simulator();
  ReplaceMonitorReport report;
  report.old_instance = monitor->module_name();
  report.requested_at = sim.now();

  // obj_cap: the current specification of the running instance.
  bus::ModuleInfo info;
  {
    obs::Span span(reg, "obj_cap", report.old_instance);
    info = bus.module_info(report.old_instance);
  }

  // clone register: a passive twin under a fresh name, possibly elsewhere.
  std::unique_ptr<Monitor> clone;
  {
    obs::Span span(reg, "clone_register", report.old_instance);
    std::string name;
    for (int k = 2;; ++k) {
      name = report.old_instance + "#" + std::to_string(k);
      if (!bus.has_module(name)) break;
    }
    report.new_instance = name;
    clone = std::make_unique<Monitor>(bus, name, machine, monitor->options(),
                                      "clone");
  }

  // bind_edit_prep: repoint every peer binding and capture queued traffic.
  bus::BindEditBatch batch;
  {
    obs::Span span(reg, "bind_edit_prep", report.old_instance);
    for (const std::string& iface :
         bus.interface_names(report.old_instance)) {
      bus::BindingEnd old_end{report.old_instance, iface};
      bus::BindingEnd new_end{report.new_instance, iface};
      for (const bus::BindingEnd& peer : bus.bound_peers(old_end)) {
        batch.add(bus::BindEdit{bus::BindEdit::Op::kDel, old_end, peer});
        batch.add(bus::BindEdit{bus::BindEdit::Op::kAdd, new_end, peer});
      }
      batch.add(
          bus::BindEdit{bus::BindEdit::Op::kCaptureQueue, old_end, new_end});
    }
  }

  // objstate_move: signal, await the divulged engine state, ship it over.
  {
    obs::Span span(reg, "objstate_move", report.old_instance);
    bus.signal_reconfig(report.old_instance);
    std::uint64_t rounds = 0;
    while (!bus.has_divulged_state(report.old_instance)) {
      if (++rounds > max_rounds) {
        throw BusError("replace_monitor: " + report.old_instance +
                       " never divulged its state");
      }
      (void)pump();
    }
    report.divulged_at = sim.now();
    std::vector<std::uint8_t> bytes =
        bus.take_divulged_state(report.old_instance);
    report.state_bytes = bytes.size();
    bus.deliver_state(info.machine, report.new_instance, std::move(bytes));
  }

  // rebind: the batch lands atomically; streams and queues migrate.
  {
    obs::Span span(reg, "rebind", report.old_instance);
    bus.rebind(batch);
  }

  // add: the clone activates once the state buffer is installed.
  {
    obs::Span span(reg, "add", report.old_instance);
    std::uint64_t rounds = 0;
    while (!clone->active()) {
      if (++rounds > max_rounds) {
        throw BusError("replace_monitor: " + report.new_instance +
                       " never restored");
      }
      (void)pump();
    }
  }
  report.restored_at = sim.now();

  // del: retire the passivated instance; the clone is the monitor now.
  {
    obs::Span span(reg, "del", report.old_instance);
    monitor->retire();
  }
  monitor = std::move(clone);
  return report;
}

}  // namespace surgeon::slo
