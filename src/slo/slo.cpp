#include "slo/slo.hpp"

#include <algorithm>
#include <sstream>

#include "support/diag.hpp"

namespace surgeon::slo {

namespace {

using support::BusError;

/// Newest blackout windows kept for correlation; replacements are rare, so
/// the bound exists only to keep divulged state small.
constexpr std::size_t kMaxBlackouts = 64;

net::SimTime parse_duration(const std::string& text, const char* what) {
  std::size_t pos = 0;
  unsigned long long value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<unsigned long long>(text[pos] - '0');
    ++pos;
  }
  if (pos == 0) {
    throw BusError(std::string("objective: bad ") + what + " '" + text + "'");
  }
  const std::string unit = text.substr(pos);
  if (unit == "us") return static_cast<net::SimTime>(value);
  if (unit == "ms") return static_cast<net::SimTime>(value * 1'000);
  if (unit == "s") return static_cast<net::SimTime>(value * 1'000'000);
  throw BusError(std::string("objective: bad ") + what + " unit '" + text +
                 "' (expected us, ms, or s)");
}

}  // namespace

Objective parse_objective(const std::string& spec) {
  std::istringstream in(spec);
  Objective obj;
  bool slow_window_set = false;
  bool target_set = false;
  std::string token;
  if (!(in >> obj.name)) throw BusError("objective: empty spec");
  while (in >> token) {
    if (token.rfind("service=", 0) == 0) {
      obj.service = token.substr(8);
    } else if (token.rfind("window=", 0) == 0) {
      obj.window_us = parse_duration(token.substr(7), "window");
    } else if (token.rfind("fast=", 0) == 0 || token.rfind("slow=", 0) == 0) {
      const bool fast = token[0] == 'f';
      const std::string body = token.substr(5);
      const std::size_t at = body.find('@');
      if (at == std::string::npos) {
        throw BusError("objective: expected <window>@<burn> in '" + token +
                       "'");
      }
      const net::SimTime window =
          parse_duration(body.substr(0, at), fast ? "fast" : "slow");
      double burn = 0.0;
      try {
        burn = std::stod(body.substr(at + 1));
      } catch (const std::exception&) {
        throw BusError("objective: bad burn rate in '" + token + "'");
      }
      if (fast) {
        obj.fast_window_us = window;
        obj.fast_burn = burn;
      } else {
        obj.slow_window_us = window;
        obj.slow_burn = burn;
        slow_window_set = true;
      }
    } else if (token.size() > 1 && token[0] == 'p') {
      const std::size_t lt = token.find('<');
      if (lt == std::string::npos) {
        throw BusError("objective: expected p<Q><<threshold> in '" + token +
                       "'");
      }
      double percent = 0.0;
      try {
        percent = std::stod(token.substr(1, lt - 1));
      } catch (const std::exception&) {
        throw BusError("objective: bad quantile in '" + token + "'");
      }
      if (percent <= 0.0 || percent >= 100.0) {
        throw BusError("objective: quantile out of range in '" + token + "'");
      }
      obj.quantile = percent / 100.0;
      obj.threshold_us = parse_duration(token.substr(lt + 1), "threshold");
      target_set = true;
    } else {
      throw BusError("objective: unknown token '" + token + "'");
    }
  }
  if (obj.service.empty()) {
    throw BusError("objective '" + obj.name + "': missing service=");
  }
  if (!target_set) {
    throw BusError("objective '" + obj.name +
                   "': missing p<Q><<threshold> target");
  }
  if (!slow_window_set) obj.slow_window_us = obj.window_us;
  return obj;
}

const char* alert_kind_name(AlertEvent::Kind kind) noexcept {
  return kind == AlertEvent::Kind::kFire ? "fire" : "clear";
}

// --- Engine ------------------------------------------------------------------

void Engine::add_objective(Objective objective) {
  for (const Objective& o : objectives_) {
    if (o.name == objective.name) {
      throw BusError("slo: duplicate objective '" + objective.name + "'");
    }
  }
  obj_state_.try_emplace(objective.name);
  objectives_.push_back(std::move(objective));
}

template <typename Slot>
Slot& Engine::slot_for(std::vector<Slot>& ring, net::SimTime at) {
  const net::SimTime start = at - (at % options_.slot_us);
  if (ring.empty() || start > ring.back().start_us) {
    ring.push_back(Slot{});
    ring.back().start_us = start;
    while (ring.size() > options_.slots) ring.erase(ring.begin());
  }
  return ring.back();
}

bool Engine::in_blackout(net::SimTime at) const {
  for (const auto& [from, to] : blackouts_) {
    if (at >= from && at <= to) return true;
  }
  return false;
}

void Engine::observe(const std::string& service,
                     const Completion& completion) {
  ++completions_total_;
  const net::SimTime at = completion.completed_at;
  SvcState& svc = svc_state_[service];
  ++svc.completions_total;
  SvcSlot& slot = slot_for(svc.slots, at);
  ++slot.completions;
  for (const Completion::Hop& hop : completion.hops) {
    HopAgg& agg = slot.hops[hop.module];
    ++agg.count;
    agg.queue_us += hop.queue_us;
    agg.handler_us += hop.handler_us;
  }
  const bool blackout = in_blackout(at);
  for (const Objective& obj : objectives_) {
    if (obj.service != service) continue;
    ObjState& st = obj_state_[obj.name];
    ObjSlot& os = slot_for(st.slots, at);
    ++os.total;
    if (completion.latency_us > obj.threshold_us) {
      ++os.bad;
      ++st.violations_total;
      if (blackout) ++st.blackout_violations_total;
    }
  }
}

std::pair<std::uint64_t, std::uint64_t> Engine::window_counts(
    const std::vector<ObjSlot>& ring, net::SimTime now,
    net::SimTime window_us) const {
  // Slot-granular window: a slot counts if any part of it overlaps
  // [now - window, now]. Deterministic and cheap; the rounding error is at
  // most one slot, which the windows are sized to tolerate.
  const net::SimTime from = now >= window_us ? now - window_us : 0;
  std::uint64_t total = 0;
  std::uint64_t bad = 0;
  for (const ObjSlot& slot : ring) {
    if (slot.start_us + options_.slot_us <= from) continue;
    if (slot.start_us > now) continue;
    total += slot.total;
    bad += slot.bad;
  }
  return {total, bad};
}

double Engine::burn_rate(std::uint64_t total, std::uint64_t bad,
                         double quantile) {
  if (total == 0) return 0.0;
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  const double budget = 1.0 - quantile;
  return budget > 0.0 ? bad_fraction / budget : 0.0;
}

std::vector<AlertEvent> Engine::evaluate(net::SimTime now) {
  std::vector<AlertEvent> events;
  for (const Objective& obj : objectives_) {
    ObjState& st = obj_state_[obj.name];
    const auto [ft, fb] = window_counts(st.slots, now, obj.fast_window_us);
    const auto [st_total, st_bad] =
        window_counts(st.slots, now, obj.slow_window_us);
    const double burn_fast = burn_rate(ft, fb, obj.quantile);
    const double burn_slow = burn_rate(st_total, st_bad, obj.quantile);
    const bool over =
        burn_fast >= obj.fast_burn && burn_slow >= obj.slow_burn;
    if (over == st.firing) continue;
    const auto [wt, wb] = window_counts(st.slots, now, obj.window_us);
    AlertEvent ev;
    ev.id = ++next_alert_;
    ev.objective = obj.name;
    ev.kind = over ? AlertEvent::Kind::kFire : AlertEvent::Kind::kClear;
    ev.at = now;
    ev.burn_fast = burn_fast;
    ev.burn_slow = burn_slow;
    ev.attainment =
        wt == 0 ? 1.0
                : static_cast<double>(wt - wb) / static_cast<double>(wt);
    st.firing = over;
    if (over) ++st.alerts_total;
    events.push_back(std::move(ev));
  }
  return events;
}

void Engine::note_blackout(net::SimTime from_us, net::SimTime to_us) {
  blackouts_.insert(blackouts_.begin(), {from_us, to_us});
  if (blackouts_.size() > kMaxBlackouts) blackouts_.resize(kMaxBlackouts);
}

std::vector<Engine::ObjectiveStatus> Engine::objective_status(
    net::SimTime now) const {
  std::vector<ObjectiveStatus> out;
  out.reserve(objectives_.size());
  for (const Objective& obj : objectives_) {
    const ObjState& st = obj_state_.at(obj.name);
    ObjectiveStatus status;
    status.objective = &obj;
    const auto [wt, wb] = window_counts(st.slots, now, obj.window_us);
    status.window_total = wt;
    status.window_bad = wb;
    status.attainment =
        wt == 0 ? 1.0
                : static_cast<double>(wt - wb) / static_cast<double>(wt);
    const auto [ft, fb] = window_counts(st.slots, now, obj.fast_window_us);
    const auto [slow_t, slow_b] =
        window_counts(st.slots, now, obj.slow_window_us);
    status.burn_fast = burn_rate(ft, fb, obj.quantile);
    status.burn_slow = burn_rate(slow_t, slow_b, obj.quantile);
    status.firing = st.firing;
    status.violations_total = st.violations_total;
    status.blackout_violations_total = st.blackout_violations_total;
    status.alerts_total = st.alerts_total;
    out.push_back(status);
  }
  return out;
}

std::vector<Engine::ServiceStatus> Engine::service_status(
    net::SimTime now) const {
  std::vector<ServiceStatus> out;
  for (const auto& [service, st] : svc_state_) {
    ServiceStatus status;
    status.service = service;
    status.completions_total = st.completions_total;
    // Hop attribution over the widest objective window of this service
    // (falls back to the engine's full ring when no objective names it).
    net::SimTime window = 0;
    for (const Objective& obj : objectives_) {
      if (obj.service == service) window = std::max(window, obj.window_us);
    }
    if (window == 0) {
      window = options_.slot_us * static_cast<net::SimTime>(options_.slots);
    }
    const net::SimTime from = now >= window ? now - window : 0;
    std::map<std::string, HopAgg> merged;
    for (const SvcSlot& slot : st.slots) {
      if (slot.start_us + options_.slot_us <= from) continue;
      if (slot.start_us > now) continue;
      status.window_completions += slot.completions;
      for (const auto& [module, agg] : slot.hops) {
        HopAgg& m = merged[module];
        m.count += agg.count;
        m.queue_us += agg.queue_us;
        m.handler_us += agg.handler_us;
      }
    }
    net::SimTime worst = 0;
    for (const auto& [module, agg] : merged) {
      status.hops.push_back(
          HopStatus{module, agg.count, agg.queue_us, agg.handler_us});
      const net::SimTime cost = agg.queue_us + agg.handler_us;
      if (status.worst_hop.empty() || cost > worst) {
        worst = cost;
        status.worst_hop = module;
      }
    }
    out.push_back(std::move(status));
  }
  return out;
}

// --- state divulge/install ---------------------------------------------------

ser::StateBuffer Engine::encode_state() const {
  using ser::StateFrame;
  using ser::Value;
  const auto str = [](const std::string& s) { return Value{s}; };
  const auto num = [](auto n) { return Value{static_cast<std::int64_t>(n)}; };
  const auto dbl = [&](double v) {
    // Durations/burns are exact in micro-units; scale to keep the buffer
    // integer-only (ser::Value has no double).
    return Value{static_cast<std::int64_t>(v * 1'000'000.0)};
  };
  ser::StateBuffer state;
  state.push_frame(StateFrame{{num(1),  // format version
                               num(options_.slot_us), num(options_.slots),
                               num(next_alert_), num(completions_total_)}});
  for (const auto& [from, to] : blackouts_) {
    state.push_frame(StateFrame{{num(0), num(from), num(to)}});
  }
  for (const Objective& obj : objectives_) {
    state.push_frame(StateFrame{
        {num(1), str(obj.name), str(obj.service), dbl(obj.quantile),
         num(obj.threshold_us), num(obj.window_us), num(obj.fast_window_us),
         num(obj.slow_window_us), dbl(obj.fast_burn), dbl(obj.slow_burn)}});
    const ObjState& st = obj_state_.at(obj.name);
    state.push_frame(StateFrame{{num(2), str(obj.name),
                                 num(st.firing ? 1 : 0),
                                 num(st.violations_total),
                                 num(st.blackout_violations_total),
                                 num(st.alerts_total)}});
    for (const ObjSlot& slot : st.slots) {
      state.push_frame(StateFrame{{num(3), str(obj.name), num(slot.start_us),
                                   num(slot.total), num(slot.bad)}});
    }
  }
  for (const auto& [service, st] : svc_state_) {
    state.push_frame(
        StateFrame{{num(4), str(service), num(st.completions_total)}});
    for (const SvcSlot& slot : st.slots) {
      state.push_frame(StateFrame{{num(5), str(service), num(slot.start_us),
                                   num(slot.completions)}});
      for (const auto& [module, agg] : slot.hops) {
        state.push_frame(StateFrame{{num(6), str(service), str(module),
                                     num(agg.count), num(agg.queue_us),
                                     num(agg.handler_us)}});
      }
    }
  }
  return state;
}

void Engine::install_state(const ser::StateBuffer& state) {
  const auto& frames = state.frames();
  if (frames.empty() || frames[0].values.size() < 5 ||
      frames[0].values[0].as_int() != 1) {
    throw BusError("slo engine state: unknown format");
  }
  const auto undbl = [](const ser::Value& v) {
    return static_cast<double>(v.as_int()) / 1'000'000.0;
  };
  options_.slot_us = frames[0].values[1].as_int();
  options_.slots = static_cast<std::size_t>(frames[0].values[2].as_int());
  next_alert_ = static_cast<std::uint64_t>(frames[0].values[3].as_int());
  completions_total_ =
      static_cast<std::uint64_t>(frames[0].values[4].as_int());
  objectives_.clear();
  obj_state_.clear();
  svc_state_.clear();
  blackouts_.clear();
  for (std::size_t i = 1; i < frames.size(); ++i) {
    const ser::StateFrame& f = frames[i];
    if (f.values.empty()) throw BusError("slo engine state: bad frame");
    const auto& v = f.values;
    switch (v[0].as_int()) {
      case 0:
        blackouts_.emplace_back(v[1].as_int(), v[2].as_int());
        break;
      case 1: {
        Objective obj;
        obj.name = v[1].as_string();
        obj.service = v[2].as_string();
        obj.quantile = undbl(v[3]);
        obj.threshold_us = v[4].as_int();
        obj.window_us = v[5].as_int();
        obj.fast_window_us = v[6].as_int();
        obj.slow_window_us = v[7].as_int();
        obj.fast_burn = undbl(v[8]);
        obj.slow_burn = undbl(v[9]);
        add_objective(std::move(obj));
        break;
      }
      case 2: {
        ObjState& st = obj_state_[v[1].as_string()];
        st.firing = v[2].as_int() != 0;
        st.violations_total = static_cast<std::uint64_t>(v[3].as_int());
        st.blackout_violations_total =
            static_cast<std::uint64_t>(v[4].as_int());
        st.alerts_total = static_cast<std::uint64_t>(v[5].as_int());
        break;
      }
      case 3: {
        ObjState& st = obj_state_[v[1].as_string()];
        st.slots.push_back(ObjSlot{v[2].as_int(),
                                   static_cast<std::uint64_t>(v[3].as_int()),
                                   static_cast<std::uint64_t>(v[4].as_int())});
        break;
      }
      case 4:
        svc_state_[v[1].as_string()].completions_total =
            static_cast<std::uint64_t>(v[2].as_int());
        break;
      case 5: {
        SvcState& st = svc_state_[v[1].as_string()];
        SvcSlot slot;
        slot.start_us = v[2].as_int();
        slot.completions = static_cast<std::uint64_t>(v[3].as_int());
        st.slots.push_back(std::move(slot));
        break;
      }
      case 6: {
        SvcState& st = svc_state_[v[1].as_string()];
        if (st.slots.empty()) {
          throw BusError("slo engine state: hop before service slot");
        }
        st.slots.back().hops[v[2].as_string()] =
            HopAgg{static_cast<std::uint64_t>(v[3].as_int()), v[4].as_int(),
                   v[5].as_int()};
        break;
      }
      default:
        throw BusError("slo engine state: unknown frame kind");
    }
  }
}

}  // namespace surgeon::slo
