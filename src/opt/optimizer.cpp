#include "opt/optimizer.hpp"

#include <cmath>
#include <functional>
#include <set>

namespace surgeon::opt {

using namespace minic;

bool expr_equal(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kIntLit:
      return static_cast<const IntLit&>(a).value ==
             static_cast<const IntLit&>(b).value;
    case ExprKind::kRealLit:
      return static_cast<const RealLit&>(a).value ==
             static_cast<const RealLit&>(b).value;
    case ExprKind::kStrLit:
      return static_cast<const StrLit&>(a).value ==
             static_cast<const StrLit&>(b).value;
    case ExprKind::kNullLit:
      return true;
    case ExprKind::kVar:
      return static_cast<const VarExpr&>(a).name ==
             static_cast<const VarExpr&>(b).name;
    case ExprKind::kUnary: {
      const auto& ua = static_cast<const UnaryExpr&>(a);
      const auto& ub = static_cast<const UnaryExpr&>(b);
      return ua.op == ub.op && expr_equal(*ua.operand, *ub.operand);
    }
    case ExprKind::kBinary: {
      const auto& ba = static_cast<const BinaryExpr&>(a);
      const auto& bb = static_cast<const BinaryExpr&>(b);
      return ba.op == bb.op && expr_equal(*ba.lhs, *bb.lhs) &&
             expr_equal(*ba.rhs, *bb.rhs);
    }
    case ExprKind::kCast: {
      const auto& ca = static_cast<const CastExpr&>(a);
      const auto& cb = static_cast<const CastExpr&>(b);
      return ca.target == cb.target && expr_equal(*ca.operand, *cb.operand);
    }
    case ExprKind::kAddrOf:
      return expr_equal(*static_cast<const AddrOfExpr&>(a).operand,
                        *static_cast<const AddrOfExpr&>(b).operand);
    case ExprKind::kDeref:
      return expr_equal(*static_cast<const DerefExpr&>(a).operand,
                        *static_cast<const DerefExpr&>(b).operand);
    case ExprKind::kIndex: {
      const auto& ia = static_cast<const IndexExpr&>(a);
      const auto& ib = static_cast<const IndexExpr&>(b);
      return expr_equal(*ia.base, *ib.base) && expr_equal(*ia.index, *ib.index);
    }
    case ExprKind::kCall:
      return false;  // calls are never considered equal (effects)
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Constant folding

bool is_literal(const Expr& e) {
  return e.kind == ExprKind::kIntLit || e.kind == ExprKind::kRealLit ||
         e.kind == ExprKind::kStrLit;
}

/// Folds a binary operation over literals, mirroring the VM's semantics.
/// Returns null when the operation must be left for run time (division by
/// zero faults; pointer ops never reach here).
ExprPtr fold_binary(BinaryOp op, const Expr& lhs, const Expr& rhs) {
  // String operations.
  if (lhs.kind == ExprKind::kStrLit && rhs.kind == ExprKind::kStrLit) {
    const auto& a = static_cast<const StrLit&>(lhs).value;
    const auto& b = static_cast<const StrLit&>(rhs).value;
    switch (op) {
      case BinaryOp::kAdd:
        return make_str(a + b);
      case BinaryOp::kEq:
        return make_int(a == b);
      case BinaryOp::kNe:
        return make_int(a != b);
      case BinaryOp::kLt:
        return make_int(a < b);
      case BinaryOp::kLe:
        return make_int(a <= b);
      case BinaryOp::kGt:
        return make_int(a > b);
      case BinaryOp::kGe:
        return make_int(a >= b);
      default:
        return nullptr;
    }
  }
  if ((lhs.kind != ExprKind::kIntLit && lhs.kind != ExprKind::kRealLit) ||
      (rhs.kind != ExprKind::kIntLit && rhs.kind != ExprKind::kRealLit)) {
    return nullptr;
  }
  const bool both_int =
      lhs.kind == ExprKind::kIntLit && rhs.kind == ExprKind::kIntLit;
  if (both_int) {
    std::int64_t a = static_cast<const IntLit&>(lhs).value;
    std::int64_t b = static_cast<const IntLit&>(rhs).value;
    switch (op) {
      case BinaryOp::kAdd:
        return make_int(a + b);
      case BinaryOp::kSub:
        return make_int(a - b);
      case BinaryOp::kMul:
        return make_int(a * b);
      case BinaryOp::kDiv:
        return b == 0 ? nullptr : make_int(a / b);
      case BinaryOp::kMod:
        return b == 0 ? nullptr : make_int(a % b);
      case BinaryOp::kEq:
        return make_int(a == b);
      case BinaryOp::kNe:
        return make_int(a != b);
      case BinaryOp::kLt:
        return make_int(a < b);
      case BinaryOp::kLe:
        return make_int(a <= b);
      case BinaryOp::kGt:
        return make_int(a > b);
      case BinaryOp::kGe:
        return make_int(a >= b);
      case BinaryOp::kAnd:
        return make_int(a != 0 && b != 0);
      case BinaryOp::kOr:
        return make_int(a != 0 || b != 0);
    }
    return nullptr;
  }
  auto num = [](const Expr& e) {
    return e.kind == ExprKind::kIntLit
               ? static_cast<double>(static_cast<const IntLit&>(e).value)
               : static_cast<const RealLit&>(e).value;
  };
  double a = num(lhs);
  double b = num(rhs);
  switch (op) {
    case BinaryOp::kAdd:
      return make_real(a + b);
    case BinaryOp::kSub:
      return make_real(a - b);
    case BinaryOp::kMul:
      return make_real(a * b);
    case BinaryOp::kDiv:
      return make_real(a / b);  // IEEE, as the VM does
    case BinaryOp::kEq:
      return make_int(a == b);
    case BinaryOp::kNe:
      return make_int(a != b);
    case BinaryOp::kLt:
      return make_int(a < b);
    case BinaryOp::kLe:
      return make_int(a <= b);
    case BinaryOp::kGt:
      return make_int(a > b);
    case BinaryOp::kGe:
      return make_int(a >= b);
    default:
      return nullptr;  // %, &&, || are int-only; sema rejected them anyway
  }
}

class Folder {
 public:
  explicit Folder(OptStats& stats) : stats_(&stats) {}

  void fold(ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kUnary: {
        auto& u = static_cast<UnaryExpr&>(*e);
        fold(u.operand);
        if (u.op == UnaryOp::kNeg && u.operand->kind == ExprKind::kIntLit) {
          replace(e, make_int(-static_cast<IntLit&>(*u.operand).value));
        } else if (u.op == UnaryOp::kNeg &&
                   u.operand->kind == ExprKind::kRealLit) {
          replace(e, make_real(-static_cast<RealLit&>(*u.operand).value));
        } else if (u.op == UnaryOp::kNot &&
                   u.operand->kind == ExprKind::kIntLit) {
          replace(e, make_int(static_cast<IntLit&>(*u.operand).value == 0));
        }
        return;
      }
      case ExprKind::kBinary: {
        auto& b = static_cast<BinaryExpr&>(*e);
        fold(b.lhs);
        fold(b.rhs);
        if (is_literal(*b.lhs) && is_literal(*b.rhs)) {
          if (ExprPtr folded = fold_binary(b.op, *b.lhs, *b.rhs)) {
            replace(e, std::move(folded));
          }
        }
        return;
      }
      case ExprKind::kCast: {
        auto& c = static_cast<CastExpr&>(*e);
        fold(c.operand);
        if (c.target == kIntType && c.operand->kind == ExprKind::kRealLit) {
          replace(e, make_int(static_cast<std::int64_t>(
                         static_cast<RealLit&>(*c.operand).value)));
        } else if (c.target == kRealType &&
                   c.operand->kind == ExprKind::kIntLit) {
          replace(e, make_real(static_cast<double>(
                         static_cast<IntLit&>(*c.operand).value)));
        } else if (c.target == kIntType &&
                   c.operand->kind == ExprKind::kIntLit) {
          replace(e, std::move(c.operand));
        } else if (c.target == kRealType &&
                   c.operand->kind == ExprKind::kRealLit) {
          replace(e, std::move(c.operand));
        }
        return;
      }
      case ExprKind::kCall: {
        auto& c = static_cast<CallExpr&>(*e);
        for (auto& a : c.args) fold(a);
        return;
      }
      case ExprKind::kAddrOf:
        return;  // nothing to fold under '&' (a variable)
      case ExprKind::kDeref:
        fold(static_cast<DerefExpr&>(*e).operand);
        return;
      case ExprKind::kIndex: {
        auto& i = static_cast<IndexExpr&>(*e);
        fold(i.base);
        fold(i.index);
        return;
      }
      default:
        return;
    }
  }

  void stmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock:
        for (auto& child : static_cast<BlockStmt&>(s).stmts) stmt(*child);
        return;
      case StmtKind::kDecl: {
        auto& d = static_cast<DeclStmt&>(s);
        if (d.init) fold(d.init);
        return;
      }
      case StmtKind::kAssign: {
        auto& a = static_cast<AssignStmt&>(s);
        fold(a.value);
        // Fold inside index targets too (v[1 + 2] = ...).
        if (a.target->kind == ExprKind::kIndex) {
          fold(static_cast<IndexExpr&>(*a.target).index);
        }
        return;
      }
      case StmtKind::kExpr:
        fold(static_cast<ExprStmt&>(s).expr);
        return;
      case StmtKind::kIf: {
        auto& i = static_cast<IfStmt&>(s);
        fold(i.cond);
        stmt(*i.then_branch);
        if (i.else_branch) stmt(*i.else_branch);
        return;
      }
      case StmtKind::kWhile: {
        auto& w = static_cast<WhileStmt&>(s);
        fold(w.cond);
        stmt(*w.body);
        return;
      }
      case StmtKind::kFor: {
        auto& f = static_cast<ForStmt&>(s);
        if (f.init) stmt(*f.init);
        if (f.cond) fold(f.cond);
        if (f.step) stmt(*f.step);
        stmt(*f.body);
        return;
      }
      case StmtKind::kReturn: {
        auto& r = static_cast<ReturnStmt&>(s);
        if (r.value) fold(r.value);
        return;
      }
      case StmtKind::kLabeled:
        stmt(*static_cast<LabeledStmt&>(s).inner);
        return;
      default:
        return;
    }
  }

 private:
  void replace(ExprPtr& slot, ExprPtr with) {
    with->loc = slot->loc;
    slot = std::move(with);
    ++stats_->expressions_folded;
  }

  OptStats* stats_;
};

// ---------------------------------------------------------------------------
// Loop-invariant hoisting

/// Collects facts about a function body: which variables are assigned
/// within a subtree, whether it contains labels or user calls.
struct SubtreeFacts {
  std::set<std::string> assigned;
  bool has_label = false;

  void expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kAddrOf: {
        // &v passed anywhere: conservatively assigned through the pointer.
        const auto& a = static_cast<const AddrOfExpr&>(e);
        if (a.operand->kind == ExprKind::kVar) {
          assigned.insert(static_cast<const VarExpr&>(*a.operand).name);
        }
        return;
      }
      case ExprKind::kUnary:
        expr(*static_cast<const UnaryExpr&>(e).operand);
        return;
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        expr(*b.lhs);
        expr(*b.rhs);
        return;
      }
      case ExprKind::kCast:
        expr(*static_cast<const CastExpr&>(e).operand);
        return;
      case ExprKind::kDeref:
        expr(*static_cast<const DerefExpr&>(e).operand);
        return;
      case ExprKind::kIndex: {
        const auto& i = static_cast<const IndexExpr&>(e);
        expr(*i.base);
        expr(*i.index);
        return;
      }
      case ExprKind::kCall:
        for (const auto& a : static_cast<const CallExpr&>(e).args) expr(*a);
        return;
      default:
        return;
    }
  }

  void stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& child : static_cast<const BlockStmt&>(s).stmts) {
          stmt(*child);
        }
        return;
      case StmtKind::kDecl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        assigned.insert(d.name);
        if (d.init) expr(*d.init);
        return;
      }
      case StmtKind::kAssign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        if (a.target->kind == ExprKind::kVar) {
          assigned.insert(static_cast<const VarExpr&>(*a.target).name);
        } else {
          expr(*a.target);
        }
        expr(*a.value);
        return;
      }
      case StmtKind::kExpr:
        expr(*static_cast<const ExprStmt&>(s).expr);
        return;
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        expr(*i.cond);
        stmt(*i.then_branch);
        if (i.else_branch) stmt(*i.else_branch);
        return;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const WhileStmt&>(s);
        expr(*w.cond);
        stmt(*w.body);
        return;
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.init) stmt(*f.init);
        if (f.cond) expr(*f.cond);
        if (f.step) stmt(*f.step);
        stmt(*f.body);
        return;
      }
      case StmtKind::kReturn: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        if (r.value) expr(*r.value);
        return;
      }
      case StmtKind::kLabeled:
        has_label = true;
        stmt(*static_cast<const LabeledStmt&>(s).inner);
        return;
      default:
        return;
    }
  }
};

/// Is this expression hoistable: built only from literals and plain local
/// variables with fault-free operators, and at least one real operation?
bool hoistable(const Expr& e, bool top) {
  switch (e.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kRealLit:
      return !top;  // literals alone are not worth a temporary
    case ExprKind::kVar: {
      const auto& v = static_cast<const VarExpr&>(e);
      if (v.storage != VarStorage::kLocal && v.storage != VarStorage::kParam) {
        return false;  // globals can change via calls; stay conservative
      }
      return !top;
    }
    case ExprKind::kUnary:
      return hoistable(*static_cast<const UnaryExpr&>(e).operand, false);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      if (b.op == BinaryOp::kDiv || b.op == BinaryOp::kMod) return false;
      if (b.type == kStringType) return false;  // allocation, not worth it
      return hoistable(*b.lhs, false) && hoistable(*b.rhs, false);
    }
    case ExprKind::kCast:
      return hoistable(*static_cast<const CastExpr&>(e).operand, false);
    default:
      return false;
  }
}

void collect_vars(const Expr& e, std::set<std::string>& out) {
  switch (e.kind) {
    case ExprKind::kVar:
      out.insert(static_cast<const VarExpr&>(e).name);
      return;
    case ExprKind::kUnary:
      collect_vars(*static_cast<const UnaryExpr&>(e).operand, out);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      collect_vars(*b.lhs, out);
      collect_vars(*b.rhs, out);
      return;
    }
    case ExprKind::kCast:
      collect_vars(*static_cast<const CastExpr&>(e).operand, out);
      return;
    default:
      return;
  }
}

class Hoister {
 public:
  Hoister(Function& fn, OptStats& stats) : fn_(&fn), stats_(&stats) {}

  void run() { walk_block(*fn_->body); }

 private:
  /// Walks a block, processing loops found directly or nested inside.
  void walk_block(BlockStmt& block) {
    for (std::size_t i = 0; i < block.stmts.size(); ++i) {
      Stmt* s = block.stmts[i].get();
      while (s->kind == StmtKind::kLabeled) {
        s = static_cast<LabeledStmt&>(*s).inner.get();
      }
      switch (s->kind) {
        case StmtKind::kWhile: {
          auto& w = static_cast<WhileStmt&>(*s);
          // Inner loops first, so invariants bubble outward one level per
          // pass (a single pass suffices for the benchmarks; repeated
          // optimize() calls reach a fixpoint).
          if (w.body->kind == StmtKind::kBlock) {
            walk_block(static_cast<BlockStmt&>(*w.body));
          }
          SubtreeFacts facts;
          facts.stmt(*w.body);
          process_loop(block, i, *w.body, facts);
          break;
        }
        case StmtKind::kFor: {
          auto& f = static_cast<ForStmt&>(*s);
          if (f.body->kind == StmtKind::kBlock) {
            walk_block(static_cast<BlockStmt&>(*f.body));
          }
          // Variables touched by the header parts are loop-varying too.
          SubtreeFacts facts;
          if (f.init) facts.stmt(*f.init);
          if (f.step) facts.stmt(*f.step);
          facts.stmt(*f.body);
          process_loop(block, i, *f.body, facts);
          break;
        }
        case StmtKind::kBlock:
          walk_block(static_cast<BlockStmt&>(*s));
          break;
        case StmtKind::kIf: {
          auto& f = static_cast<IfStmt&>(*s);
          if (f.then_branch->kind == StmtKind::kBlock) {
            walk_block(static_cast<BlockStmt&>(*f.then_branch));
          }
          if (f.else_branch && f.else_branch->kind == StmtKind::kBlock) {
            walk_block(static_cast<BlockStmt&>(*f.else_branch));
          }
          break;
        }
        default:
          break;
      }
    }
  }

  void process_loop(BlockStmt& enclosing, std::size_t& loop_index,
                    Stmt& body, const SubtreeFacts& facts) {
    if (facts.has_label) {
      // A goto can enter this loop body without passing the preheader
      // (exactly what the transformation's restore dispatch does), so code
      // motion out of it is unsound. This is the Section-4 interference.
      ++stats_->loops_blocked_by_labels;
      return;
    }
    std::vector<const Expr*> candidates;
    find_candidates(body, facts.assigned, candidates);
    // The candidate pointers point into `body`, and every replacement frees
    // the matched subtree -- which may be a candidate itself (the pattern is
    // usually its own first occurrence) or enclose a later candidate. Clone
    // them all up front so comparisons never touch freed nodes.
    std::vector<ExprPtr> patterns;
    patterns.reserve(candidates.size());
    for (const Expr* c : candidates) {
      patterns.push_back(clone_expr(*c));
      patterns.back()->type = c->type;  // clone_expr drops sema annotations
    }
    for (const ExprPtr& candidate : patterns) {
      // Materialize: opt_tN = <expr>; before the loop, then replace every
      // structurally equal occurrence in the body.
      std::string temp = fresh_temp_name();
      auto decl = std::make_unique<DeclStmt>(candidate->type, temp,
                                             clone_expr(*candidate),
                                             candidate->loc);
      std::size_t replaced = replace_in_stmt(body, *candidate, temp);
      if (replaced == 0) continue;  // overlapped with an earlier hoist
      enclosing.stmts.insert(
          enclosing.stmts.begin() + static_cast<std::ptrdiff_t>(loop_index),
          std::move(decl));
      ++loop_index;  // the loop shifted one slot down
      ++stats_->expressions_hoisted;
    }
  }

  /// A temporary name not colliding with any parameter or local.
  std::string fresh_temp_name() {
    while (true) {
      std::string name = "opt_t" + std::to_string(next_temp_++);
      bool taken = false;
      for (const auto& p : fn_->params) taken = taken || p.name == name;
      for (const auto& l : fn_->locals) taken = taken || l.name == name;
      if (!taken) return name;
    }
  }

  /// Finds maximal hoistable expressions in the loop body whose variables
  /// are all loop-invariant.
  void find_candidates(const Stmt& s, const std::set<std::string>& assigned,
                       std::vector<const Expr*>& out) {
    auto consider = [&](const Expr& e, auto&& recurse) -> void {
      if (hoistable(e, true)) {
        std::set<std::string> vars;
        collect_vars(e, vars);
        bool invariant = true;
        for (const auto& v : vars) {
          if (assigned.contains(v)) invariant = false;
        }
        if (invariant && !vars.empty()) {
          for (const Expr* seen : out) {
            if (expr_equal(*seen, e)) return;  // deduplicate
          }
          out.push_back(&e);
          return;  // maximal: don't descend into a hoisted expression
        }
      }
      recurse(e);
    };
    std::function<void(const Expr&)> descend = [&](const Expr& e) {
      switch (e.kind) {
        case ExprKind::kUnary:
          consider(*static_cast<const UnaryExpr&>(e).operand, descend);
          return;
        case ExprKind::kBinary: {
          const auto& b = static_cast<const BinaryExpr&>(e);
          consider(*b.lhs, descend);
          consider(*b.rhs, descend);
          return;
        }
        case ExprKind::kCast:
          consider(*static_cast<const CastExpr&>(e).operand, descend);
          return;
        case ExprKind::kDeref:
          consider(*static_cast<const DerefExpr&>(e).operand, descend);
          return;
        case ExprKind::kIndex: {
          const auto& i = static_cast<const IndexExpr&>(e);
          consider(*i.base, descend);
          consider(*i.index, descend);
          return;
        }
        case ExprKind::kCall:
          for (const auto& a : static_cast<const CallExpr&>(e).args) {
            consider(*a, descend);
          }
          return;
        default:
          return;
      }
    };
    std::function<void(const Stmt&)> walk = [&](const Stmt& stmt) {
      switch (stmt.kind) {
        case StmtKind::kBlock:
          for (const auto& c : static_cast<const BlockStmt&>(stmt).stmts) {
            walk(*c);
          }
          return;
        case StmtKind::kDecl: {
          const auto& d = static_cast<const DeclStmt&>(stmt);
          if (d.init) consider(*d.init, descend);
          return;
        }
        case StmtKind::kAssign: {
          const auto& a = static_cast<const AssignStmt&>(stmt);
          consider(*a.value, descend);
          descend(*a.target);
          return;
        }
        case StmtKind::kExpr:
          descend(*static_cast<const ExprStmt&>(stmt).expr);
          return;
        case StmtKind::kIf: {
          // Expressions under a condition may never execute; hoisting
          // them is still sound because candidates are fault-free (the
          // worst case is wasted work in the preheader).
          const auto& i = static_cast<const IfStmt&>(stmt);
          walk(*i.then_branch);
          if (i.else_branch) walk(*i.else_branch);
          return;
        }
        case StmtKind::kWhile:
          walk(*static_cast<const WhileStmt&>(stmt).body);
          return;
        case StmtKind::kFor: {
          const auto& f = static_cast<const ForStmt&>(stmt);
          if (f.init) walk(*f.init);
          if (f.step) walk(*f.step);
          walk(*f.body);
          return;
        }
        case StmtKind::kReturn: {
          const auto& r = static_cast<const ReturnStmt&>(stmt);
          if (r.value) consider(*r.value, descend);
          return;
        }
        case StmtKind::kLabeled:
          walk(*static_cast<const LabeledStmt&>(stmt).inner);
          return;
        default:
          return;
      }
    };
    walk(s);
  }

  /// Replaces every occurrence of `pattern` under `s` with a reference to
  /// `temp`. Returns the number of replacements.
  std::size_t replace_in_stmt(Stmt& s, const Expr& pattern,
                              const std::string& temp) {
    std::size_t count = 0;
    std::function<void(ExprPtr&)> replace_expr = [&](ExprPtr& e) {
      if (expr_equal(*e, pattern)) {
        auto var = make_var(temp, e->loc);
        var->type = pattern.type;
        e = std::move(var);
        ++count;
        return;
      }
      switch (e->kind) {
        case ExprKind::kUnary:
          replace_expr(static_cast<UnaryExpr&>(*e).operand);
          return;
        case ExprKind::kBinary: {
          auto& b = static_cast<BinaryExpr&>(*e);
          replace_expr(b.lhs);
          replace_expr(b.rhs);
          return;
        }
        case ExprKind::kCast:
          replace_expr(static_cast<CastExpr&>(*e).operand);
          return;
        case ExprKind::kDeref:
          replace_expr(static_cast<DerefExpr&>(*e).operand);
          return;
        case ExprKind::kIndex: {
          auto& i = static_cast<IndexExpr&>(*e);
          replace_expr(i.base);
          replace_expr(i.index);
          return;
        }
        case ExprKind::kCall:
          for (auto& a : static_cast<CallExpr&>(*e).args) replace_expr(a);
          return;
        default:
          return;
      }
    };
    std::function<void(Stmt&)> walk = [&](Stmt& stmt) {
      switch (stmt.kind) {
        case StmtKind::kBlock:
          for (auto& c : static_cast<BlockStmt&>(stmt).stmts) walk(*c);
          return;
        case StmtKind::kDecl: {
          auto& d = static_cast<DeclStmt&>(stmt);
          if (d.init) replace_expr(d.init);
          return;
        }
        case StmtKind::kAssign: {
          auto& a = static_cast<AssignStmt&>(stmt);
          replace_expr(a.value);
          if (a.target->kind != ExprKind::kVar) replace_expr(a.target);
          return;
        }
        case StmtKind::kExpr:
          replace_expr(static_cast<ExprStmt&>(stmt).expr);
          return;
        case StmtKind::kIf: {
          auto& i = static_cast<IfStmt&>(stmt);
          replace_expr(i.cond);
          walk(*i.then_branch);
          if (i.else_branch) walk(*i.else_branch);
          return;
        }
        case StmtKind::kWhile: {
          auto& w = static_cast<WhileStmt&>(stmt);
          replace_expr(w.cond);
          walk(*w.body);
          return;
        }
        case StmtKind::kFor: {
          auto& f = static_cast<ForStmt&>(stmt);
          if (f.init) walk(*f.init);
          if (f.cond) replace_expr(f.cond);
          if (f.step) walk(*f.step);
          walk(*f.body);
          return;
        }
        case StmtKind::kReturn: {
          auto& r = static_cast<ReturnStmt&>(stmt);
          if (r.value) replace_expr(r.value);
          return;
        }
        case StmtKind::kLabeled:
          walk(*static_cast<LabeledStmt&>(stmt).inner);
          return;
        default:
          return;
      }
    };
    walk(s);
    return count;
  }

  Function* fn_;
  OptStats* stats_;
  int next_temp_ = 0;
};

}  // namespace

OptStats optimize(Program& program, const OptOptions& options) {
  OptStats stats;
  if (options.fold_constants) {
    Folder folder(stats);
    for (auto& g : program.globals) {
      if (g.init) folder.fold(g.init);
    }
    for (auto& fn : program.functions) folder.stmt(*fn->body);
  }
  if (options.hoist_loop_invariants) {
    for (auto& fn : program.functions) {
      Hoister(*fn, stats).run();
    }
  }
  return stats;
}

}  // namespace surgeon::opt
