// A small optimizing pass over MiniC, standing in for "the standard
// compiler provided with the machine" being an *optimizing* compiler.
//
// Two classic transformations:
//
//   1. Constant folding: literal-only expressions evaluate at compile time,
//      with exactly the VM's arithmetic (int/int stays int, any real
//      promotes, strings concatenate and compare; potential run-time faults
//      such as division by zero are left in place).
//
//   2. Loop-invariant expression hoisting: a safe expression inside a while
//      loop whose variables the loop never modifies is computed once in a
//      fresh temporary before the loop.
//
// The reconfiguration tie-in (Section 4 of the paper): "By virtue of where
// a reconfiguration point is placed, it could prohibit certain compiler
// optimizations such as code motion." Hoisting out of a loop is UNSOUND if
// control can enter the loop body without passing the preheader -- and the
// transformation inserts exactly such entries: the restore dispatch jumps
// (`goto Li` / `goto R`) to labels inside the loop. The optimizer therefore
// treats any label inside a loop body as a barrier and skips the loop,
// which is the §4 effect made concrete and measurable
// (bench_optimizer_interference).
#pragma once

#include <cstddef>

#include "minic/ast.hpp"

namespace surgeon::opt {

struct OptOptions {
  bool fold_constants = true;
  bool hoist_loop_invariants = true;
};

struct OptStats {
  std::size_t expressions_folded = 0;
  std::size_t expressions_hoisted = 0;
  /// Loops that contained labels (reconfiguration machinery or user gotos)
  /// and were therefore skipped by the hoisting pass.
  std::size_t loops_blocked_by_labels = 0;
};

/// Optimizes an analyzed program in place. The caller must re-run sema
/// afterwards (hoisting introduces temporaries). Never changes observable
/// behaviour: folding matches VM arithmetic, hoisted expressions are
/// fault-free by construction, and label-entered loops are left alone.
OptStats optimize(minic::Program& program, const OptOptions& options = {});

/// Structural equality of expressions (used by the hoisting pass and its
/// tests): same shape, same operators, same literals, same variable names.
[[nodiscard]] bool expr_equal(const minic::Expr& a, const minic::Expr& b);

}  // namespace surgeon::opt
