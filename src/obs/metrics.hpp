// Observability: the platform-wide metrics registry.
//
// Counters, gauges, and fixed-bucket histograms, keyed by name + sorted
// label set. The registry is designed around the simulator's *virtual*
// clock: every timer and span records virtual microseconds (net::SimTime),
// never wall time, so measurements are deterministic and comparable across
// runs and machines, and correlate 1:1 with bus::TraceEvent timestamps.
//
// Cost model: instrumented components (bus, runtime, scripts) hold a
// `MetricsRegistry*` that is null by default, and hot paths cache handles
// (`Counter*`, `Gauge*`) resolved once at registration time. A disabled or
// absent registry therefore costs one pointer test per event -- the
// bench_obs_overhead benchmark pins this down against bench_bus.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace surgeon::obs {

/// Label set of a metric ("module" = "compute", "iface" = "out", ...).
/// Stored sorted by key so the same set always names the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A value that goes up and down (queue depths, bytes held, ...).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_ = v; }
  void add(std::int64_t delta) noexcept { value_ += delta; }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Fixed-bucket histogram of non-negative integer observations (virtual
/// microseconds, batch sizes, byte counts). Buckets are cumulative upper
/// bounds, Prometheus-style, with an implicit +Inf bucket at the end.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> upper_bounds);

  void observe(std::uint64_t value) noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& upper_bounds()
      const noexcept {
    return upper_bounds_;
  }
  /// Per-bucket counts, non-cumulative; index upper_bounds().size() is +Inf.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }

  /// Quantile estimate for q in [0, 1] by linear interpolation inside the
  /// bucket holding the target rank (histogram_quantile semantics). The
  /// bucket's lower edge is the previous upper bound (0 for the first);
  /// observations landing in the +Inf bucket clamp to the highest finite
  /// bound. Returns 0 for an empty histogram.
  [[nodiscard]] double quantile(double q) const noexcept {
    return quantile_from_buckets(upper_bounds_, counts_, count_, q);
  }

  /// The interpolation shared with merged-bucket consumers (the telemetry
  /// collector re-derives quantiles from summed window buckets). `counts`
  /// must have bounds.size()+1 entries, the last being the +Inf bucket.
  [[nodiscard]] static double quantile_from_buckets(
      const std::vector<std::uint64_t>& bounds,
      const std::vector<std::uint64_t>& counts, std::uint64_t total,
      double q) noexcept;

 private:
  std::vector<std::uint64_t> upper_bounds_;  // sorted ascending
  std::vector<std::uint64_t> counts_;        // size upper_bounds_+1 (+Inf)
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// Default bucket bounds for virtual-time measurements: 1us .. 10s.
[[nodiscard]] std::vector<std::uint64_t> default_time_buckets();

/// One closed span: a named phase of a reconfiguration script with its
/// begin/end virtual timestamps. `seq` is the global open order, so a
/// timeline sorted by seq is the order the script executed its steps.
struct SpanRecord {
  std::string name;   // step name: "obj_cap", "rebind", ...
  std::string scope;  // what was reconfigured, e.g. the old instance name
  std::uint64_t begin_us = 0;
  std::uint64_t end_us = 0;
  std::uint64_t seq = 0;

  [[nodiscard]] std::uint64_t duration_us() const noexcept {
    return end_us - begin_us;
  }
  [[nodiscard]] std::string to_string() const;
};

class MetricsRegistry {
 public:
  /// A registry starts disabled: handles resolve (so hot paths can cache
  /// them) but instrumented components skip recording until enabled.
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// The virtual clock (the simulator's now()); spans read it at open and
  /// close. Without a clock every timestamp is 0.
  void set_clock(std::function<std::uint64_t()> clock) {
    clock_ = std::move(clock);
  }
  [[nodiscard]] std::uint64_t now() const { return clock_ ? clock_() : 0; }

  /// Handle lookup: creates the series on first use, returns a pointer that
  /// stays valid for the registry's lifetime. Labels may arrive in any
  /// order; they are canonicalized (sorted by key).
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels = {},
                       std::vector<std::uint64_t> upper_bounds = {});

  /// Test/exporter convenience: the value of a series, 0 if it was never
  /// touched (does not create the series).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name,
                                            Labels labels = {}) const;
  [[nodiscard]] std::int64_t gauge_value(const std::string& name,
                                         Labels labels = {}) const;

  void record_span(SpanRecord span);
  [[nodiscard]] const std::vector<SpanRecord>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] std::uint64_t next_span_seq() noexcept { return span_seq_++; }

  /// Drops every series and span (benchmarks reuse one registry).
  void clear();

  // --- exporter access (deterministic: maps iterate in key order) ---------
  using SeriesKey = std::pair<std::string, Labels>;
  [[nodiscard]] const std::map<SeriesKey, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<SeriesKey, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<SeriesKey, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }

 private:
  static SeriesKey key_of(const std::string& name, Labels labels);

  bool enabled_ = false;
  std::function<std::uint64_t()> clock_;
  std::map<SeriesKey, Counter> counters_;
  std::map<SeriesKey, Gauge> gauges_;
  std::map<SeriesKey, Histogram> histograms_;
  std::vector<SpanRecord> spans_;
  std::uint64_t span_seq_ = 0;
};

/// RAII timer over the registry's virtual clock. Opening reads now();
/// close() (or destruction) reads it again, appends a SpanRecord, and
/// observes the duration in the `surgeon_reconfig_step_us{step=...}`
/// histogram. With a null or disabled registry a Span is a no-op.
class Span {
 public:
  Span(MetricsRegistry* registry, std::string name, std::string scope);
  ~Span() { close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void close();

 private:
  MetricsRegistry* registry_;  // null when disabled at open
  SpanRecord record_;
};

}  // namespace surgeon::obs
