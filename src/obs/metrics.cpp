#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace surgeon::obs {

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  std::sort(upper_bounds_.begin(), upper_bounds_.end());
  upper_bounds_.erase(
      std::unique(upper_bounds_.begin(), upper_bounds_.end()),
      upper_bounds_.end());
  counts_.assign(upper_bounds_.size() + 1, 0);
}

void Histogram::observe(std::uint64_t value) noexcept {
  auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - upper_bounds_.begin())];
  ++count_;
  sum_ += value;
}

double Histogram::quantile_from_buckets(
    const std::vector<std::uint64_t>& bounds,
    const std::vector<std::uint64_t>& counts, std::uint64_t total,
    double q) noexcept {
  if (total == 0 || counts.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (cumulative + in_bucket >= rank && in_bucket > 0.0) {
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double upper = static_cast<double>(bounds[i]);
      return lower + (upper - lower) * ((rank - cumulative) / in_bucket);
    }
    cumulative += in_bucket;
  }
  // Rank falls in the +Inf bucket: the true value is unbounded above, so
  // clamp to the largest finite bound, as histogram_quantile does.
  return static_cast<double>(bounds.back());
}

std::vector<std::uint64_t> default_time_buckets() {
  return {1,       10,        100,       1'000,     10'000,
          100'000, 1'000'000, 10'000'000};
}

std::string SpanRecord::to_string() const {
  std::ostringstream os;
  os << "[" << begin_us << ".." << end_us << "us] " << scope << "/" << name;
  return os.str();
}

MetricsRegistry::SeriesKey MetricsRegistry::key_of(const std::string& name,
                                                   Labels labels) {
  std::sort(labels.begin(), labels.end());
  return {name, std::move(labels)};
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  return counters_[key_of(name, std::move(labels))];
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  return gauges_[key_of(name, std::move(labels))];
}

Histogram& MetricsRegistry::histogram(const std::string& name, Labels labels,
                                      std::vector<std::uint64_t> bounds) {
  SeriesKey key = key_of(name, std::move(labels));
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = default_time_buckets();
    it = histograms_.emplace(std::move(key), Histogram(std::move(bounds)))
             .first;
  }
  return it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             Labels labels) const {
  auto it = counters_.find(key_of(name, std::move(labels)));
  return it == counters_.end() ? 0 : it->second.value();
}

std::int64_t MetricsRegistry::gauge_value(const std::string& name,
                                          Labels labels) const {
  auto it = gauges_.find(key_of(name, std::move(labels)));
  return it == gauges_.end() ? 0 : it->second.value();
}

void MetricsRegistry::record_span(SpanRecord span) {
  spans_.push_back(std::move(span));
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  spans_.clear();
  span_seq_ = 0;
}

Span::Span(MetricsRegistry* registry, std::string name, std::string scope)
    : registry_(registry != nullptr && registry->enabled() ? registry
                                                           : nullptr) {
  if (registry_ == nullptr) return;
  record_.name = std::move(name);
  record_.scope = std::move(scope);
  record_.begin_us = registry_->now();
  record_.seq = registry_->next_span_seq();
}

void Span::close() {
  if (registry_ == nullptr) return;
  record_.end_us = registry_->now();
  registry_
      ->histogram("surgeon_reconfig_step_us", {{"step", record_.name}})
      .observe(record_.duration_us());
  registry_->record_span(std::move(record_));
  registry_ = nullptr;
}

}  // namespace surgeon::obs
