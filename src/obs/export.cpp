#include "obs/export.hpp"

#include <iomanip>
#include <sstream>

namespace surgeon::obs {

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders {k1="v1",k2="v2"}; empty labels render as nothing.
std::string prom_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) os << ",";
    os << labels[i].first << "=\"" << prom_escape(labels[i].second) << "\"";
  }
  os << "}";
  return os.str();
}

/// Same, with one extra label appended (the histogram `le` bound).
std::string prom_labels_plus(const Labels& labels, const std::string& key,
                             const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return prom_labels(extended);
}

void type_line(std::ostringstream& os, std::string& last_typed,
               const std::string& name, const char* type) {
  if (name == last_typed) return;  // one TYPE line per family
  os << "# TYPE " << name << " " << type << "\n";
  last_typed = name;
}

/// RFC 8259 string quoting. support::quote (meant for diagnostics) leaves
/// control characters other than newline unescaped, which would make the
/// export unparseable for a label value holding, say, a tab.
std::string json_quote(const std::string& s) {
  std::ostringstream os;
  os << '"';
  for (char c : s) {
    switch (c) {
      case '\\': os << "\\\\"; break;
      case '"': os << "\\\""; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c)) << std::dec
             << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
  return os.str();
}

std::string json_labels(const Labels& labels) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) os << ",";
    os << json_quote(labels[i].first) << ":" << json_quote(labels[i].second);
  }
  os << "}";
  return os.str();
}

std::string fmt_quantile(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

}  // namespace

std::string to_prometheus(const MetricsRegistry& registry) {
  std::ostringstream os;
  std::string last_typed;
  for (const auto& [key, counter] : registry.counters()) {
    type_line(os, last_typed, key.first, "counter");
    os << key.first << prom_labels(key.second) << " " << counter.value()
       << "\n";
  }
  for (const auto& [key, gauge] : registry.gauges()) {
    type_line(os, last_typed, key.first, "gauge");
    os << key.first << prom_labels(key.second) << " " << gauge.value()
       << "\n";
  }
  for (const auto& [key, hist] : registry.histograms()) {
    type_line(os, last_typed, key.first, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.upper_bounds().size(); ++i) {
      cumulative += hist.bucket_counts()[i];
      os << key.first << "_bucket"
         << prom_labels_plus(key.second, "le",
                             std::to_string(hist.upper_bounds()[i]))
         << " " << cumulative << "\n";
    }
    os << key.first << "_bucket"
       << prom_labels_plus(key.second, "le", "+Inf") << " " << hist.count()
       << "\n";
    os << key.first << "_sum" << prom_labels(key.second) << " " << hist.sum()
       << "\n";
    os << key.first << "_count" << prom_labels(key.second) << " "
       << hist.count() << "\n";
    // Derived quantiles ride as comments: the exposition format has no
    // native quantile series for TYPE histogram, and fake series would
    // corrupt a real scraper's view of the family.
    os << "# quantile " << key.first << prom_labels(key.second)
       << " p50=" << fmt_quantile(hist.quantile(0.50))
       << " p95=" << fmt_quantile(hist.quantile(0.95))
       << " p99=" << fmt_quantile(hist.quantile(0.99)) << "\n";
  }
  return os.str();
}

std::string to_json(const MetricsRegistry& registry) {
  std::ostringstream os;
  os << "{\"counters\":[";
  bool first = true;
  for (const auto& [key, counter] : registry.counters()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":" << json_quote(key.first)
       << ",\"labels\":" << json_labels(key.second)
       << ",\"value\":" << counter.value() << "}";
  }
  os << "],\"gauges\":[";
  first = true;
  for (const auto& [key, gauge] : registry.gauges()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":" << json_quote(key.first)
       << ",\"labels\":" << json_labels(key.second)
       << ",\"value\":" << gauge.value() << "}";
  }
  os << "],\"histograms\":[";
  first = true;
  for (const auto& [key, hist] : registry.histograms()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":" << json_quote(key.first)
       << ",\"labels\":" << json_labels(key.second) << ",\"buckets\":[";
    for (std::size_t i = 0; i < hist.upper_bounds().size(); ++i) {
      if (i != 0) os << ",";
      os << "{\"le\":" << hist.upper_bounds()[i]
         << ",\"count\":" << hist.bucket_counts()[i] << "}";
    }
    os << "],\"inf_count\":"
       << hist.bucket_counts()[hist.upper_bounds().size()]
       << ",\"sum\":" << hist.sum() << ",\"count\":" << hist.count()
       << ",\"p50\":" << fmt_quantile(hist.quantile(0.50))
       << ",\"p95\":" << fmt_quantile(hist.quantile(0.95))
       << ",\"p99\":" << fmt_quantile(hist.quantile(0.99)) << "}";
  }
  os << "],\"spans\":[";
  first = true;
  for (const auto& span : registry.spans()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":" << json_quote(span.name)
       << ",\"scope\":" << json_quote(span.scope)
       << ",\"begin_us\":" << span.begin_us << ",\"end_us\":" << span.end_us
       << ",\"seq\":" << span.seq << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace surgeon::obs
