// Exporters over the metrics registry.
//
// Two wire formats, both deterministic (series iterate in sorted key
// order, spans in completion order):
//   - Prometheus text exposition (counters, gauges, histograms with
//     cumulative `_bucket{le=...}` series),
//   - a JSON dump that additionally carries the span timeline, which has
//     no native Prometheus representation.
// Both are what bus::Client::mh_stats returns to a running module.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace surgeon::obs {

/// Prometheus text-exposition format (version 0.0.4).
[[nodiscard]] std::string to_prometheus(const MetricsRegistry& registry);

/// JSON object: {"counters": [...], "gauges": [...], "histograms": [...],
/// "spans": [...]}. Timestamps are virtual microseconds.
[[nodiscard]] std::string to_json(const MetricsRegistry& registry);

}  // namespace surgeon::obs
