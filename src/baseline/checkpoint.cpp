#include "baseline/checkpoint.hpp"

#include "support/diag.hpp"

namespace surgeon::baseline {

CheckpointRunner::CheckpointRunner(vm::Machine& machine,
                                   std::uint64_t interval_insns)
    : machine_(&machine),
      interval_(interval_insns == 0 ? 1 : interval_insns),
      next_checkpoint_at_(machine.instructions_executed() + interval_) {}

void CheckpointRunner::take_checkpoint() {
  last_ = machine_->checkpoint();
  ++stats_.checkpoints_taken;
  stats_.last_checkpoint_bytes = vm::Machine::snapshot_size(*last_);
  stats_.total_checkpoint_bytes += stats_.last_checkpoint_bytes;
  stats_.work_at_risk = 0;
}

vm::RunState CheckpointRunner::run(std::uint64_t max_insns) {
  std::uint64_t end = machine_->instructions_executed() + max_insns;
  vm::RunState state = machine_->state();
  while (machine_->instructions_executed() < end) {
    std::uint64_t until =
        std::min(end, next_checkpoint_at_) - machine_->instructions_executed();
    vm::StepResult r = machine_->step(until);
    state = r.state;
    stats_.instructions_executed += r.instructions;
    stats_.work_at_risk += r.instructions;
    if (machine_->instructions_executed() >= next_checkpoint_at_) {
      take_checkpoint();
      next_checkpoint_at_ += interval_;
    }
    if (state != vm::RunState::kRunnable) break;
  }
  return state;
}

void CheckpointRunner::rollback() {
  if (last_ == nullptr) {
    throw support::VmError("rollback requested before any checkpoint");
  }
  machine_->rollback(*last_);
  stats_.work_at_risk = 0;
}

}  // namespace surgeon::baseline
