// Baseline: reconfiguration WITHOUT module participation (module-level
// atomicity -- the platforms of refs [9]/[5] in the paper's taxonomy, §4).
//
// A module that cannot divulge its state can only be replaced when it is
// quiescent: back at its top-level wait with an empty activation-record
// stack below main. The replacement then starts a FRESH instance (status
// "new"); in-progress computation is lost, and if the module never
// quiesces -- say it is deep in a long recursion -- the reconfiguration
// waits arbitrarily long. Both costs are exactly what Section 4 contrasts
// against reconfiguration points.
#pragma once

#include <string>

#include "app/runtime.hpp"

namespace surgeon::baseline {

struct QuiescentReplaceOptions {
  std::string machine;  // empty = same machine
  std::uint64_t max_rounds = 1'000'000;
  /// Give up when virtual time advances this far without quiescence.
  net::SimTime quiesce_timeout_us = 60'000'000;
};

struct QuiescentReplaceReport {
  std::string old_instance;
  std::string new_instance;
  bool quiesced = false;           // false: timed out waiting
  net::SimTime requested_at = 0;
  net::SimTime quiesced_at = 0;    // when the module was observed idle
  net::SimTime completed_at = 0;
  std::size_t queued_messages_moved = 0;

  [[nodiscard]] net::SimTime total_delay() const noexcept {
    return completed_at - requested_at;
  }
};

/// Replaces `instance` without its participation: waits for quiescence
/// (stack depth 1 and blocked or sleeping), then swaps in a fresh instance,
/// moving queued messages but NO process state.
QuiescentReplaceReport quiescent_replace(
    app::Runtime& rt, const std::string& instance,
    const QuiescentReplaceOptions& options = {});

}  // namespace surgeon::baseline
