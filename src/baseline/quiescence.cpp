#include "baseline/quiescence.hpp"

#include "reconfig/scripts.hpp"

namespace surgeon::baseline {

using bus::BindEdit;
using bus::BindEditBatch;
using bus::BindingEnd;

QuiescentReplaceReport quiescent_replace(
    app::Runtime& rt, const std::string& instance,
    const QuiescentReplaceOptions& options) {
  bus::Bus& bus = rt.bus();
  if (!bus.has_module(instance)) {
    throw reconfig::ScriptError("quiescent_replace: unknown module '" +
                                instance + "'");
  }
  const app::ModuleImage* image = rt.image_of(instance);
  if (image == nullptr) {
    throw reconfig::ScriptError("quiescent_replace: no image for '" +
                                instance + "'");
  }
  QuiescentReplaceReport report;
  report.old_instance = instance;
  report.requested_at = rt.now();
  const bus::ModuleInfo old_info = bus.module_info(instance);

  // Wait for quiescence: the module sitting at its top-level wait.
  net::SimTime deadline = rt.now() + options.quiesce_timeout_us;
  report.quiesced = rt.run_until(
      [&] {
        if (rt.now() >= deadline) return true;
        vm::Machine* m = rt.machine_of(instance);
        if (m == nullptr) return true;
        if (m->state() == vm::RunState::kDone) return true;
        bool idle = m->state() == vm::RunState::kBlockedRead ||
                    m->state() == vm::RunState::kSleeping;
        return idle && m->stack_depth() == 1;
      },
      options.max_rounds);
  {
    vm::Machine* m = rt.machine_of(instance);
    bool idle = m != nullptr && m->stack_depth() == 1 &&
                (m->state() == vm::RunState::kBlockedRead ||
                 m->state() == vm::RunState::kSleeping ||
                 m->state() == vm::RunState::kDone);
    report.quiesced = idle;
  }
  report.quiesced_at = rt.now();
  if (!report.quiesced) {
    report.completed_at = rt.now();
    return report;  // timed out: reconfiguration could not be performed
  }

  // Swap in a fresh instance; no state moves (the defining limitation).
  const std::string target =
      options.machine.empty() ? old_info.machine : options.machine;
  report.new_instance = rt.fresh_instance_name(instance);
  rt.install_module(report.new_instance, *image, target, "new");

  BindEditBatch batch;
  for (const auto& iface : bus.interface_names(instance)) {
    BindingEnd old_end{instance, iface};
    BindingEnd new_end{report.new_instance, iface};
    for (const auto& peer : bus.bound_peers(old_end)) {
      batch.add(BindEdit{BindEdit::Op::kDel, old_end, peer});
      batch.add(BindEdit{BindEdit::Op::kAdd, new_end, peer});
    }
    report.queued_messages_moved += bus.queue_depth(instance, iface);
    batch.add(BindEdit{BindEdit::Op::kCaptureQueue, old_end, new_end});
  }
  bus.rebind(batch);
  rt.start_module(report.new_instance);
  rt.remove_module(instance);
  report.completed_at = rt.now();
  return report;
}

}  // namespace surgeon::baseline
