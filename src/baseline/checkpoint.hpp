// Baseline: periodic checkpointing with rollback (the alternative the paper
// explicitly rejects in §4).
//
// "Our approach does not use checkpointing, in which the entire state of
// the process is saved periodically, and execution is rolled back to the
// most recent checkpoint in order to restore the process. [...] The cost of
// capturing the process state is paid only when a reconfiguration is
// performed, instead of at regular intervals during execution."
//
// CheckpointRunner drives a standalone VM, snapshotting its entire state
// (an OS-level privilege our VM grants the runner, unlike a module) every
// `interval` instructions. A reconfiguration at an arbitrary moment rolls
// back to the last checkpoint, losing the work since. The benchmark
// compares its steady-state overhead and its lost-work/staleness against
// the flag-test-only overhead of reconfiguration points.
#pragma once

#include <cstdint>
#include <memory>

#include "vm/machine.hpp"

namespace surgeon::baseline {

struct CheckpointStats {
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t instructions_executed = 0;
  std::size_t last_checkpoint_bytes = 0;
  std::size_t total_checkpoint_bytes = 0;
  /// Instructions of work that a rollback at the current moment would lose.
  std::uint64_t work_at_risk = 0;
};

class CheckpointRunner {
 public:
  /// Checkpoints the machine every `interval_insns` executed instructions.
  CheckpointRunner(vm::Machine& machine, std::uint64_t interval_insns);

  /// Runs the machine for up to `max_insns`, taking checkpoints on
  /// schedule. Returns the machine's final step state.
  vm::RunState run(std::uint64_t max_insns);

  /// Rolls the machine back to the most recent checkpoint (the baseline's
  /// only way to "restore" state). Throws VmError if none was taken.
  void rollback();

  [[nodiscard]] const CheckpointStats& stats() const noexcept {
    return stats_;
  }

 private:
  void take_checkpoint();

  vm::Machine* machine_;
  std::uint64_t interval_;
  std::uint64_t next_checkpoint_at_;
  std::shared_ptr<vm::Machine::Snapshot> last_;
  CheckpointStats stats_;
};

}  // namespace surgeon::baseline
