// Cost models for the two migration-preparation strategies compared in §4.
//
// Theimer & Hayes (ref [10]) prepare a *migration program* at migration
// time: a source program that rebuilds the process state is generated,
// compiled on the target machine, and executed. Preparation cost is paid
// per migration, but nothing is paid until one happens and migration points
// are available between every pair of statements.
//
// Hofmeister & Purtilo (this paper) prepare the module for all possible
// reconfigurations when it is first compiled: migration-time cost is just
// signal + state move + restore, but every execution pays the flag tests.
//
// The authors had no common testbed to compare on; we model the
// generate+compile step with a calibrated cost function (defaults shaped on
// early-90s compile costs scaled to instructions of our VM) and measure
// everything else directly. EXPERIMENTS.md discusses sensitivity to the
// constants.
#pragma once

#include <cstdint>

#include "net/sim.hpp"
#include "vm/bytecode.hpp"

namespace surgeon::baseline {

struct MigrationCostModel {
  /// Fixed cost to generate the migration program source at migration time.
  net::SimTime generate_base_us = 50'000;
  /// Generation cost per function whose activation records are live (the
  /// migration program contains one modified procedure per such function).
  net::SimTime generate_per_frame_us = 2'000;
  /// Fixed compiler invocation cost on the target machine.
  net::SimTime compile_base_us = 400'000;
  /// Compile cost per bytecode instruction of the migration program.
  net::SimTime compile_per_insn_ns = 500;
};

/// Migration-time preparation latency under the Theimer-Hayes strategy for
/// a process whose activation record stack is `stack_depth` deep.
[[nodiscard]] net::SimTime theimer_hayes_preparation_us(
    const MigrationCostModel& model, const vm::CompiledProgram& program,
    std::size_t stack_depth);

/// Compile-time preparation cost of our strategy (paid once, not at
/// migration): the instruction-count growth of the transformed program.
struct PreparationCost {
  std::size_t original_insns = 0;
  std::size_t transformed_insns = 0;

  [[nodiscard]] double growth_factor() const noexcept {
    return original_insns == 0
               ? 1.0
               : static_cast<double>(transformed_insns) /
                     static_cast<double>(original_insns);
  }
};

[[nodiscard]] PreparationCost preparation_cost(
    const vm::CompiledProgram& original,
    const vm::CompiledProgram& transformed);

}  // namespace surgeon::baseline
