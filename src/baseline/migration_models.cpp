#include "baseline/migration_models.hpp"

namespace surgeon::baseline {

net::SimTime theimer_hayes_preparation_us(const MigrationCostModel& model,
                                          const vm::CompiledProgram& program,
                                          std::size_t stack_depth) {
  // The generated migration program contains a modified version of each
  // procedure on the activation record stack (one per frame), plus the
  // data-area reconstruction, then a full compile on the target.
  net::SimTime generate =
      model.generate_base_us + model.generate_per_frame_us * stack_depth;
  net::SimTime compile =
      model.compile_base_us +
      model.compile_per_insn_ns * program.total_instructions() / 1000;
  return generate + compile;
}

PreparationCost preparation_cost(const vm::CompiledProgram& original,
                                 const vm::CompiledProgram& transformed) {
  PreparationCost cost;
  cost.original_insns = original.total_instructions();
  cost.transformed_insns = transformed.total_instructions();
  return cost;
}

}  // namespace surgeon::baseline
