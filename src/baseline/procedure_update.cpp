#include "baseline/procedure_update.hpp"

#include "support/diag.hpp"

namespace surgeon::baseline {

using support::VmError;
using vm::CompiledFunction;
using vm::CompiledProgram;
using vm::Op;

namespace {

/// Structural code equality modulo constant-pool indices: compares opcodes
/// and operands, resolving kPushConst through each side's pool and kCall
/// through each side's function names.
bool same_code(const CompiledProgram& pa, const CompiledFunction& fa,
               const CompiledProgram& pb, const CompiledFunction& fb) {
  if (fa.param_count != fb.param_count || fa.slot_types != fb.slot_types ||
      fa.returns_value != fb.returns_value ||
      fa.code.size() != fb.code.size()) {
    return false;
  }
  for (std::size_t i = 0; i < fa.code.size(); ++i) {
    const auto& ia = fa.code[i];
    const auto& ib = fb.code[i];
    if (ia.op != ib.op || ia.b != ib.b) return false;
    switch (ia.op) {
      case Op::kPushConst:
      case Op::kPushConstAdd:
      case Op::kPushConstSub:
      case Op::kPushConstMul:
      case Op::kStmtPushConst:
      case Op::kPushConstAddStore:
      case Op::kPushConstSubStore:
        if (!(pa.constants[static_cast<std::size_t>(ia.a)] ==
              pb.constants[static_cast<std::size_t>(ib.a)])) {
          return false;
        }
        break;
      case Op::kCall:
        if (pa.functions[static_cast<std::size_t>(ia.a)].name !=
            pb.functions[static_cast<std::size_t>(ib.a)].name) {
          return false;
        }
        break;
      default:
        if (ia.a != ib.a) return false;
    }
  }
  return true;
}

}  // namespace

ProcedureUpdater::ProcedureUpdater(
    vm::Machine& machine, const CompiledProgram& old_program,
    std::shared_ptr<const CompiledProgram> new_program)
    : machine_(&machine),
      old_program_(&old_program),
      new_program_(std::move(new_program)) {
  // The update may not add or remove procedures (the Frieder-Segal
  // prototype replaces procedure bodies in place).
  for (const auto& fn : old_program_->functions) {
    if (new_program_->function_index(fn.name) == UINT32_MAX) {
      throw VmError("procedure-level update removes function '" + fn.name +
                    "'");
    }
  }
  for (const auto& fn : new_program_->functions) {
    if (old_program_->function_index(fn.name) == UINT32_MAX) {
      throw VmError("procedure-level update adds function '" + fn.name + "'");
    }
  }
  // Call graph of the running version, from its bytecode.
  for (const auto& fn : old_program_->functions) {
    auto& callees = callees_[fn.name];
    for (const auto& insn : fn.code) {
      if (insn.op == Op::kCall) {
        const std::string& callee =
            old_program_->functions[static_cast<std::size_t>(insn.a)].name;
        if (callee != fn.name) callees.insert(callee);  // drop self-edges
      }
    }
  }
  // Changed set: functions whose code differs between versions.
  for (const auto& fn : old_program_->functions) {
    const auto& replacement =
        new_program_->functions[new_program_->function_index(fn.name)];
    if (!same_code(*old_program_, fn, *new_program_, replacement)) {
      remaining_.insert(fn.name);
    }
  }
}

bool ProcedureUpdater::ordering_satisfied(const std::string& name) const {
  auto it = callees_.find(name);
  if (it == callees_.end()) return true;
  for (const auto& callee : it->second) {
    if (remaining_.contains(callee)) return false;
  }
  return true;
}

std::set<std::string> ProcedureUpdater::blocked_by_ordering() const {
  std::set<std::string> blocked;
  for (const auto& name : remaining_) {
    if (!ordering_satisfied(name)) blocked.insert(name);
  }
  return blocked;
}

std::set<std::string> ProcedureUpdater::blocked_by_activity() const {
  std::set<std::string> blocked;
  for (const auto& name : remaining_) {
    if (!ordering_satisfied(name)) continue;
    if (machine_->function_active(old_program_->function_index(name))) {
      blocked.insert(name);
    }
  }
  return blocked;
}

std::size_t ProcedureUpdater::step() {
  std::size_t swapped = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = remaining_.begin(); it != remaining_.end();) {
      const std::string& name = *it;
      if (!ordering_satisfied(name) ||
          machine_->function_active(old_program_->function_index(name))) {
        ++it;
        continue;
      }
      machine_->replace_function(*new_program_, name);
      swapped_.insert(name);
      it = remaining_.erase(it);
      ++swapped;
      progress = true;
    }
  }
  return swapped;
}

}  // namespace surgeon::baseline
