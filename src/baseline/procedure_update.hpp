// Baseline: procedure-level dynamic updating (Frieder & Segal, ref [4] of
// the paper, discussed in §4).
//
// "The program is updated by replacing each procedure when it is not
// executing. To maintain consistency between the old version and the new
// during the replacement, they perform the update from the bottom up, by
// allowing a procedure to be replaced only after all the procedures it
// invokes have been replaced. [...] when the higher-level procedures have
// changed, the update cannot complete until these procedures are inactive.
// For example, when the main procedure has changed, the update cannot
// complete until the program terminates."
//
// ProcedureUpdater drives exactly that strategy against a running VM: it
// diffs the old and new compiled programs, orders the changed procedures
// bottom-up along the (old) call graph, and swaps each one in as soon as it
// is both inactive and unblocked by the ordering. The tests and benchmarks
// reproduce the paper's observations: leaf-only changes land quickly;
// changes to main never land while the module runs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "vm/machine.hpp"

namespace surgeon::baseline {

class ProcedureUpdater {
 public:
  /// Prepares an update of `machine` (currently running `old_program`) to
  /// `new_program`. Both programs must declare the same function names;
  /// only functions whose code differs are scheduled for replacement.
  /// Throws VmError if the new version adds or removes functions.
  ProcedureUpdater(vm::Machine& machine, const vm::CompiledProgram& old_program,
                   std::shared_ptr<const vm::CompiledProgram> new_program);

  /// Attempts to swap every eligible procedure (inactive + all changed
  /// callees already swapped). Returns the number of procedures swapped in
  /// this pass. Call between scheduling slices until complete().
  std::size_t step();

  [[nodiscard]] bool complete() const noexcept { return remaining_.empty(); }
  [[nodiscard]] const std::set<std::string>& remaining() const noexcept {
    return remaining_;
  }
  [[nodiscard]] std::size_t swapped_count() const noexcept {
    return swapped_.size();
  }
  /// Functions whose swap is blocked only by the bottom-up ordering (their
  /// changed callees are still pending), vs blocked by being active.
  [[nodiscard]] std::set<std::string> blocked_by_ordering() const;
  [[nodiscard]] std::set<std::string> blocked_by_activity() const;

 private:
  [[nodiscard]] bool ordering_satisfied(const std::string& name) const;

  vm::Machine* machine_;
  const vm::CompiledProgram* old_program_;
  std::shared_ptr<const vm::CompiledProgram> new_program_;
  /// name -> set of functions it calls (old version's static call graph,
  /// recovered from bytecode; self-edges dropped).
  std::map<std::string, std::set<std::string>> callees_;
  std::set<std::string> remaining_;
  std::set<std::string> swapped_;
};

}  // namespace surgeon::baseline
