#include "minic/sema.hpp"

#include <map>
#include <set>

#include "minic/builtins.hpp"
#include "support/format.hpp"

namespace surgeon::minic {

using support::SemaError;
using support::SourceLoc;
using support::ValueKind;

std::optional<BuiltinId> lookup_builtin(std::string_view name) {
  static const std::map<std::string, BuiltinId, std::less<>> table = {
      {"mh_read", BuiltinId::kMhRead},
      {"mh_write", BuiltinId::kMhWrite},
      {"mh_query_ifmsgs", BuiltinId::kMhQueryIfmsgs},
      {"mh_capture", BuiltinId::kMhCapture},
      {"mh_restore", BuiltinId::kMhRestore},
      {"mh_encode", BuiltinId::kMhEncode},
      {"mh_decode", BuiltinId::kMhDecode},
      {"mh_getstatus", BuiltinId::kMhGetstatus},
      {"mh_signal", BuiltinId::kMhSignal},
      {"sleep", BuiltinId::kSleep},
      {"print", BuiltinId::kPrint},
      {"random", BuiltinId::kRandom},
      {"clock", BuiltinId::kClock},
      {"mh_self", BuiltinId::kMhSelf},
      {"mh_alloc_int", BuiltinId::kMhAllocInt},
      {"mh_alloc_real", BuiltinId::kMhAllocReal},
      {"mh_alloc_str", BuiltinId::kMhAllocStr},
      {"mh_free", BuiltinId::kMhFree},
      {"mh_peek_location", BuiltinId::kMhPeekLocation},
  };
  auto it = table.find(name);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

const char* builtin_name(BuiltinId id) noexcept {
  switch (id) {
    case BuiltinId::kMhRead: return "mh_read";
    case BuiltinId::kMhWrite: return "mh_write";
    case BuiltinId::kMhQueryIfmsgs: return "mh_query_ifmsgs";
    case BuiltinId::kMhCapture: return "mh_capture";
    case BuiltinId::kMhRestore: return "mh_restore";
    case BuiltinId::kMhEncode: return "mh_encode";
    case BuiltinId::kMhDecode: return "mh_decode";
    case BuiltinId::kMhGetstatus: return "mh_getstatus";
    case BuiltinId::kMhSignal: return "mh_signal";
    case BuiltinId::kSleep: return "sleep";
    case BuiltinId::kPrint: return "print";
    case BuiltinId::kRandom: return "random";
    case BuiltinId::kClock: return "clock";
    case BuiltinId::kMhSelf: return "mh_self";
    case BuiltinId::kMhAllocInt: return "mh_alloc_int";
    case BuiltinId::kMhAllocReal: return "mh_alloc_real";
    case BuiltinId::kMhAllocStr: return "mh_alloc_str";
    case BuiltinId::kMhFree: return "mh_free";
    case BuiltinId::kMhPeekLocation: return "mh_peek_location";
  }
  return "?";
}

namespace {

[[nodiscard]] bool kind_matches(ValueKind kind, const Type& type) {
  switch (kind) {
    case ValueKind::kInt:
      return type == kIntType;
    case ValueKind::kReal:
      return type == kRealType || type == kIntType;  // promote int
    case ValueKind::kString:
      return type == kStringType;
    case ValueKind::kPointer:
      return type.is_pointer;
  }
  return false;
}

class Sema {
 public:
  Sema(Program& prog, const SemaOptions& opts) : prog_(prog), opts_(opts) {}

  void run() {
    // Globals first: they are visible everywhere.
    globals_.clear();
    for (std::uint32_t i = 0; i < prog_.globals.size(); ++i) {
      auto& g = prog_.globals[i];
      if (globals_.contains(g.name)) {
        throw SemaError(g.loc, "duplicate global '" + g.name + "'");
      }
      if (lookup_builtin(g.name)) {
        throw SemaError(g.loc, "'" + g.name + "' shadows a builtin");
      }
      globals_[g.name] = i;
      if (g.init) {
        Type t = check_expr(*g.init);
        require_convertible(t, g.type, g.loc, "global initializer");
      }
    }
    for (std::uint32_t i = 0; i < prog_.functions.size(); ++i) {
      const auto& f = *prog_.functions[i];
      if (prog_.function_index(f.name) != i) {
        throw SemaError(f.loc, "duplicate function '" + f.name + "'");
      }
      if (lookup_builtin(f.name)) {
        throw SemaError(f.loc, "function '" + f.name + "' shadows a builtin");
      }
      if (globals_.contains(f.name)) {
        throw SemaError(f.loc,
                        "function '" + f.name + "' collides with a global");
      }
    }
    for (auto& f : prog_.functions) check_function(*f);
    if (opts_.require_main) {
      const Function* main_fn = prog_.find_function("main");
      if (main_fn == nullptr) {
        throw SemaError(SourceLoc{}, "program has no main() function");
      }
      if (!main_fn->params.empty()) {
        throw SemaError(main_fn->loc, "main() must take no parameters");
      }
    }
  }

 private:
  void check_function(Function& fn) {
    fn_ = &fn;
    fn.locals.clear();
    params_.clear();
    locals_.clear();
    labels_.clear();
    gotos_.clear();
    for (std::uint32_t i = 0; i < fn.params.size(); ++i) {
      const auto& p = fn.params[i];
      if (params_.contains(p.name)) {
        throw SemaError(p.loc, "duplicate parameter '" + p.name + "'");
      }
      params_[p.name] = i;
    }
    collect_labels(*fn.body);
    collect_locals(*fn.body);
    check_stmt(*fn.body);
    for (const auto& [label, loc] : gotos_) {
      if (!labels_.contains(label)) {
        throw SemaError(loc, "goto to undefined label '" + label + "'");
      }
    }
    fn_ = nullptr;
  }

  /// Labels have function scope and may be the target of a forward goto,
  /// so they are collected before the statement walk.
  void collect_labels(Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kLabeled: {
        auto& s = static_cast<LabeledStmt&>(stmt);
        if (!labels_.insert(s.label).second) {
          throw SemaError(s.loc, "duplicate label '" + s.label + "'");
        }
        if (s.inner) collect_labels(*s.inner);
        break;
      }
      case StmtKind::kBlock:
        for (auto& child : static_cast<BlockStmt&>(stmt).stmts) {
          collect_labels(*child);
        }
        break;
      case StmtKind::kIf: {
        auto& s = static_cast<IfStmt&>(stmt);
        collect_labels(*s.then_branch);
        if (s.else_branch) collect_labels(*s.else_branch);
        break;
      }
      case StmtKind::kWhile:
        collect_labels(*static_cast<WhileStmt&>(stmt).body);
        break;
      case StmtKind::kFor: {
        auto& s = static_cast<ForStmt&>(stmt);
        if (s.init) collect_labels(*s.init);
        if (s.step) collect_labels(*s.step);
        collect_labels(*s.body);
        break;
      }
      default:
        break;
    }
  }

  /// Locals have function scope (a declaration anywhere in the body makes
  /// the name visible throughout the function, as slots in one activation
  /// record). This matters for the transformer: the restore block it inserts
  /// at the top of a function references every local of that function.
  void collect_locals(Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kDecl: {
        auto& s = static_cast<DeclStmt&>(stmt);
        if (s.type.is_void()) {
          throw SemaError(s.loc, "variable '" + s.name + "' cannot be void");
        }
        if (params_.contains(s.name) || locals_.contains(s.name)) {
          throw SemaError(s.loc, "duplicate variable '" + s.name +
                                     "' (MiniC locals have function scope)");
        }
        s.slot = static_cast<std::uint32_t>(fn_->locals.size());
        locals_[s.name] = s.slot;
        fn_->locals.push_back(Function::LocalInfo{s.name, s.type});
        break;
      }
      case StmtKind::kBlock:
        for (auto& child : static_cast<BlockStmt&>(stmt).stmts) {
          collect_locals(*child);
        }
        break;
      case StmtKind::kIf: {
        auto& s = static_cast<IfStmt&>(stmt);
        collect_locals(*s.then_branch);
        if (s.else_branch) collect_locals(*s.else_branch);
        break;
      }
      case StmtKind::kWhile:
        collect_locals(*static_cast<WhileStmt&>(stmt).body);
        break;
      case StmtKind::kFor: {
        auto& s = static_cast<ForStmt&>(stmt);
        if (s.init) collect_locals(*s.init);
        if (s.step) collect_locals(*s.step);
        collect_locals(*s.body);
        break;
      }
      case StmtKind::kLabeled: {
        auto& s = static_cast<LabeledStmt&>(stmt);
        if (s.inner) collect_locals(*s.inner);
        break;
      }
      default:
        break;
    }
  }

  void require_convertible(const Type& from, const Type& to, SourceLoc loc,
                           const char* what) {
    if (from == to) return;
    if (from == kIntType && to == kRealType) return;  // promotion
    if (from == Type{BaseType::kVoid, true} && to.is_pointer) return;  // null
    throw SemaError(loc, std::string(what) + ": cannot convert " +
                             from.to_string() + " to " + to.to_string());
  }

  void check_stmt(Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kBlock:
        for (auto& child : static_cast<BlockStmt&>(stmt).stmts) {
          check_stmt(*child);
        }
        return;
      case StmtKind::kDecl: {
        // The name was registered by collect_locals; only the initializer
        // needs checking here.
        auto& s = static_cast<DeclStmt&>(stmt);
        if (s.init) {
          Type t = check_expr(*s.init);
          require_convertible(t, s.type, s.loc, "initializer");
        }
        return;
      }
      case StmtKind::kAssign: {
        auto& s = static_cast<AssignStmt&>(stmt);
        Type target = check_lvalue(*s.target);
        Type value = check_expr(*s.value);
        require_convertible(value, target, s.loc, "assignment");
        return;
      }
      case StmtKind::kExpr:
        (void)check_expr(*static_cast<ExprStmt&>(stmt).expr);
        return;
      case StmtKind::kIf: {
        auto& s = static_cast<IfStmt&>(stmt);
        require_convertible(check_expr(*s.cond), kIntType, s.loc,
                            "if condition");
        check_stmt(*s.then_branch);
        if (s.else_branch) check_stmt(*s.else_branch);
        return;
      }
      case StmtKind::kWhile: {
        auto& s = static_cast<WhileStmt&>(stmt);
        require_convertible(check_expr(*s.cond), kIntType, s.loc,
                            "while condition");
        ++loop_depth_;
        check_stmt(*s.body);
        --loop_depth_;
        return;
      }
      case StmtKind::kFor: {
        auto& s = static_cast<ForStmt&>(stmt);
        if (s.init) check_stmt(*s.init);
        if (s.cond) {
          require_convertible(check_expr(*s.cond), kIntType, s.loc,
                              "for condition");
        }
        if (s.step) check_stmt(*s.step);
        ++loop_depth_;
        check_stmt(*s.body);
        --loop_depth_;
        return;
      }
      case StmtKind::kBreak:
        if (loop_depth_ == 0) {
          throw SemaError(stmt.loc, "break outside of a loop");
        }
        return;
      case StmtKind::kContinue:
        if (loop_depth_ == 0) {
          throw SemaError(stmt.loc, "continue outside of a loop");
        }
        return;
      case StmtKind::kReturn: {
        auto& s = static_cast<ReturnStmt&>(stmt);
        if (fn_->return_type.is_void()) {
          if (s.value) {
            throw SemaError(s.loc, "void function '" + fn_->name +
                                       "' cannot return a value");
          }
        } else {
          if (!s.value) {
            throw SemaError(s.loc, "function '" + fn_->name +
                                       "' must return a value");
          }
          require_convertible(check_expr(*s.value), fn_->return_type, s.loc,
                              "return value");
        }
        return;
      }
      case StmtKind::kGoto: {
        auto& s = static_cast<GotoStmt&>(stmt);
        gotos_.emplace_back(s.label, s.loc);
        return;
      }
      case StmtKind::kLabeled: {
        auto& s = static_cast<LabeledStmt&>(stmt);
        check_stmt(*s.inner);
        return;
      }
      case StmtKind::kEmpty:
        return;
    }
    throw SemaError(stmt.loc, "unknown statement kind");
  }

  Type check_lvalue(Expr& e) {
    switch (e.kind) {
      case ExprKind::kVar: {
        Type t = check_expr(e);
        auto& v = static_cast<VarExpr&>(e);
        if (v.storage == VarStorage::kFunc) {
          throw SemaError(e.loc, "cannot assign to function '" + v.name + "'");
        }
        return t;
      }
      case ExprKind::kDeref:
      case ExprKind::kIndex:
        return check_expr(e);
      default:
        throw SemaError(e.loc, "expression is not assignable");
    }
  }

  Type check_expr(Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return e.type = kIntType;
      case ExprKind::kRealLit:
        return e.type = kRealType;
      case ExprKind::kStrLit:
        return e.type = kStringType;
      case ExprKind::kNullLit:
        return e.type = Type{BaseType::kVoid, true};
      case ExprKind::kVar:
        return check_var(static_cast<VarExpr&>(e));
      case ExprKind::kUnary:
        return check_unary(static_cast<UnaryExpr&>(e));
      case ExprKind::kBinary:
        return check_binary(static_cast<BinaryExpr&>(e));
      case ExprKind::kCall:
        return check_call(static_cast<CallExpr&>(e));
      case ExprKind::kCast: {
        auto& c = static_cast<CastExpr&>(e);
        Type from = check_expr(*c.operand);
        if (!c.target.is_numeric() || !from.is_numeric()) {
          throw SemaError(c.loc, "cast requires numeric types, got " +
                                     from.to_string() + " -> " +
                                     c.target.to_string());
        }
        return e.type = c.target;
      }
      case ExprKind::kAddrOf: {
        auto& a = static_cast<AddrOfExpr&>(e);
        if (a.operand->kind != ExprKind::kVar) {
          throw SemaError(a.loc, "'&' requires a variable");
        }
        Type t = check_expr(*a.operand);
        if (t.is_pointer) {
          throw SemaError(a.loc,
                          "'&' of a pointer variable is not supported "
                          "(MiniC has single-level pointers)");
        }
        return e.type = t.pointer_to();
      }
      case ExprKind::kDeref: {
        auto& d = static_cast<DerefExpr&>(e);
        Type t = check_expr(*d.operand);
        if (!t.is_pointer || t.base == BaseType::kVoid) {
          throw SemaError(d.loc,
                          "'*' requires a typed pointer, got " + t.to_string());
        }
        return e.type = t.pointee();
      }
      case ExprKind::kIndex: {
        auto& i = static_cast<IndexExpr&>(e);
        Type base = check_expr(*i.base);
        if (!base.is_pointer || base.base == BaseType::kVoid) {
          throw SemaError(i.loc, "indexing requires a typed pointer, got " +
                                     base.to_string());
        }
        require_convertible(check_expr(*i.index), kIntType, i.loc, "index");
        return e.type = base.pointee();
      }
    }
    throw SemaError(e.loc, "unknown expression kind");
  }

  Type check_var(VarExpr& v) {
    if (auto it = locals_.find(v.name); it != locals_.end()) {
      v.storage = VarStorage::kLocal;
      v.slot = it->second;
      return v.type = fn_->locals[it->second].type;
    }
    if (auto it = params_.find(v.name); it != params_.end()) {
      v.storage = VarStorage::kParam;
      v.slot = it->second;
      return v.type = fn_->params[it->second].type;
    }
    if (auto it = globals_.find(v.name); it != globals_.end()) {
      v.storage = VarStorage::kGlobal;
      v.slot = it->second;
      return v.type = prog_.globals[it->second].type;
    }
    if (auto idx = prog_.function_index(v.name); idx != UINT32_MAX) {
      v.storage = VarStorage::kFunc;
      v.slot = idx;
      return v.type = kVoidType;
    }
    throw SemaError(v.loc, "undefined variable '" + v.name + "'");
  }

  Type check_unary(UnaryExpr& u) {
    Type t = check_expr(*u.operand);
    switch (u.op) {
      case UnaryOp::kNeg:
        if (!t.is_numeric()) {
          throw SemaError(u.loc, "'-' requires a number, got " + t.to_string());
        }
        return u.type = t;
      case UnaryOp::kNot:
        require_convertible(t, kIntType, u.loc, "'!' operand");
        return u.type = kIntType;
    }
    throw SemaError(u.loc, "unknown unary operator");
  }

  Type check_binary(BinaryExpr& b) {
    Type lt = check_expr(*b.lhs);
    Type rt = check_expr(*b.rhs);
    switch (b.op) {
      case BinaryOp::kAdd:
        if (lt == kStringType && rt == kStringType) {
          return b.type = kStringType;
        }
        [[fallthrough]];
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
        if (!lt.is_numeric() || !rt.is_numeric()) {
          throw SemaError(b.loc, std::string("'") + binary_op_spelling(b.op) +
                                     "' requires numbers, got " +
                                     lt.to_string() + " and " + rt.to_string());
        }
        return b.type = (lt == kRealType || rt == kRealType) ? kRealType
                                                             : kIntType;
      case BinaryOp::kMod:
        if (lt != kIntType || rt != kIntType) {
          throw SemaError(b.loc, "'%' requires integers");
        }
        return b.type = kIntType;
      case BinaryOp::kEq:
      case BinaryOp::kNe:
        if (lt.is_pointer && (rt.is_pointer)) return b.type = kIntType;
        [[fallthrough]];
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        if (lt.is_numeric() && rt.is_numeric()) return b.type = kIntType;
        if (lt == kStringType && rt == kStringType) return b.type = kIntType;
        throw SemaError(b.loc, std::string("'") + binary_op_spelling(b.op) +
                                   "' cannot compare " + lt.to_string() +
                                   " and " + rt.to_string());
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        require_convertible(lt, kIntType, b.loc, "logical operand");
        require_convertible(rt, kIntType, b.loc, "logical operand");
        return b.type = kIntType;
    }
    throw SemaError(b.loc, "unknown binary operator");
  }

  // --- calls ---------------------------------------------------------------

  Type check_call(CallExpr& c) {
    if (auto builtin = lookup_builtin(c.callee)) {
      c.is_builtin = true;
      c.callee_index = static_cast<std::uint32_t>(*builtin);
      return c.type = check_builtin_call(c, *builtin);
    }
    auto idx = prog_.function_index(c.callee);
    if (idx == UINT32_MAX) {
      throw SemaError(c.loc, "call to undefined function '" + c.callee + "'");
    }
    c.callee_index = idx;
    const Function& fn = *prog_.functions[idx];
    if (c.args.size() != fn.params.size()) {
      throw SemaError(c.loc, "function '" + c.callee + "' takes " +
                                 std::to_string(fn.params.size()) +
                                 " arguments, got " +
                                 std::to_string(c.args.size()));
    }
    for (std::size_t i = 0; i < c.args.size(); ++i) {
      Type at = check_expr(*c.args[i]);
      require_convertible(at, fn.params[i].type, c.args[i]->loc, "argument");
    }
    return c.type = fn.return_type;
  }

  /// Extracts a format string literal argument and parses it.
  std::vector<ValueKind> format_arg(CallExpr& c, std::size_t index) {
    if (index >= c.args.size() ||
        c.args[index]->kind != ExprKind::kStrLit) {
      throw SemaError(c.loc, std::string(builtin_name(static_cast<BuiltinId>(
                                 c.callee_index))) +
                                 ": argument " + std::to_string(index + 1) +
                                 " must be a format string literal");
    }
    auto& lit = static_cast<StrLit&>(*c.args[index]);
    lit.type = kStringType;
    try {
      return support::parse_format(lit.value);
    } catch (const support::ParseError& e) {
      throw SemaError(lit.loc, e.what());
    }
  }

  /// A receive target: either &var with var's type matching `kind`, or a
  /// pointer-typed expression whose pointee matches. The special case
  /// `kind == kPointer` with an &ptr target is permitted here even though
  /// general MiniC has no pointer-to-pointer type: the restore machinery
  /// needs to write a pointer back into a pointer variable (Figure 4's
  /// mh_restore writes through rp but into &num, &n as well).
  void check_receive_target(Expr& e, ValueKind kind) {
    if (e.kind == ExprKind::kAddrOf) {
      auto& a = static_cast<AddrOfExpr&>(e);
      if (a.operand->kind != ExprKind::kVar) {
        throw SemaError(e.loc, "receive target '&' requires a variable");
      }
      Type var_type = check_var(static_cast<VarExpr&>(*a.operand));
      if (kind == ValueKind::kPointer) {
        if (!var_type.is_pointer) {
          throw SemaError(e.loc, "format 'p' requires a pointer variable");
        }
        e.type = Type{BaseType::kVoid, true};
        return;
      }
      if (!kind_matches(kind, var_type) || var_type.is_pointer) {
        throw SemaError(e.loc, std::string("receive target type ") +
                                   var_type.to_string() +
                                   " does not match format '" +
                                   support::value_kind_code(kind) + "'");
      }
      e.type = var_type.pointer_to();
      return;
    }
    Type t = check_expr(e);
    if (!t.is_pointer || t.base == BaseType::kVoid ||
        !kind_matches(kind, t.pointee()) || kind == ValueKind::kPointer) {
      throw SemaError(e.loc, std::string("receive target must be a pointer "
                                         "matching format '") +
                                 support::value_kind_code(kind) + "', got " +
                                 t.to_string());
    }
  }

  void check_send_value(Expr& e, ValueKind kind) {
    Type t = check_expr(e);
    if (!kind_matches(kind, t)) {
      throw SemaError(e.loc, std::string("value of type ") + t.to_string() +
                                 " does not match format '" +
                                 support::value_kind_code(kind) + "'");
    }
  }

  void expect_args(const CallExpr& c, std::size_t n) {
    if (c.args.size() != n) {
      throw SemaError(c.loc, std::string(builtin_name(static_cast<BuiltinId>(
                                 c.callee_index))) +
                                 " takes " + std::to_string(n) +
                                 " arguments, got " +
                                 std::to_string(c.args.size()));
    }
  }

  Type check_builtin_call(CallExpr& c, BuiltinId id) {
    switch (id) {
      case BuiltinId::kMhRead: {
        if (c.args.size() < 2) {
          throw SemaError(c.loc, "mh_read(iface, fmt, targets...)");
        }
        require_convertible(check_expr(*c.args[0]), kStringType, c.loc,
                            "interface name");
        auto kinds = format_arg(c, 1);
        if (c.args.size() != kinds.size() + 2) {
          throw SemaError(c.loc, "mh_read: format " +
                                     std::to_string(kinds.size()) +
                                     " values but " +
                                     std::to_string(c.args.size() - 2) +
                                     " targets");
        }
        for (std::size_t i = 0; i < kinds.size(); ++i) {
          check_receive_target(*c.args[i + 2], kinds[i]);
        }
        return kVoidType;
      }
      case BuiltinId::kMhWrite: {
        if (c.args.size() < 2) {
          throw SemaError(c.loc, "mh_write(iface, fmt, values...)");
        }
        require_convertible(check_expr(*c.args[0]), kStringType, c.loc,
                            "interface name");
        auto kinds = format_arg(c, 1);
        if (c.args.size() != kinds.size() + 2) {
          throw SemaError(c.loc, "mh_write: format " +
                                     std::to_string(kinds.size()) +
                                     " values but " +
                                     std::to_string(c.args.size() - 2) +
                                     " supplied");
        }
        for (std::size_t i = 0; i < kinds.size(); ++i) {
          check_send_value(*c.args[i + 2], kinds[i]);
        }
        return kVoidType;
      }
      case BuiltinId::kMhQueryIfmsgs:
        expect_args(c, 1);
        require_convertible(check_expr(*c.args[0]), kStringType, c.loc,
                            "interface name");
        return kIntType;
      case BuiltinId::kMhCapture: {
        if (c.args.empty()) {
          throw SemaError(c.loc, "mh_capture(fmt, values...)");
        }
        auto kinds = format_arg(c, 0);
        if (c.args.size() != kinds.size() + 1) {
          throw SemaError(c.loc, "mh_capture: format " +
                                     std::to_string(kinds.size()) +
                                     " values but " +
                                     std::to_string(c.args.size() - 1) +
                                     " supplied");
        }
        for (std::size_t i = 0; i < kinds.size(); ++i) {
          check_send_value(*c.args[i + 1], kinds[i]);
        }
        return kVoidType;
      }
      case BuiltinId::kMhRestore: {
        if (c.args.empty()) {
          throw SemaError(c.loc, "mh_restore(fmt, targets...)");
        }
        auto kinds = format_arg(c, 0);
        if (c.args.size() != kinds.size() + 1) {
          throw SemaError(c.loc, "mh_restore: format " +
                                     std::to_string(kinds.size()) +
                                     " values but " +
                                     std::to_string(c.args.size() - 1) +
                                     " targets");
        }
        for (std::size_t i = 0; i < kinds.size(); ++i) {
          check_receive_target(*c.args[i + 1], kinds[i]);
        }
        return kVoidType;
      }
      case BuiltinId::kMhEncode:
      case BuiltinId::kMhDecode:
        expect_args(c, 0);
        return kVoidType;
      case BuiltinId::kMhGetstatus:
      case BuiltinId::kMhSelf:
        expect_args(c, 0);
        return kStringType;
      case BuiltinId::kMhSignal: {
        expect_args(c, 1);
        if (c.args[0]->kind != ExprKind::kVar) {
          throw SemaError(c.loc, "mh_signal requires a handler function name");
        }
        auto& v = static_cast<VarExpr&>(*c.args[0]);
        Type t = check_var(v);
        if (v.storage != VarStorage::kFunc) {
          throw SemaError(c.loc, "'" + v.name + "' is not a function");
        }
        const Function& handler = *prog_.functions[v.slot];
        if (!handler.return_type.is_void() || !handler.params.empty()) {
          throw SemaError(c.loc, "signal handler '" + v.name +
                                     "' must be void and take no parameters");
        }
        (void)t;
        return kVoidType;
      }
      case BuiltinId::kSleep:
        expect_args(c, 1);
        require_convertible(check_expr(*c.args[0]), kIntType, c.loc,
                            "sleep seconds");
        return kVoidType;
      case BuiltinId::kPrint:
        for (auto& a : c.args) (void)check_expr(*a);
        return kVoidType;
      case BuiltinId::kRandom:
        expect_args(c, 1);
        require_convertible(check_expr(*c.args[0]), kIntType, c.loc,
                            "random bound");
        return kIntType;
      case BuiltinId::kClock:
        expect_args(c, 0);
        return kIntType;
      case BuiltinId::kMhAllocInt:
      case BuiltinId::kMhAllocReal:
      case BuiltinId::kMhAllocStr: {
        expect_args(c, 1);
        require_convertible(check_expr(*c.args[0]), kIntType, c.loc,
                            "allocation size");
        BaseType base = id == BuiltinId::kMhAllocInt    ? BaseType::kInt
                        : id == BuiltinId::kMhAllocReal ? BaseType::kReal
                                                        : BaseType::kString;
        return Type{base, true};
      }
      case BuiltinId::kMhFree: {
        expect_args(c, 1);
        Type t = check_expr(*c.args[0]);
        if (!t.is_pointer) {
          throw SemaError(c.loc, "mh_free requires a pointer");
        }
        return kVoidType;
      }
      case BuiltinId::kMhPeekLocation:
        expect_args(c, 0);
        return kIntType;
    }
    throw SemaError(c.loc, "unknown builtin");
  }

  Program& prog_;
  SemaOptions opts_;
  Function* fn_ = nullptr;
  int loop_depth_ = 0;
  std::map<std::string, std::uint32_t> globals_;
  std::map<std::string, std::uint32_t> params_;
  std::map<std::string, std::uint32_t> locals_;
  std::set<std::string> labels_;
  std::vector<std::pair<std::string, SourceLoc>> gotos_;
};

}  // namespace

void analyze(Program& program, const SemaOptions& options) {
  Sema(program, options).run();
}

}  // namespace surgeon::minic
