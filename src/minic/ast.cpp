#include "minic/ast.hpp"

namespace surgeon::minic {

std::string Type::to_string() const {
  const char* name = "void";
  switch (base) {
    case BaseType::kVoid:
      name = "void";
      break;
    case BaseType::kInt:
      name = "int";
      break;
    case BaseType::kReal:
      name = "float";
      break;
    case BaseType::kString:
      name = "string";
      break;
  }
  return is_pointer ? std::string(name) + "*" : name;
}

const char* binary_op_spelling(BinaryOp op) noexcept {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "&&";
    case BinaryOp::kOr:
      return "||";
  }
  return "?";
}

Function* Program::find_function(const std::string& name) {
  for (auto& f : functions) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

const Function* Program::find_function(const std::string& name) const {
  for (const auto& f : functions) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

std::uint32_t Program::function_index(const std::string& name) const {
  for (std::uint32_t i = 0; i < functions.size(); ++i) {
    if (functions[i]->name == name) return i;
  }
  return UINT32_MAX;
}

ExprPtr make_int(std::int64_t v, SourceLoc loc) {
  return std::make_unique<IntLit>(v, loc);
}

ExprPtr make_real(double v, SourceLoc loc) {
  return std::make_unique<RealLit>(v, loc);
}

ExprPtr make_str(std::string v, SourceLoc loc) {
  return std::make_unique<StrLit>(std::move(v), loc);
}

ExprPtr make_var(std::string name, SourceLoc loc) {
  return std::make_unique<VarExpr>(std::move(name), loc);
}

ExprPtr make_call(std::string callee, std::vector<ExprPtr> args,
                  SourceLoc loc) {
  return std::make_unique<CallExpr>(std::move(callee), std::move(args), loc);
}

ExprPtr make_addr_of(std::string var, SourceLoc loc) {
  return std::make_unique<AddrOfExpr>(make_var(std::move(var), loc), loc);
}

ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc) {
  return std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs), loc);
}

ExprPtr clone_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return make_int(static_cast<const IntLit&>(e).value, e.loc);
    case ExprKind::kRealLit:
      return make_real(static_cast<const RealLit&>(e).value, e.loc);
    case ExprKind::kStrLit:
      return make_str(static_cast<const StrLit&>(e).value, e.loc);
    case ExprKind::kNullLit:
      return std::make_unique<NullLit>(e.loc);
    case ExprKind::kVar: {
      const auto& v = static_cast<const VarExpr&>(e);
      auto out = std::make_unique<VarExpr>(v.name, v.loc);
      return out;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      return std::make_unique<UnaryExpr>(u.op, clone_expr(*u.operand), u.loc);
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return std::make_unique<BinaryExpr>(b.op, clone_expr(*b.lhs),
                                          clone_expr(*b.rhs), b.loc);
    }
    case ExprKind::kCall: {
      const auto& c = static_cast<const CallExpr&>(e);
      std::vector<ExprPtr> args;
      args.reserve(c.args.size());
      for (const auto& a : c.args) args.push_back(clone_expr(*a));
      return std::make_unique<CallExpr>(c.callee, std::move(args), c.loc);
    }
    case ExprKind::kCast: {
      const auto& c = static_cast<const CastExpr&>(e);
      return std::make_unique<CastExpr>(c.target, clone_expr(*c.operand),
                                        c.loc);
    }
    case ExprKind::kAddrOf: {
      const auto& a = static_cast<const AddrOfExpr&>(e);
      return std::make_unique<AddrOfExpr>(clone_expr(*a.operand), a.loc);
    }
    case ExprKind::kDeref: {
      const auto& d = static_cast<const DerefExpr&>(e);
      return std::make_unique<DerefExpr>(clone_expr(*d.operand), d.loc);
    }
    case ExprKind::kIndex: {
      const auto& i = static_cast<const IndexExpr&>(e);
      return std::make_unique<IndexExpr>(clone_expr(*i.base),
                                         clone_expr(*i.index), i.loc);
    }
  }
  throw support::Error("clone_expr: unknown expression kind");
}

}  // namespace surgeon::minic
