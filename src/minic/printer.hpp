// MiniC source printer.
//
// Renders a (possibly transformed) AST back to compilable MiniC text. When a
// statement carries an xform_note ("begin capture" / "begin restore"), the
// printer frames it with the dashed comment banners of the paper's Figure 4,
// so the emitted module visually matches the published transformation.
#pragma once

#include <string>

#include "minic/ast.hpp"

namespace surgeon::minic {

struct PrintOptions {
  /// Emit the Figure-4 style comment banners around transformer-inserted
  /// blocks.
  bool banner_transformed_blocks = true;
  int indent_width = 2;
};

[[nodiscard]] std::string print_program(const Program& program,
                                        const PrintOptions& options = {});
[[nodiscard]] std::string print_stmt(const Stmt& stmt,
                                     const PrintOptions& options = {});
[[nodiscard]] std::string print_expr(const Expr& expr);

}  // namespace surgeon::minic
