// MiniC semantic analysis.
//
// Resolves every variable reference (global / parameter / local / function),
// assigns storage slots, type-checks expressions and statements (with the
// usual int -> float promotion), validates goto/label structure, and
// type-checks builtin calls against their format strings.
//
// Sema mutates the AST in place (VarExpr::storage/slot, Expr::type,
// CallExpr::callee_index, Function::locals) and must run before the
// compiler, the transformer, or the call-graph builder.
#pragma once

#include "minic/ast.hpp"

namespace surgeon::minic {

struct SemaOptions {
  /// Require a main() function (on for whole modules; off for fragments).
  bool require_main = true;
};

/// Analyzes a parsed program. Throws SemaError on the first error.
void analyze(Program& program, const SemaOptions& options = {});

/// Re-runs resolution on a program the transformer has modified. Identical
/// to analyze(); the separate name documents the required second pass.
inline void reanalyze(Program& program, const SemaOptions& options = {}) {
  analyze(program, options);
}

}  // namespace surgeon::minic
