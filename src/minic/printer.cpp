#include "minic/printer.hpp"

#include <sstream>

#include "support/strutil.hpp"

namespace surgeon::minic {

namespace {

/// Operator precedence for minimal parenthesization.
int precedence(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kBinary:
      switch (static_cast<const BinaryExpr&>(e).op) {
        case BinaryOp::kOr:
          return 1;
        case BinaryOp::kAnd:
          return 2;
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return 3;
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
          return 4;
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return 5;
      }
      return 0;
    case ExprKind::kUnary:
    case ExprKind::kCast:
    case ExprKind::kDeref:
    case ExprKind::kAddrOf:
      return 6;
    default:
      return 7;  // primary
  }
}

class Printer {
 public:
  explicit Printer(const PrintOptions& opts) : opts_(opts) {}

  std::string program(const Program& prog) {
    for (const auto& g : prog.globals) {
      out_ << g.type.to_string() << " " << g.name;
      if (g.init) out_ << " = " << expr(*g.init);
      out_ << ";\n";
    }
    if (!prog.globals.empty()) out_ << "\n";
    for (std::size_t i = 0; i < prog.functions.size(); ++i) {
      if (i != 0) out_ << "\n";
      function(*prog.functions[i]);
    }
    return out_.str();
  }

  std::string stmt_text(const Stmt& s) {
    stmt(s);
    return out_.str();
  }

  std::string expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return std::to_string(static_cast<const IntLit&>(e).value);
      case ExprKind::kRealLit: {
        std::ostringstream os;
        double v = static_cast<const RealLit&>(e).value;
        os << v;
        std::string s = os.str();
        // Keep the literal a float literal when it prints like an int.
        if (s.find('.') == std::string::npos &&
            s.find('e') == std::string::npos &&
            s.find("inf") == std::string::npos &&
            s.find("nan") == std::string::npos) {
          s += ".0";
        }
        return s;
      }
      case ExprKind::kStrLit:
        return support::quote(static_cast<const StrLit&>(e).value);
      case ExprKind::kNullLit:
        return "null";
      case ExprKind::kVar:
        return static_cast<const VarExpr&>(e).name;
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        const char* op = u.op == UnaryOp::kNeg ? "-" : "!";
        return std::string(op) + child(*u.operand, precedence(e));
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        int p = precedence(e);
        // Comparisons are non-associative (parse_cmp consumes at most one
        // operator), so a comparison operand needs parentheses on the left
        // too: "a < b == c" does not re-parse, "(a < b) == c" does.
        int lhs_min = p == 3 ? p + 1 : p;
        return child(*b.lhs, lhs_min) + " " + binary_op_spelling(b.op) + " " +
               child(*b.rhs, p + 1);
      }
      case ExprKind::kCall: {
        const auto& c = static_cast<const CallExpr&>(e);
        std::string s = c.callee + "(";
        for (std::size_t i = 0; i < c.args.size(); ++i) {
          if (i != 0) s += ", ";
          s += expr(*c.args[i]);
        }
        return s + ")";
      }
      case ExprKind::kCast: {
        const auto& c = static_cast<const CastExpr&>(e);
        return "(" + c.target.to_string() + ")" +
               child(*c.operand, precedence(e));
      }
      case ExprKind::kAddrOf:
        return "&" + child(*static_cast<const AddrOfExpr&>(e).operand,
                           precedence(e));
      case ExprKind::kDeref:
        return "*" + child(*static_cast<const DerefExpr&>(e).operand,
                           precedence(e));
      case ExprKind::kIndex: {
        const auto& i = static_cast<const IndexExpr&>(e);
        return child(*i.base, precedence(e)) + "[" + expr(*i.index) + "]";
      }
    }
    return "?";
  }

 private:
  std::string child(const Expr& e, int min_prec) {
    std::string s = expr(e);
    if (precedence(e) < min_prec) return "(" + s + ")";
    return s;
  }

  void indent() {
    for (int i = 0; i < depth_ * opts_.indent_width; ++i) out_ << ' ';
  }

  void banner(const std::string& note, bool begin) {
    indent();
    out_ << "/* ----- " << (begin ? "begin " : "end ") << note
         << " ----- */\n";
  }

  void function(const Function& fn) {
    out_ << fn.return_type.to_string() << " " << fn.name << "(";
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      if (i != 0) out_ << ", ";
      out_ << fn.params[i].type.to_string() << " " << fn.params[i].name;
    }
    out_ << ")\n";
    block_body(*fn.body);
  }

  void block_body(const BlockStmt& b) {
    indent();
    out_ << "{\n";
    ++depth_;
    for (const auto& s : b.stmts) stmt(*s);
    --depth_;
    indent();
    out_ << "}\n";
  }

  void stmt(const Stmt& s) {
    const bool framed =
        opts_.banner_transformed_blocks && !s.xform_note.empty();
    if (framed) banner(s.xform_note, true);
    stmt_inner(s);
    if (framed) banner(s.xform_note, false);
  }

  void stmt_inner(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock:
        block_body(static_cast<const BlockStmt&>(s));
        return;
      case StmtKind::kDecl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        indent();
        out_ << d.type.to_string() << " " << d.name;
        if (d.init) out_ << " = " << expr(*d.init);
        out_ << ";\n";
        return;
      }
      case StmtKind::kAssign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        indent();
        out_ << expr(*a.target) << " = " << expr(*a.value) << ";\n";
        return;
      }
      case StmtKind::kExpr:
        indent();
        out_ << expr(*static_cast<const ExprStmt&>(s).expr) << ";\n";
        return;
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        indent();
        out_ << "if (" << expr(*i.cond) << ")\n";
        branch(*i.then_branch);
        if (i.else_branch) {
          indent();
          out_ << "else\n";
          branch(*i.else_branch);
        }
        return;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const WhileStmt&>(s);
        indent();
        out_ << "while (" << expr(*w.cond) << ")\n";
        branch(*w.body);
        return;
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        indent();
        out_ << "for (" << header_stmt(f.init) << "; "
             << (f.cond ? expr(*f.cond) : std::string()) << "; "
             << header_stmt(f.step) << ")\n";
        branch(*f.body);
        return;
      }
      case StmtKind::kBreak:
        indent();
        out_ << "break;\n";
        return;
      case StmtKind::kContinue:
        indent();
        out_ << "continue;\n";
        return;
      case StmtKind::kReturn: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        indent();
        out_ << "return";
        if (r.value) out_ << " " << expr(*r.value);
        out_ << ";\n";
        return;
      }
      case StmtKind::kGoto:
        indent();
        out_ << "goto " << static_cast<const GotoStmt&>(s).label << ";\n";
        return;
      case StmtKind::kEmpty:
        indent();
        out_ << ";\n";
        return;
      case StmtKind::kLabeled: {
        const auto& l = static_cast<const LabeledStmt&>(s);
        // The label hangs at the parent indent level, C style.
        std::string pad(static_cast<std::size_t>(
                            std::max(0, (depth_ - 1) * opts_.indent_width)),
                        ' ');
        out_ << pad << l.label << ":\n";
        stmt(*l.inner);
        return;
      }
    }
  }

  /// Renders a for-header part (no indent, no trailing ';').
  std::string header_stmt(const StmtPtr& s) {
    if (!s) return "";
    switch (s->kind) {
      case StmtKind::kDecl: {
        const auto& d = static_cast<const DeclStmt&>(*s);
        std::string out = d.type.to_string() + " " + d.name;
        if (d.init) out += " = " + expr(*d.init);
        return out;
      }
      case StmtKind::kAssign: {
        const auto& a = static_cast<const AssignStmt&>(*s);
        return expr(*a.target) + " = " + expr(*a.value);
      }
      case StmtKind::kExpr:
        return expr(*static_cast<const ExprStmt&>(*s).expr);
      default:
        return "/* ? */";
    }
  }

  void branch(const Stmt& s) {
    if (s.kind == StmtKind::kBlock) {
      stmt(s);
    } else {
      ++depth_;
      stmt(s);
      --depth_;
    }
  }

  const PrintOptions& opts_;
  std::ostringstream out_;
  int depth_ = 0;
};

}  // namespace

std::string print_program(const Program& program, const PrintOptions& options) {
  return Printer(options).program(program);
}

std::string print_stmt(const Stmt& stmt, const PrintOptions& options) {
  return Printer(options).stmt_text(stmt);
}

std::string print_expr(const Expr& expr) {
  PrintOptions opts;
  return Printer(opts).expr(expr);
}

}  // namespace surgeon::minic
