#include "minic/lexer.hpp"

#include <cctype>
#include <map>

namespace surgeon::minic {

using support::ParseError;
using support::SourceLoc;

const char* token_kind_name(TokKind kind) noexcept {
  switch (kind) {
    case TokKind::kEof: return "end of input";
    case TokKind::kIdent: return "identifier";
    case TokKind::kIntLit: return "integer literal";
    case TokKind::kRealLit: return "float literal";
    case TokKind::kStrLit: return "string literal";
    case TokKind::kKwInt: return "'int'";
    case TokKind::kKwFloat: return "'float'";
    case TokKind::kKwString: return "'string'";
    case TokKind::kKwVoid: return "'void'";
    case TokKind::kKwIf: return "'if'";
    case TokKind::kKwElse: return "'else'";
    case TokKind::kKwWhile: return "'while'";
    case TokKind::kKwFor: return "'for'";
    case TokKind::kKwBreak: return "'break'";
    case TokKind::kKwContinue: return "'continue'";
    case TokKind::kKwReturn: return "'return'";
    case TokKind::kKwGoto: return "'goto'";
    case TokKind::kKwNull: return "'null'";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kSemi: return "';'";
    case TokKind::kComma: return "','";
    case TokKind::kColon: return "':'";
    case TokKind::kAssign: return "'='";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kPercent: return "'%'";
    case TokKind::kAmp: return "'&'";
    case TokKind::kBang: return "'!'";
    case TokKind::kEq: return "'=='";
    case TokKind::kNe: return "'!='";
    case TokKind::kLt: return "'<'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGt: return "'>'";
    case TokKind::kGe: return "'>='";
    case TokKind::kAndAnd: return "'&&'";
    case TokKind::kOrOr: return "'||'";
  }
  return "?";
}

namespace {

const std::map<std::string, TokKind, std::less<>>& keywords() {
  static const std::map<std::string, TokKind, std::less<>> kw = {
      {"int", TokKind::kKwInt},       {"float", TokKind::kKwFloat},
      {"double", TokKind::kKwFloat},  {"string", TokKind::kKwString},
      {"void", TokKind::kKwVoid},     {"if", TokKind::kKwIf},
      {"else", TokKind::kKwElse},     {"while", TokKind::kKwWhile},
      {"for", TokKind::kKwFor},       {"break", TokKind::kKwBreak},
      {"continue", TokKind::kKwContinue},
      {"return", TokKind::kKwReturn}, {"goto", TokKind::kKwGoto},
      {"null", TokKind::kKwNull},
  };
  return kw;
}

class LexState {
 public:
  explicit LexState(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_trivia();
      SourceLoc loc = here();
      if (pos_ >= src_.size()) {
        tokens.push_back(Token{TokKind::kEof, "", 0, 0.0, loc});
        return tokens;
      }
      tokens.push_back(lex_one(loc));
    }
  }

 private:
  [[nodiscard]] SourceLoc here() const noexcept {
    return SourceLoc{line_, col_};
  }
  [[nodiscard]] char peek(std::size_t off = 0) const noexcept {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  void advance() {
    if (pos_ < src_.size()) {
      if (src_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
  }

  void skip_trivia() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        SourceLoc start = here();
        advance();
        advance();
        while (pos_ < src_.size() && !(peek() == '*' && peek(1) == '/')) {
          advance();
        }
        if (pos_ >= src_.size()) {
          throw ParseError(start, "unterminated comment");
        }
        advance();
        advance();
      } else {
        break;
      }
    }
  }

  Token lex_one(SourceLoc loc) {
    char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return lex_ident(loc);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return lex_number(loc);
    if (c == '"') return lex_string(loc);
    return lex_punct(loc);
  }

  Token lex_ident(SourceLoc loc) {
    std::string s;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
      s += peek();
      advance();
    }
    auto it = keywords().find(s);
    if (it != keywords().end()) {
      return Token{it->second, std::move(s), 0, 0.0, loc};
    }
    return Token{TokKind::kIdent, std::move(s), 0, 0.0, loc};
  }

  Token lex_number(SourceLoc loc) {
    std::string s;
    bool is_real = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      s += peek();
      advance();
    }
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      is_real = true;
      s += peek();
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        s += peek();
        advance();
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      std::size_t save_pos = pos_;
      std::string exp;
      exp += peek();
      advance();
      if (peek() == '+' || peek() == '-') {
        exp += peek();
        advance();
      }
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        is_real = true;
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          exp += peek();
          advance();
        }
        s += exp;
      } else {
        // Not an exponent after all ("1e" followed by an identifier);
        // rewind is impossible with our cursor, so reject clearly.
        (void)save_pos;
        throw ParseError(loc, "malformed numeric literal '" + s + exp + "'");
      }
    }
    Token t;
    t.loc = loc;
    t.text = s;
    if (is_real) {
      t.kind = TokKind::kRealLit;
      t.real_value = std::stod(s);
    } else {
      t.kind = TokKind::kIntLit;
      t.int_value = std::stoll(s);
    }
    return t;
  }

  Token lex_string(SourceLoc loc) {
    advance();  // opening quote
    std::string s;
    while (pos_ < src_.size() && peek() != '"') {
      if (peek() == '\n') throw ParseError(loc, "newline in string literal");
      if (peek() == '\\') {
        advance();
        char e = peek();
        switch (e) {
          case 'n':
            s += '\n';
            break;
          case 't':
            s += '\t';
            break;
          case '\\':
            s += '\\';
            break;
          case '"':
            s += '"';
            break;
          default:
            throw ParseError(here(), std::string("bad escape '\\") + e + "'");
        }
        advance();
      } else {
        s += peek();
        advance();
      }
    }
    if (pos_ >= src_.size()) throw ParseError(loc, "unterminated string");
    advance();  // closing quote
    return Token{TokKind::kStrLit, std::move(s), 0, 0.0, loc};
  }

  Token lex_punct(SourceLoc loc) {
    char c = peek();
    auto two = [&](char second, TokKind pair, TokKind single) {
      advance();
      if (peek() == second) {
        advance();
        return pair;
      }
      return single;
    };
    TokKind kind;
    switch (c) {
      case '(': kind = TokKind::kLParen; advance(); break;
      case ')': kind = TokKind::kRParen; advance(); break;
      case '{': kind = TokKind::kLBrace; advance(); break;
      case '}': kind = TokKind::kRBrace; advance(); break;
      case '[': kind = TokKind::kLBracket; advance(); break;
      case ']': kind = TokKind::kRBracket; advance(); break;
      case ';': kind = TokKind::kSemi; advance(); break;
      case ',': kind = TokKind::kComma; advance(); break;
      case ':': kind = TokKind::kColon; advance(); break;
      case '+': kind = TokKind::kPlus; advance(); break;
      case '-': kind = TokKind::kMinus; advance(); break;
      case '*': kind = TokKind::kStar; advance(); break;
      case '/': kind = TokKind::kSlash; advance(); break;
      case '%': kind = TokKind::kPercent; advance(); break;
      case '=': kind = two('=', TokKind::kEq, TokKind::kAssign); break;
      case '!': kind = two('=', TokKind::kNe, TokKind::kBang); break;
      case '<': kind = two('=', TokKind::kLe, TokKind::kLt); break;
      case '>': kind = two('=', TokKind::kGe, TokKind::kGt); break;
      case '&': kind = two('&', TokKind::kAndAnd, TokKind::kAmp); break;
      case '|': {
        advance();
        if (peek() != '|') {
          throw ParseError(loc, "'|' is not an operator (did you mean '||'?)");
        }
        advance();
        kind = TokKind::kOrOr;
        break;
      }
      default:
        throw ParseError(loc, std::string("unexpected character '") + c + "'");
    }
    return Token{kind, "", 0, 0.0, loc};
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  return LexState(source).run();
}

}  // namespace surgeon::minic
