// The MiniC builtin functions: the POLYLITH communication primitives of the
// paper (mh_read / mh_write / mh_query_ifmsgs), the module-participation
// primitives inserted by the transformer (mh_capture / mh_restore /
// mh_encode / mh_decode / mh_getstatus / mh_signal), and a few runtime
// services (sleep, print, random, clock, managed heap).
//
// The VM implements these against bus::Client; the compiler emits a Builtin
// instruction; sema type-checks each against the rules encoded here.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace surgeon::minic {

enum class BuiltinId : std::uint8_t {
  kMhRead,         // mh_read(iface, fmt, &v...)      blocking receive
  kMhWrite,        // mh_write(iface, fmt, v...)      asynchronous send
  kMhQueryIfmsgs,  // mh_query_ifmsgs(iface) -> int   queue non-empty?
  kMhCapture,      // mh_capture(fmt, v...)           append state frame
  kMhRestore,      // mh_restore(fmt, &v...)          pop state frame
  kMhEncode,       // mh_encode()                     divulge state to bus
  kMhDecode,       // mh_decode()                     blocking state install
  kMhGetstatus,    // mh_getstatus() -> string        "new" / "clone"
  kMhSignal,       // mh_signal(handler)              register SIGHUP handler
  kSleep,          // sleep(seconds)
  kPrint,          // print(v...)                     module output log
  kRandom,         // random(n) -> int in [0, n)      deterministic stream
  kClock,          // clock() -> int                  virtual microseconds
  kMhSelf,         // mh_self() -> string             module instance name
  kMhAllocInt,     // mh_alloc_int(n) -> int*         managed heap
  kMhAllocReal,    // mh_alloc_real(n) -> float*
  kMhAllocStr,     // mh_alloc_str(n) -> string*
  kMhFree,         // mh_free(p)
  kMhPeekLocation, // mh_peek_location() -> int       resume location of the
                   //   pending restore frame, without popping it (used by
                   //   liveness-mode restore blocks, whose frame layout
                   //   depends on the location)
};

/// Returns the builtin for a callee name, if it is one.
[[nodiscard]] std::optional<BuiltinId> lookup_builtin(std::string_view name);

[[nodiscard]] const char* builtin_name(BuiltinId id) noexcept;

inline constexpr std::uint8_t kBuiltinCount = 19;

}  // namespace surgeon::minic
