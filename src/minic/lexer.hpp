// MiniC lexer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/diag.hpp"

namespace surgeon::minic {

enum class TokKind : std::uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kRealLit,
  kStrLit,
  // keywords
  kKwInt, kKwFloat, kKwString, kKwVoid,
  kKwIf, kKwElse, kKwWhile, kKwFor, kKwBreak, kKwContinue,
  kKwReturn, kKwGoto, kKwNull,
  // punctuation
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma, kColon,
  kAssign,           // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp,              // &
  kBang,             // !
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAndAnd, kOrOr,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;          // identifier / string contents
  std::int64_t int_value = 0;
  double real_value = 0.0;
  support::SourceLoc loc;
};

[[nodiscard]] const char* token_kind_name(TokKind kind) noexcept;

/// Tokenizes a whole MiniC source. Throws ParseError on malformed input.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace surgeon::minic
