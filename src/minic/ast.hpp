// MiniC abstract syntax.
//
// MiniC is the statically-scoped, single-threaded module language of this
// reproduction: C-like syntax, exactly the features the paper's examples
// rely on (recursion, pointer out-parameters, goto/labels, globals, string
// status checks) plus a managed-heap extension. The Section-3 source
// transformation operates on this AST and its output is compiled by the
// *unmodified* MiniC compiler -- that separation is the paper's thesis.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/diag.hpp"

namespace surgeon::minic {

using support::SourceLoc;

// ---------------------------------------------------------------------------
// Types

enum class BaseType : std::uint8_t { kVoid, kInt, kReal, kString };

struct Type {
  BaseType base = BaseType::kVoid;
  bool is_pointer = false;

  [[nodiscard]] bool is_void() const noexcept {
    return base == BaseType::kVoid && !is_pointer;
  }
  [[nodiscard]] bool is_numeric() const noexcept {
    return !is_pointer && (base == BaseType::kInt || base == BaseType::kReal);
  }
  [[nodiscard]] Type pointee() const noexcept { return Type{base, false}; }
  [[nodiscard]] Type pointer_to() const noexcept { return Type{base, true}; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Type&, const Type&) = default;
};

inline constexpr Type kVoidType{BaseType::kVoid, false};
inline constexpr Type kIntType{BaseType::kInt, false};
inline constexpr Type kRealType{BaseType::kReal, false};
inline constexpr Type kStringType{BaseType::kString, false};

// ---------------------------------------------------------------------------
// Expressions

enum class ExprKind : std::uint8_t {
  kIntLit,
  kRealLit,
  kStrLit,
  kNullLit,
  kVar,
  kUnary,
  kBinary,
  kCall,
  kCast,
  kAddrOf,
  kDeref,
  kIndex,
};

enum class UnaryOp : std::uint8_t { kNeg, kNot };
enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

[[nodiscard]] const char* binary_op_spelling(BinaryOp op) noexcept;

/// How a variable reference was resolved by sema. kFunc marks a function
/// name used as a value (only legal as the argument of mh_signal).
enum class VarStorage : std::uint8_t {
  kUnresolved,
  kGlobal,
  kLocal,
  kParam,
  kFunc,
};

struct Expr {
  explicit Expr(ExprKind kind, SourceLoc loc) : kind(kind), loc(loc) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind;
  SourceLoc loc;
  Type type;  // filled in by sema
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLit final : Expr {
  IntLit(std::int64_t value, SourceLoc loc)
      : Expr(ExprKind::kIntLit, loc), value(value) {}
  std::int64_t value;
};

struct RealLit final : Expr {
  RealLit(double value, SourceLoc loc)
      : Expr(ExprKind::kRealLit, loc), value(value) {}
  double value;
};

struct StrLit final : Expr {
  StrLit(std::string value, SourceLoc loc)
      : Expr(ExprKind::kStrLit, loc), value(std::move(value)) {}
  std::string value;
};

struct NullLit final : Expr {
  explicit NullLit(SourceLoc loc) : Expr(ExprKind::kNullLit, loc) {}
};

struct VarExpr final : Expr {
  VarExpr(std::string name, SourceLoc loc)
      : Expr(ExprKind::kVar, loc), name(std::move(name)) {}
  std::string name;
  VarStorage storage = VarStorage::kUnresolved;
  std::uint32_t slot = 0;  // global index / local slot / param slot
};

struct UnaryExpr final : Expr {
  UnaryExpr(UnaryOp op, ExprPtr operand, SourceLoc loc)
      : Expr(ExprKind::kUnary, loc), op(op), operand(std::move(operand)) {}
  UnaryOp op;
  ExprPtr operand;
};

struct BinaryExpr final : Expr {
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc)
      : Expr(ExprKind::kBinary, loc),
        op(op),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// A call to a user function or a builtin (resolved by sema).
struct CallExpr final : Expr {
  CallExpr(std::string callee, std::vector<ExprPtr> args, SourceLoc loc)
      : Expr(ExprKind::kCall, loc),
        callee(std::move(callee)),
        args(std::move(args)) {}
  std::string callee;
  std::vector<ExprPtr> args;
  /// Index into Program::functions, or ~0u when `builtin` is set.
  std::uint32_t callee_index = UINT32_MAX;
  bool is_builtin = false;
};

struct CastExpr final : Expr {
  CastExpr(Type target, ExprPtr operand, SourceLoc loc)
      : Expr(ExprKind::kCast, loc),
        target(target),
        operand(std::move(operand)) {}
  Type target;
  ExprPtr operand;
};

struct AddrOfExpr final : Expr {
  AddrOfExpr(ExprPtr operand, SourceLoc loc)
      : Expr(ExprKind::kAddrOf, loc), operand(std::move(operand)) {}
  ExprPtr operand;  // must be a VarExpr after sema
};

struct DerefExpr final : Expr {
  DerefExpr(ExprPtr operand, SourceLoc loc)
      : Expr(ExprKind::kDeref, loc), operand(std::move(operand)) {}
  ExprPtr operand;
};

struct IndexExpr final : Expr {
  IndexExpr(ExprPtr base, ExprPtr index, SourceLoc loc)
      : Expr(ExprKind::kIndex, loc),
        base(std::move(base)),
        index(std::move(index)) {}
  ExprPtr base;
  ExprPtr index;
};

// ---------------------------------------------------------------------------
// Statements

enum class StmtKind : std::uint8_t {
  kBlock,
  kDecl,
  kAssign,
  kExpr,
  kIf,
  kWhile,
  kFor,
  kBreak,
  kContinue,
  kReturn,
  kGoto,
  kLabeled,
  kEmpty,
};

struct Stmt {
  explicit Stmt(StmtKind kind, SourceLoc loc) : kind(kind), loc(loc) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  StmtKind kind;
  SourceLoc loc;
  /// Set by the transformer on statements it inserted, so the printer can
  /// render them inside the paper's "begin capture/restore" comment frames.
  std::string xform_note;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt final : Stmt {
  explicit BlockStmt(SourceLoc loc) : Stmt(StmtKind::kBlock, loc) {}
  std::vector<StmtPtr> stmts;
};

/// Local variable declaration (function-scoped, like C89).
struct DeclStmt final : Stmt {
  DeclStmt(Type type, std::string name, ExprPtr init, SourceLoc loc)
      : Stmt(StmtKind::kDecl, loc),
        type(type),
        name(std::move(name)),
        init(std::move(init)) {}
  Type type;
  std::string name;
  ExprPtr init;  // may be null
  std::uint32_t slot = 0;
};

struct AssignStmt final : Stmt {
  AssignStmt(ExprPtr target, ExprPtr value, SourceLoc loc)
      : Stmt(StmtKind::kAssign, loc),
        target(std::move(target)),
        value(std::move(value)) {}
  ExprPtr target;  // VarExpr, DerefExpr, or IndexExpr
  ExprPtr value;
};

struct ExprStmt final : Stmt {
  ExprStmt(ExprPtr expr, SourceLoc loc)
      : Stmt(StmtKind::kExpr, loc), expr(std::move(expr)) {}
  ExprPtr expr;
};

struct IfStmt final : Stmt {
  IfStmt(ExprPtr cond, StmtPtr then_branch, StmtPtr else_branch,
         SourceLoc loc)
      : Stmt(StmtKind::kIf, loc),
        cond(std::move(cond)),
        then_branch(std::move(then_branch)),
        else_branch(std::move(else_branch)) {}
  ExprPtr cond;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null
};

struct WhileStmt final : Stmt {
  WhileStmt(ExprPtr cond, StmtPtr body, SourceLoc loc)
      : Stmt(StmtKind::kWhile, loc),
        cond(std::move(cond)),
        body(std::move(body)) {}
  ExprPtr cond;
  StmtPtr body;
};

/// C-style for loop. Any of the three header parts may be absent; an
/// absent condition means "always true".
struct ForStmt final : Stmt {
  ForStmt(StmtPtr init, ExprPtr cond, StmtPtr step, StmtPtr body,
          SourceLoc loc)
      : Stmt(StmtKind::kFor, loc),
        init(std::move(init)),
        cond(std::move(cond)),
        step(std::move(step)),
        body(std::move(body)) {}
  StmtPtr init;  // DeclStmt / AssignStmt / ExprStmt, or null
  ExprPtr cond;  // or null
  StmtPtr step;  // AssignStmt / ExprStmt, or null
  StmtPtr body;
};

struct BreakStmt final : Stmt {
  explicit BreakStmt(SourceLoc loc) : Stmt(StmtKind::kBreak, loc) {}
};

struct ContinueStmt final : Stmt {
  explicit ContinueStmt(SourceLoc loc) : Stmt(StmtKind::kContinue, loc) {}
};

struct ReturnStmt final : Stmt {
  ReturnStmt(ExprPtr value, SourceLoc loc)
      : Stmt(StmtKind::kReturn, loc), value(std::move(value)) {}
  ExprPtr value;  // may be null
};

struct GotoStmt final : Stmt {
  GotoStmt(std::string label, SourceLoc loc)
      : Stmt(StmtKind::kGoto, loc), label(std::move(label)) {}
  std::string label;
};

/// A lone ";". The transformer labels empty statements to create jump
/// targets immediately after capture blocks (the Li of Figure 7).
struct EmptyStmt final : Stmt {
  explicit EmptyStmt(SourceLoc loc) : Stmt(StmtKind::kEmpty, loc) {}
};

/// `L: stmt` -- including the bare reconfiguration-point labels (`R: ...`).
struct LabeledStmt final : Stmt {
  LabeledStmt(std::string label, StmtPtr inner, SourceLoc loc)
      : Stmt(StmtKind::kLabeled, loc),
        label(std::move(label)),
        inner(std::move(inner)) {}
  std::string label;
  StmtPtr inner;
};

// ---------------------------------------------------------------------------
// Declarations

struct Param {
  Type type;
  std::string name;
  SourceLoc loc;
};

struct Function {
  std::string name;
  Type return_type;
  std::vector<Param> params;
  std::unique_ptr<BlockStmt> body;
  SourceLoc loc;

  /// Filled in by sema: every function-scoped local, in declaration order.
  struct LocalInfo {
    std::string name;
    Type type;
  };
  std::vector<LocalInfo> locals;
};

struct GlobalDecl {
  Type type;
  std::string name;
  ExprPtr init;  // constant expression or null
  SourceLoc loc;
};

struct Program {
  std::vector<GlobalDecl> globals;
  std::vector<std::unique_ptr<Function>> functions;

  [[nodiscard]] Function* find_function(const std::string& name);
  [[nodiscard]] const Function* find_function(const std::string& name) const;
  [[nodiscard]] std::uint32_t function_index(const std::string& name) const;
};

// ---------------------------------------------------------------------------
// Helpers used by the parser, sema, transformer, and tests.

[[nodiscard]] ExprPtr make_int(std::int64_t v, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_real(double v, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_str(std::string v, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_var(std::string name, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_call(std::string callee, std::vector<ExprPtr> args,
                                SourceLoc loc = {});
[[nodiscard]] ExprPtr make_addr_of(std::string var, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs,
                                  SourceLoc loc = {});

/// Deep-copies an expression tree (used by the transformer when a call is
/// repeated in restore code).
[[nodiscard]] ExprPtr clone_expr(const Expr& e);

}  // namespace surgeon::minic
