#include "minic/parser.hpp"

#include "minic/lexer.hpp"

namespace surgeon::minic {

using support::ParseError;
using support::SourceLoc;

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(lex(source)) {}

  Program parse_program() {
    Program prog;
    while (!at(TokKind::kEof)) {
      Type type = parse_type();
      Token name = expect(TokKind::kIdent, "declaration name");
      if (at(TokKind::kLParen)) {
        prog.functions.push_back(parse_function(type, name));
      } else {
        prog.globals.push_back(parse_global(type, name));
      }
    }
    return prog;
  }

  ExprPtr parse_single_expression() {
    ExprPtr e = parse_expr();
    expect(TokKind::kEof, "end of expression");
    return e;
  }

 private:
  [[nodiscard]] const Token& tok(std::size_t off = 0) const {
    std::size_t i = pos_ + off;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool at(TokKind kind) const { return tok().kind == kind; }
  void shift() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Token expect(TokKind kind, const char* what) {
    if (!at(kind)) {
      throw ParseError(tok().loc, std::string("expected ") + what + ", got " +
                                      token_kind_name(tok().kind));
    }
    Token t = tok();
    shift();
    return t;
  }

  bool accept(TokKind kind) {
    if (at(kind)) {
      shift();
      return true;
    }
    return false;
  }

  [[nodiscard]] static bool is_type_keyword(TokKind kind) noexcept {
    return kind == TokKind::kKwInt || kind == TokKind::kKwFloat ||
           kind == TokKind::kKwString || kind == TokKind::kKwVoid;
  }

  Type parse_type() {
    Type type;
    switch (tok().kind) {
      case TokKind::kKwInt:
        type.base = BaseType::kInt;
        break;
      case TokKind::kKwFloat:
        type.base = BaseType::kReal;
        break;
      case TokKind::kKwString:
        type.base = BaseType::kString;
        break;
      case TokKind::kKwVoid:
        type.base = BaseType::kVoid;
        break;
      default:
        throw ParseError(tok().loc, std::string("expected a type, got ") +
                                        token_kind_name(tok().kind));
    }
    shift();
    if (accept(TokKind::kStar)) type.is_pointer = true;
    return type;
  }

  GlobalDecl parse_global(Type type, const Token& name) {
    if (type.is_void()) {
      throw ParseError(name.loc, "global '" + name.text + "' cannot be void");
    }
    GlobalDecl g;
    g.type = type;
    g.name = name.text;
    g.loc = name.loc;
    if (accept(TokKind::kAssign)) g.init = parse_expr();
    expect(TokKind::kSemi, "';' after global declaration");
    return g;
  }

  std::unique_ptr<Function> parse_function(Type ret, const Token& name) {
    auto fn = std::make_unique<Function>();
    fn->name = name.text;
    fn->return_type = ret;
    fn->loc = name.loc;
    expect(TokKind::kLParen, "'('");
    if (!at(TokKind::kRParen)) {
      do {
        Param p;
        p.type = parse_type();
        Token pn = expect(TokKind::kIdent, "parameter name");
        p.name = pn.text;
        p.loc = pn.loc;
        if (p.type.is_void()) {
          throw ParseError(p.loc, "parameter '" + p.name + "' cannot be void");
        }
        fn->params.push_back(std::move(p));
      } while (accept(TokKind::kComma));
    }
    expect(TokKind::kRParen, "')'");
    fn->body = parse_block();
    return fn;
  }

  std::unique_ptr<BlockStmt> parse_block() {
    Token open = expect(TokKind::kLBrace, "'{'");
    auto block = std::make_unique<BlockStmt>(open.loc);
    while (!at(TokKind::kRBrace)) {
      if (at(TokKind::kEof)) throw ParseError(open.loc, "unterminated block");
      block->stmts.push_back(parse_stmt());
    }
    shift();  // consume '}'
    return block;
  }

  StmtPtr parse_stmt() {
    SourceLoc loc = tok().loc;
    switch (tok().kind) {
      case TokKind::kLBrace:
        return parse_block();
      case TokKind::kKwIf: {
        shift();
        expect(TokKind::kLParen, "'(' after if");
        ExprPtr cond = parse_expr();
        expect(TokKind::kRParen, "')'");
        StmtPtr then_branch = parse_stmt();
        StmtPtr else_branch;
        if (accept(TokKind::kKwElse)) else_branch = parse_stmt();
        return std::make_unique<IfStmt>(std::move(cond),
                                        std::move(then_branch),
                                        std::move(else_branch), loc);
      }
      case TokKind::kKwWhile: {
        shift();
        expect(TokKind::kLParen, "'(' after while");
        ExprPtr cond = parse_expr();
        expect(TokKind::kRParen, "')'");
        StmtPtr body = parse_stmt();
        return std::make_unique<WhileStmt>(std::move(cond), std::move(body),
                                           loc);
      }
      case TokKind::kKwFor: {
        shift();
        expect(TokKind::kLParen, "'(' after for");
        StmtPtr init;
        if (!at(TokKind::kSemi)) {
          init = parse_simple_stmt("for initializer");
        }
        expect(TokKind::kSemi, "';' after for initializer");
        ExprPtr cond;
        if (!at(TokKind::kSemi)) cond = parse_expr();
        expect(TokKind::kSemi, "';' after for condition");
        StmtPtr step;
        if (!at(TokKind::kRParen)) step = parse_simple_stmt("for step");
        expect(TokKind::kRParen, "')' after for header");
        StmtPtr body = parse_stmt();
        return std::make_unique<ForStmt>(std::move(init), std::move(cond),
                                         std::move(step), std::move(body),
                                         loc);
      }
      case TokKind::kKwBreak:
        shift();
        expect(TokKind::kSemi, "';' after break");
        return std::make_unique<BreakStmt>(loc);
      case TokKind::kKwContinue:
        shift();
        expect(TokKind::kSemi, "';' after continue");
        return std::make_unique<ContinueStmt>(loc);
      case TokKind::kKwReturn: {
        shift();
        ExprPtr value;
        if (!at(TokKind::kSemi)) value = parse_expr();
        expect(TokKind::kSemi, "';' after return");
        return std::make_unique<ReturnStmt>(std::move(value), loc);
      }
      case TokKind::kKwGoto: {
        shift();
        Token label = expect(TokKind::kIdent, "label after goto");
        expect(TokKind::kSemi, "';' after goto");
        return std::make_unique<GotoStmt>(label.text, loc);
      }
      case TokKind::kSemi:
        shift();
        return std::make_unique<EmptyStmt>(loc);
      default:
        break;
    }
    if (is_type_keyword(tok().kind)) {
      Type type = parse_type();
      Token name = expect(TokKind::kIdent, "variable name");
      ExprPtr init;
      if (accept(TokKind::kAssign)) init = parse_expr();
      expect(TokKind::kSemi, "';' after declaration");
      return std::make_unique<DeclStmt>(type, name.text, std::move(init),
                                        loc);
    }
    // Label: IDENT ':' stmt
    if (at(TokKind::kIdent) && tok(1).kind == TokKind::kColon) {
      Token label = tok();
      shift();
      shift();
      StmtPtr inner = parse_stmt();
      return std::make_unique<LabeledStmt>(label.text, std::move(inner),
                                           label.loc);
    }
    // Assignment or expression statement.
    ExprPtr first = parse_expr();
    if (accept(TokKind::kAssign)) {
      ExprPtr value = parse_expr();
      expect(TokKind::kSemi, "';' after assignment");
      return std::make_unique<AssignStmt>(std::move(first), std::move(value),
                                          loc);
    }
    expect(TokKind::kSemi, "';' after expression");
    return std::make_unique<ExprStmt>(std::move(first), loc);
  }

  /// A declaration, assignment, or expression without the trailing ';'
  /// (the simple statements a for-header accepts).
  StmtPtr parse_simple_stmt(const char* what) {
    SourceLoc loc = tok().loc;
    if (is_type_keyword(tok().kind)) {
      Type type = parse_type();
      Token name = expect(TokKind::kIdent, "variable name");
      ExprPtr init;
      if (accept(TokKind::kAssign)) init = parse_expr();
      return std::make_unique<DeclStmt>(type, name.text, std::move(init),
                                        loc);
    }
    ExprPtr first = parse_expr();
    if (accept(TokKind::kAssign)) {
      ExprPtr value = parse_expr();
      return std::make_unique<AssignStmt>(std::move(first), std::move(value),
                                          loc);
    }
    if (first->kind != ExprKind::kCall) {
      throw ParseError(loc, std::string(what) +
                                " must be a declaration, assignment, or call");
    }
    return std::make_unique<ExprStmt>(std::move(first), loc);
  }

  // --- expressions ---------------------------------------------------------

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at(TokKind::kOrOr)) {
      SourceLoc loc = tok().loc;
      shift();
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(lhs),
                                         parse_and(), loc);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_cmp();
    while (at(TokKind::kAndAnd)) {
      SourceLoc loc = tok().loc;
      shift();
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(lhs),
                                         parse_cmp(), loc);
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    BinaryOp op;
    switch (tok().kind) {
      case TokKind::kEq: op = BinaryOp::kEq; break;
      case TokKind::kNe: op = BinaryOp::kNe; break;
      case TokKind::kLt: op = BinaryOp::kLt; break;
      case TokKind::kLe: op = BinaryOp::kLe; break;
      case TokKind::kGt: op = BinaryOp::kGt; break;
      case TokKind::kGe: op = BinaryOp::kGe; break;
      default:
        return lhs;
    }
    SourceLoc loc = tok().loc;
    shift();
    return std::make_unique<BinaryExpr>(op, std::move(lhs), parse_add(), loc);
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    while (at(TokKind::kPlus) || at(TokKind::kMinus)) {
      BinaryOp op = at(TokKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
      SourceLoc loc = tok().loc;
      shift();
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), parse_mul(), loc);
    }
    return lhs;
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    while (at(TokKind::kStar) || at(TokKind::kSlash) ||
           at(TokKind::kPercent)) {
      BinaryOp op = at(TokKind::kStar)    ? BinaryOp::kMul
                    : at(TokKind::kSlash) ? BinaryOp::kDiv
                                          : BinaryOp::kMod;
      SourceLoc loc = tok().loc;
      shift();
      lhs =
          std::make_unique<BinaryExpr>(op, std::move(lhs), parse_unary(), loc);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    SourceLoc loc = tok().loc;
    if (accept(TokKind::kMinus)) {
      return std::make_unique<UnaryExpr>(UnaryOp::kNeg, parse_unary(), loc);
    }
    if (accept(TokKind::kBang)) {
      return std::make_unique<UnaryExpr>(UnaryOp::kNot, parse_unary(), loc);
    }
    if (accept(TokKind::kStar)) {
      return std::make_unique<DerefExpr>(parse_unary(), loc);
    }
    if (accept(TokKind::kAmp)) {
      return std::make_unique<AddrOfExpr>(parse_unary(), loc);
    }
    // Cast: '(' type ')' unary
    if (at(TokKind::kLParen) && is_type_keyword(tok(1).kind)) {
      shift();  // '('
      Type target = parse_type();
      expect(TokKind::kRParen, "')' after cast type");
      return std::make_unique<CastExpr>(target, parse_unary(), loc);
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    while (at(TokKind::kLBracket)) {
      SourceLoc loc = tok().loc;
      shift();
      ExprPtr idx = parse_expr();
      expect(TokKind::kRBracket, "']'");
      e = std::make_unique<IndexExpr>(std::move(e), std::move(idx), loc);
    }
    return e;
  }

  ExprPtr parse_primary() {
    SourceLoc loc = tok().loc;
    switch (tok().kind) {
      case TokKind::kIntLit: {
        auto v = tok().int_value;
        shift();
        return make_int(v, loc);
      }
      case TokKind::kRealLit: {
        auto v = tok().real_value;
        shift();
        return make_real(v, loc);
      }
      case TokKind::kStrLit: {
        auto v = tok().text;
        shift();
        return make_str(std::move(v), loc);
      }
      case TokKind::kKwNull:
        shift();
        return std::make_unique<NullLit>(loc);
      case TokKind::kLParen: {
        shift();
        ExprPtr e = parse_expr();
        expect(TokKind::kRParen, "')'");
        return e;
      }
      case TokKind::kIdent: {
        std::string name = tok().text;
        shift();
        if (accept(TokKind::kLParen)) {
          std::vector<ExprPtr> args;
          if (!at(TokKind::kRParen)) {
            do {
              args.push_back(parse_expr());
            } while (accept(TokKind::kComma));
          }
          expect(TokKind::kRParen, "')' after arguments");
          return make_call(std::move(name), std::move(args), loc);
        }
        return make_var(std::move(name), loc);
      }
      default:
        throw ParseError(loc, std::string("expected an expression, got ") +
                                  token_kind_name(tok().kind));
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse_program(std::string_view source) {
  return Parser(source).parse_program();
}

ExprPtr parse_expression(std::string_view source) {
  return Parser(source).parse_single_expression();
}

}  // namespace surgeon::minic
