// MiniC parser: recursive descent over the token stream.
//
// program   := (global | function)*
// global    := type IDENT ["=" expr] ";"
// function  := type IDENT "(" [param ("," param)*] ")" block
// param     := type IDENT
// type      := ("int" | "float" | "string" | "void") ["*"]
// block     := "{" stmt* "}"
// stmt      := block
//            | type IDENT ["=" expr] ";"          (local declaration)
//            | "if" "(" expr ")" stmt ["else" stmt]
//            | "while" "(" expr ")" stmt
//            | "return" [expr] ";"
//            | "goto" IDENT ";"
//            | IDENT ":" stmt                     (label)
//            | lvalue "=" expr ";"
//            | expr ";"
// expr      := the usual C precedence ladder (||, &&, comparisons, + -,
//              * / %, unary - ! * &, casts "(type) e", postfix indexing
//              "e[i]", calls, literals, null, parentheses)
#pragma once

#include <string_view>

#include "minic/ast.hpp"

namespace surgeon::minic {

/// Parses a MiniC compilation unit. Throws ParseError on bad input.
[[nodiscard]] Program parse_program(std::string_view source);

/// Parses a single expression (used by tests and the transformer).
[[nodiscard]] ExprPtr parse_expression(std::string_view source);

}  // namespace surgeon::minic
