// Parsed configuration specifications (the MIL of Figure 2).
//
// A configuration file contains module specifications and application
// specifications. The only addition the paper makes for reconfigurability
// is the `reconfiguration point = {R} vars = {...}` clause, which names a
// source label and the variables comprising the process state there.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bus/message.hpp"
#include "support/diag.hpp"

namespace surgeon::cfg {

/// One variable named in a reconfiguration point's state list. A leading
/// '*' in the spec ("*rp") means the pointed-to value is part of the state.
struct StateVar {
  std::string name;
  bool deref = false;

  friend bool operator==(const StateVar&, const StateVar&) = default;
};

struct ReconfigPointSpec {
  std::string label;            // the source label, e.g. "R"
  std::vector<StateVar> vars;   // programmer-specified state at this point
  support::SourceLoc loc;

  friend bool operator==(const ReconfigPointSpec&,
                         const ReconfigPointSpec&) = default;
};

struct ModuleSpec {
  std::string name;
  std::string source;   // program path ("./compute.mc")
  std::string machine;  // default MACHINE attribute; may be overridden
  std::vector<bus::InterfaceSpec> interfaces;
  std::vector<ReconfigPointSpec> reconfig_points;
  /// Attributes we carry but do not interpret.
  std::map<std::string, std::string> attributes;

  [[nodiscard]] const bus::InterfaceSpec* find_interface(
      const std::string& iface) const;
  [[nodiscard]] const ReconfigPointSpec* find_reconfig_point(
      const std::string& label) const;
};

struct InstanceSpec {
  std::string module;   // module specification to instantiate
  std::string name;     // instance name; defaults to the module name
  std::string machine;  // placement override; empty = module default

  [[nodiscard]] const std::string& instance_name() const noexcept {
    return name.empty() ? module : name;
  }
};

struct BindSpec {
  bus::BindingEnd a;
  bus::BindingEnd b;
};

struct ApplicationSpec {
  std::string name;
  std::vector<InstanceSpec> instances;
  std::vector<BindSpec> binds;
};

struct ConfigFile {
  std::vector<ModuleSpec> modules;
  std::vector<ApplicationSpec> applications;

  [[nodiscard]] const ModuleSpec* find_module(const std::string& name) const;
  [[nodiscard]] const ApplicationSpec* find_application(
      const std::string& name) const;
};

/// Maps a pattern type name from the configuration language ("integer",
/// "float", "string", "pointer") to its format character. Throws ParseError
/// for an unknown type name.
[[nodiscard]] char pattern_type_code(const std::string& type,
                                     support::SourceLoc loc);

/// Renders a spec back to configuration-language text (round-trip tests,
/// and mh_obj_cap in reconfiguration scripts reports through this).
[[nodiscard]] std::string to_text(const ModuleSpec& spec);
[[nodiscard]] std::string to_text(const ApplicationSpec& spec);

}  // namespace surgeon::cfg
