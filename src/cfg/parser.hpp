// Parser for the configuration language (Figure 2).
//
// Grammar (statements are '::'-separated inside braces; the trailing '::'
// before '}' is optional, matching the figure's style):
//
//   file         := (module | application)*
//   module       := "module" IDENT "{" mstmt ("::" mstmt)* "}"
//   mstmt        := "source" "=" STRING
//                 | "machine" "=" STRING
//                 | IDENT "=" STRING                      (other attributes)
//                 | role "interface" IDENT clauses
//                 | "reconfiguration" "point" "=" "{" IDENT "}"
//                       ["vars" "=" "{" var ("," var)* "}"]
//   role         := "client" | "server" | "use" | "define"
//   clauses      := ["pattern" "=" pattern]
//                       ["accepts" "=" pattern | "returns" "=" pattern]
//   pattern      := "{" type ("," type)* "}"
//   type         := "integer" | "float" | "string" | "pointer"
//   var          := ["*"] IDENT
//   application  := "application" IDENT "{" astmt ("::" astmt)* "}"
//   astmt        := "instance" IDENT ["as" IDENT] ["on" STRING]
//                 | "bind" STRING STRING   (each STRING is "instance iface")
//
// Comments: '//' and '#' to end of line, '/* ... */'.
#pragma once

#include <string_view>

#include "cfg/spec.hpp"

namespace surgeon::cfg {

/// Parses a configuration file. Throws support::ParseError on bad input.
[[nodiscard]] ConfigFile parse_config(std::string_view text);

}  // namespace surgeon::cfg
