#include "cfg/spec.hpp"

#include <sstream>

#include "support/format.hpp"
#include "support/strutil.hpp"

namespace surgeon::cfg {

const bus::InterfaceSpec* ModuleSpec::find_interface(
    const std::string& iface) const {
  for (const auto& i : interfaces) {
    if (i.name == iface) return &i;
  }
  return nullptr;
}

const ReconfigPointSpec* ModuleSpec::find_reconfig_point(
    const std::string& label) const {
  for (const auto& p : reconfig_points) {
    if (p.label == label) return &p;
  }
  return nullptr;
}

const ModuleSpec* ConfigFile::find_module(const std::string& name) const {
  for (const auto& m : modules) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const ApplicationSpec* ConfigFile::find_application(
    const std::string& name) const {
  for (const auto& a : applications) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

char pattern_type_code(const std::string& type, support::SourceLoc loc) {
  if (type == "integer" || type == "int") return 'i';
  if (type == "float" || type == "real" || type == "double") return 'F';
  if (type == "string") return 's';
  if (type == "pointer") return 'p';
  throw support::ParseError(loc, "unknown pattern type '" + type + "'");
}

namespace {

std::string pattern_to_types(const std::string& pattern) {
  std::vector<std::string> names;
  for (char c : pattern) {
    switch (c) {
      case 'i':
        names.emplace_back("integer");
        break;
      case 'F':
      case 'f':
        names.emplace_back("float");
        break;
      case 's':
        names.emplace_back("string");
        break;
      case 'p':
        names.emplace_back("pointer");
        break;
      default:
        names.emplace_back("?");
    }
  }
  return support::join(names, ", ");
}

}  // namespace

std::string to_text(const ModuleSpec& spec) {
  std::ostringstream os;
  os << "module " << spec.name << " {\n";
  if (!spec.source.empty()) {
    os << "  source = " << support::quote(spec.source) << " ::\n";
  }
  if (!spec.machine.empty()) {
    os << "  machine = " << support::quote(spec.machine) << " ::\n";
  }
  for (const auto& [k, v] : spec.attributes) {
    os << "  " << k << " = " << support::quote(v) << " ::\n";
  }
  for (const auto& i : spec.interfaces) {
    os << "  " << bus::iface_role_name(i.role) << " interface " << i.name;
    if (!i.pattern.empty()) {
      os << " pattern = {" << pattern_to_types(i.pattern) << "}";
    }
    if (!i.reply_pattern.empty()) {
      const char* kw = i.role == bus::IfaceRole::kServer ? "returns" : "accepts";
      os << " " << kw << " = {" << pattern_to_types(i.reply_pattern) << "}";
    }
    os << " ::\n";
  }
  for (const auto& p : spec.reconfig_points) {
    os << "  reconfiguration point = {" << p.label << "}";
    if (!p.vars.empty()) {
      std::vector<std::string> names;
      for (const auto& v : p.vars) {
        names.push_back(v.deref ? "*" + v.name : v.name);
      }
      os << " vars = {" << support::join(names, ", ") << "}";
    }
    os << " ::\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_text(const ApplicationSpec& spec) {
  std::ostringstream os;
  os << "application " << spec.name << " {\n";
  for (const auto& inst : spec.instances) {
    os << "  instance " << inst.module;
    if (!inst.name.empty()) os << " as " << inst.name;
    if (!inst.machine.empty()) os << " on " << support::quote(inst.machine);
    os << " ::\n";
  }
  for (const auto& b : spec.binds) {
    os << "  bind " << support::quote(b.a.module + " " + b.a.iface) << " "
       << support::quote(b.b.module + " " + b.b.iface) << " ::\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace surgeon::cfg
