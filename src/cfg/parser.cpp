#include "cfg/parser.hpp"

#include <cctype>

#include "support/strutil.hpp"

namespace surgeon::cfg {

using support::ParseError;
using support::SourceLoc;

namespace {

enum class TokKind {
  kIdent,
  kString,
  kLBrace,
  kRBrace,
  kEquals,
  kColons,  // "::"
  kComma,
  kStar,
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  SourceLoc loc;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_trivia();
    SourceLoc loc = here();
    if (pos_ >= text_.size()) return Token{TokKind::kEof, "", loc};
    char c = text_[pos_];
    if (c == '{') return single(TokKind::kLBrace, loc);
    if (c == '}') return single(TokKind::kRBrace, loc);
    if (c == '=') return single(TokKind::kEquals, loc);
    if (c == ',') return single(TokKind::kComma, loc);
    if (c == '*') return single(TokKind::kStar, loc);
    if (c == ':') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == ':') {
        advance();
        advance();
        return Token{TokKind::kColons, "::", loc};
      }
      throw ParseError(loc, "stray ':' (did you mean '::'?)");
    }
    if (c == '"') return lex_string(loc);
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
        c == '/') {
      return lex_ident(loc);
    }
    throw ParseError(loc, std::string("unexpected character '") + c + "'");
  }

 private:
  [[nodiscard]] SourceLoc here() const noexcept { return SourceLoc{line_, col_}; }

  void advance() {
    if (pos_ < text_.size()) {
      if (text_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
  }

  Token single(TokKind kind, SourceLoc loc) {
    std::string s(1, text_[pos_]);
    advance();
    return Token{kind, std::move(s), loc};
  }

  void skip_trivia() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '#' ||
                 (c == '/' && pos_ + 1 < text_.size() &&
                  text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        SourceLoc start = here();
        advance();
        advance();
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          advance();
        }
        if (pos_ + 1 >= text_.size()) {
          throw ParseError(start, "unterminated comment");
        }
        advance();
        advance();
      } else {
        break;
      }
    }
  }

  Token lex_string(SourceLoc loc) {
    advance();  // opening quote
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        advance();
        char e = text_[pos_];
        s += (e == 'n') ? '\n' : e;
        advance();
      } else {
        s += text_[pos_];
        advance();
      }
    }
    if (pos_ >= text_.size()) throw ParseError(loc, "unterminated string");
    advance();  // closing quote
    return Token{TokKind::kString, std::move(s), loc};
  }

  Token lex_ident(SourceLoc loc) {
    std::string s;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '/' || c == '-') {
        s += c;
        advance();
      } else {
        break;
      }
    }
    return Token{TokKind::kIdent, std::move(s), loc};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { shift(); }

  ConfigFile parse_file() {
    ConfigFile file;
    while (tok_.kind != TokKind::kEof) {
      if (tok_.kind == TokKind::kIdent && tok_.text == "module") {
        file.modules.push_back(parse_module());
      } else if (tok_.kind == TokKind::kIdent &&
                 tok_.text == "application") {
        file.applications.push_back(parse_application());
      } else {
        throw ParseError(tok_.loc, "expected 'module' or 'application', got '" +
                                       tok_.text + "'");
      }
    }
    return file;
  }

 private:
  void shift() { tok_ = lexer_.next(); }

  Token expect(TokKind kind, const char* what) {
    if (tok_.kind != kind) {
      throw ParseError(tok_.loc, std::string("expected ") + what + ", got '" +
                                     tok_.text + "'");
    }
    Token t = tok_;
    shift();
    return t;
  }

  [[nodiscard]] bool at_ident(const char* word) const {
    return tok_.kind == TokKind::kIdent && tok_.text == word;
  }

  void expect_ident(const char* word) {
    if (!at_ident(word)) {
      throw ParseError(tok_.loc, std::string("expected '") + word +
                                     "', got '" + tok_.text + "'");
    }
    shift();
  }

  /// Consumes '::' separators; returns false at '}' (end of block).
  bool more_statements() {
    while (tok_.kind == TokKind::kColons) shift();
    return tok_.kind != TokKind::kRBrace;
  }

  ModuleSpec parse_module() {
    expect_ident("module");
    ModuleSpec spec;
    spec.name = expect(TokKind::kIdent, "module name").text;
    expect(TokKind::kLBrace, "'{'");
    while (more_statements()) parse_module_stmt(spec);
    expect(TokKind::kRBrace, "'}'");
    return spec;
  }

  void parse_module_stmt(ModuleSpec& spec) {
    Token head = expect(TokKind::kIdent, "module statement");
    const std::string& word = head.text;
    if (word == "client" || word == "server" || word == "use" ||
        word == "define") {
      spec.interfaces.push_back(parse_interface(word, head.loc));
      return;
    }
    if (word == "reconfiguration") {
      spec.reconfig_points.push_back(parse_reconfig_point(head.loc));
      return;
    }
    // Attribute: name = "value"
    expect(TokKind::kEquals, "'='");
    std::string value = expect(TokKind::kString, "string value").text;
    if (word == "source") {
      spec.source = std::move(value);
    } else if (word == "machine") {
      spec.machine = std::move(value);
    } else {
      spec.attributes[word] = std::move(value);
    }
  }

  bus::InterfaceSpec parse_interface(const std::string& role_word,
                                     SourceLoc loc) {
    bus::InterfaceSpec spec;
    if (role_word == "client") {
      spec.role = bus::IfaceRole::kClient;
    } else if (role_word == "server") {
      spec.role = bus::IfaceRole::kServer;
    } else if (role_word == "use") {
      spec.role = bus::IfaceRole::kUse;
    } else {
      spec.role = bus::IfaceRole::kDefine;
    }
    expect_ident("interface");
    spec.name = expect(TokKind::kIdent, "interface name").text;
    while (at_ident("pattern") || at_ident("accepts") || at_ident("returns")) {
      std::string clause = tok_.text;
      shift();
      expect(TokKind::kEquals, "'='");
      std::string pat = parse_pattern();
      if (clause == "pattern") {
        spec.pattern = std::move(pat);
      } else {
        if ((clause == "returns") != (spec.role == bus::IfaceRole::kServer)) {
          throw ParseError(loc, "'returns' is for server interfaces and "
                                "'accepts' for client interfaces");
        }
        spec.reply_pattern = std::move(pat);
      }
    }
    return spec;
  }

  std::string parse_pattern() {
    expect(TokKind::kLBrace, "'{'");
    std::string fmt;
    while (tok_.kind != TokKind::kRBrace) {
      Token t = expect(TokKind::kIdent, "pattern type");
      fmt += pattern_type_code(t.text, t.loc);
      if (tok_.kind == TokKind::kComma) shift();
    }
    expect(TokKind::kRBrace, "'}'");
    return fmt;
  }

  ReconfigPointSpec parse_reconfig_point(SourceLoc loc) {
    expect_ident("point");
    expect(TokKind::kEquals, "'='");
    expect(TokKind::kLBrace, "'{'");
    ReconfigPointSpec point;
    point.loc = loc;
    point.label = expect(TokKind::kIdent, "reconfiguration point label").text;
    expect(TokKind::kRBrace, "'}'");
    if (at_ident("vars")) {
      shift();
      expect(TokKind::kEquals, "'='");
      expect(TokKind::kLBrace, "'{'");
      while (tok_.kind != TokKind::kRBrace) {
        StateVar var;
        if (tok_.kind == TokKind::kStar) {
          shift();
          var.deref = true;
        }
        var.name = expect(TokKind::kIdent, "variable name").text;
        point.vars.push_back(std::move(var));
        if (tok_.kind == TokKind::kComma) shift();
      }
      expect(TokKind::kRBrace, "'}'");
    }
    return point;
  }

  ApplicationSpec parse_application() {
    expect_ident("application");
    ApplicationSpec spec;
    spec.name = expect(TokKind::kIdent, "application name").text;
    expect(TokKind::kLBrace, "'{'");
    while (more_statements()) parse_application_stmt(spec);
    expect(TokKind::kRBrace, "'}'");
    return spec;
  }

  void parse_application_stmt(ApplicationSpec& spec) {
    Token head = expect(TokKind::kIdent, "application statement");
    if (head.text == "instance") {
      InstanceSpec inst;
      inst.module = expect(TokKind::kIdent, "module name").text;
      if (at_ident("as")) {
        shift();
        inst.name = expect(TokKind::kIdent, "instance name").text;
      }
      if (at_ident("on")) {
        shift();
        inst.machine = expect(TokKind::kString, "machine name").text;
      }
      spec.instances.push_back(std::move(inst));
      return;
    }
    if (head.text == "bind") {
      BindSpec bind;
      bind.a = parse_binding_end();
      bind.b = parse_binding_end();
      spec.binds.push_back(std::move(bind));
      return;
    }
    throw ParseError(head.loc,
                     "expected 'instance' or 'bind', got '" + head.text + "'");
  }

  bus::BindingEnd parse_binding_end() {
    Token t = expect(TokKind::kString, "\"module interface\" string");
    auto parts = support::split(t.text, ' ');
    std::vector<std::string> words;
    for (auto& p : parts) {
      if (!support::trim(p).empty()) words.emplace_back(support::trim(p));
    }
    if (words.size() != 2) {
      throw ParseError(t.loc, "binding end must be \"module interface\", got " +
                                  support::quote(t.text));
    }
    return bus::BindingEnd{words[0], words[1]};
  }

  Lexer lexer_;
  Token tok_;
};

}  // namespace

ConfigFile parse_config(std::string_view text) {
  return Parser(text).parse_file();
}

}  // namespace surgeon::cfg
