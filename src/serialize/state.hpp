// The abstract process state buffer.
//
// During capture, each capture block appends one *frame* (the values named
// in its mh_capture call, led by the resume-location integer) as the
// activation records return from the top of the stack downward. During
// restoration the frames are consumed in the opposite order -- main's
// restore block runs first and needs the bottom-most activation record --
// so the buffer is a LIFO stack of frames.
//
// The buffer also carries a heap segment (our implemented extension of the
// paper's "programmer must write code to capture heap data"): a map from
// symbolic object id to the object's values, so AbstractPointer values in
// frames remain meaningful after migration.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "serialize/value.hpp"

namespace surgeon::ser {

/// One captured activation record (or reconfiguration-point state).
struct StateFrame {
  std::vector<Value> values;

  friend bool operator==(const StateFrame&, const StateFrame&) = default;
};

class StateBuffer {
 public:
  /// Capture side: appends a frame. Frames arrive top-of-stack first.
  void push_frame(StateFrame frame) { frames_.push_back(std::move(frame)); }

  /// Restore side: removes and returns the most recently pushed frame
  /// (which is the deepest not-yet-restored activation record).
  /// Throws VmError if empty -- a restore/capture imbalance is always a
  /// transformation bug.
  [[nodiscard]] StateFrame pop_frame();

  [[nodiscard]] bool empty() const noexcept { return frames_.empty(); }
  [[nodiscard]] std::size_t frame_count() const noexcept {
    return frames_.size();
  }
  [[nodiscard]] const std::vector<StateFrame>& frames() const noexcept {
    return frames_;
  }

  /// Heap segment.
  void put_heap_object(std::uint64_t object_id, std::vector<Value> values) {
    heap_[object_id] = std::move(values);
  }
  [[nodiscard]] const std::map<std::uint64_t, std::vector<Value>>& heap()
      const noexcept {
    return heap_;
  }

  void clear() {
    frames_.clear();
    heap_.clear();
  }

  /// Wire format (always network byte order, independent of any machine).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static StateBuffer decode(
      std::span<const std::uint8_t> bytes);

  /// Total number of values across all frames (for benchmarks).
  [[nodiscard]] std::size_t value_count() const noexcept;

  friend bool operator==(const StateBuffer&, const StateBuffer&) = default;

 private:
  std::vector<StateFrame> frames_;
  std::map<std::uint64_t, std::vector<Value>> heap_;
};

}  // namespace surgeon::ser
