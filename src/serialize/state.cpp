#include "serialize/state.hpp"

namespace surgeon::ser {

using support::VmError;

namespace {
// Wire layout: magic, frame count, frames (each a value sequence), heap
// object count, heap objects (id + value sequence).
constexpr std::uint32_t kMagic = 0x53555247;  // "SURG"
}  // namespace

StateFrame StateBuffer::pop_frame() {
  if (frames_.empty()) {
    throw VmError(
        "state buffer exhausted: restore block ran with no frame left "
        "(capture/restore imbalance)");
  }
  StateFrame f = std::move(frames_.back());
  frames_.pop_back();
  return f;
}

std::vector<std::uint8_t> StateBuffer::encode() const {
  support::ByteWriter w(support::ByteOrder::kBig);
  w.put_u32(kMagic);
  w.put_u32(static_cast<std::uint32_t>(frames_.size()));
  for (const auto& f : frames_) encode_values(w, f.values);
  w.put_u32(static_cast<std::uint32_t>(heap_.size()));
  for (const auto& [id, values] : heap_) {
    w.put_u64(id);
    encode_values(w, values);
  }
  return std::move(w).take();
}

StateBuffer StateBuffer::decode(std::span<const std::uint8_t> bytes) {
  support::ByteReader r(bytes, support::ByteOrder::kBig);
  if (r.get_u32() != kMagic) {
    throw VmError("state buffer has bad magic: not an abstract state");
  }
  StateBuffer sb;
  auto nframes = r.get_u32();
  for (std::uint32_t i = 0; i < nframes; ++i) {
    sb.push_frame(StateFrame{decode_values(r)});
  }
  auto nheap = r.get_u32();
  for (std::uint32_t i = 0; i < nheap; ++i) {
    auto id = r.get_u64();
    sb.put_heap_object(id, decode_values(r));
  }
  if (!r.at_end()) {
    throw VmError("state buffer has trailing bytes after decode");
  }
  return sb;
}

std::size_t StateBuffer::value_count() const noexcept {
  std::size_t n = 0;
  for (const auto& f : frames_) n += f.values.size();
  return n;
}

}  // namespace surgeon::ser
