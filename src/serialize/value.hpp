// The abstract value: the unit of the machine-independent process state.
//
// Section 1.2 of the paper requires the process state to be characterized in
// an abstract, not machine-specific, format. A Value is one datum in that
// format: an integer, a real, a string, or an *abstract pointer* -- a
// symbolic heap reference of the form (object id, element offset) rather
// than a raw address, as the paper prescribes for translating pointers
// ("a variable that points to the nth character of a string located at some
// symbolic address").
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "support/bytes.hpp"
#include "support/format.hpp"

namespace surgeon::ser {

/// Symbolic heap reference: machine-independent stand-in for a pointer into
/// programmer-allocated data. object_id 0 is the null pointer.
struct AbstractPointer {
  std::uint64_t object_id = 0;
  std::uint64_t offset = 0;

  [[nodiscard]] bool is_null() const noexcept { return object_id == 0; }
  friend bool operator==(const AbstractPointer&,
                         const AbstractPointer&) = default;
};

/// One machine-independent datum.
class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  explicit Value(std::int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(AbstractPointer p) : v_(p) {}

  [[nodiscard]] support::ValueKind kind() const noexcept;

  [[nodiscard]] bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_real() const noexcept {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_pointer() const noexcept {
    return std::holds_alternative<AbstractPointer>(v_);
  }

  /// Accessors throw VmError if the kind does not match; a kind mismatch
  /// always indicates a format-string / data disagreement.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_real() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] AbstractPointer as_pointer() const;

  /// Numeric coercion used by the bus when a pattern declares a real but the
  /// sender supplied an int (POLYLITH marshalled across such differences).
  [[nodiscard]] double to_real() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  std::variant<std::int64_t, double, std::string, AbstractPointer> v_;
};

/// Encodes a value (with a leading kind tag) in network byte order.
void encode_value(support::ByteWriter& w, const Value& v);
/// Decodes a tagged value. Throws VmError on a malformed buffer.
[[nodiscard]] Value decode_value(support::ByteReader& r);

/// Convenience: encode/decode a whole sequence with a length prefix.
void encode_values(support::ByteWriter& w, const std::vector<Value>& vs);
[[nodiscard]] std::vector<Value> decode_values(support::ByteReader& r);

/// A default-initialized value of the given kind (0, 0.0, "", null).
[[nodiscard]] Value default_value(support::ValueKind kind);

}  // namespace surgeon::ser
