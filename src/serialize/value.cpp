#include "serialize/value.hpp"

#include <sstream>

#include "support/strutil.hpp"

namespace surgeon::ser {

using support::ValueKind;
using support::VmError;

ValueKind Value::kind() const noexcept {
  if (is_int()) return ValueKind::kInt;
  if (is_real()) return ValueKind::kReal;
  if (is_string()) return ValueKind::kString;
  return ValueKind::kPointer;
}

namespace {
[[noreturn]] void kind_mismatch(const char* want, const Value& v) {
  throw VmError(std::string("value kind mismatch: wanted ") + want +
                ", value is " + support::value_kind_name(v.kind()) + " (" +
                v.to_string() + ")");
}
}  // namespace

std::int64_t Value::as_int() const {
  if (const auto* p = std::get_if<std::int64_t>(&v_)) return *p;
  kind_mismatch("int", *this);
}

double Value::as_real() const {
  if (const auto* p = std::get_if<double>(&v_)) return *p;
  kind_mismatch("real", *this);
}

const std::string& Value::as_string() const {
  if (const auto* p = std::get_if<std::string>(&v_)) return *p;
  kind_mismatch("string", *this);
}

AbstractPointer Value::as_pointer() const {
  if (const auto* p = std::get_if<AbstractPointer>(&v_)) return *p;
  kind_mismatch("pointer", *this);
}

double Value::to_real() const {
  if (is_int()) return static_cast<double>(as_int());
  return as_real();
}

std::string Value::to_string() const {
  std::ostringstream os;
  if (is_int()) {
    os << as_int();
  } else if (is_real()) {
    os << as_real();
  } else if (is_string()) {
    os << support::quote(as_string());
  } else {
    auto p = as_pointer();
    os << "ptr(" << p.object_id << "+" << p.offset << ")";
  }
  return os.str();
}

void encode_value(support::ByteWriter& w, const Value& v) {
  w.put_u8(static_cast<std::uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kInt:
      w.put_i64(v.as_int());
      break;
    case ValueKind::kReal:
      w.put_f64(v.as_real());
      break;
    case ValueKind::kString:
      w.put_string(v.as_string());
      break;
    case ValueKind::kPointer: {
      auto p = v.as_pointer();
      w.put_u64(p.object_id);
      w.put_u64(p.offset);
      break;
    }
  }
}

Value decode_value(support::ByteReader& r) {
  auto tag = r.get_u8();
  switch (static_cast<ValueKind>(tag)) {
    case ValueKind::kInt:
      return Value(r.get_i64());
    case ValueKind::kReal:
      return Value(r.get_f64());
    case ValueKind::kString:
      return Value(r.get_string());
    case ValueKind::kPointer: {
      AbstractPointer p;
      p.object_id = r.get_u64();
      p.offset = r.get_u64();
      return Value(p);
    }
  }
  throw VmError("bad value tag " + std::to_string(tag) + " in state buffer");
}

void encode_values(support::ByteWriter& w, const std::vector<Value>& vs) {
  w.put_u32(static_cast<std::uint32_t>(vs.size()));
  for (const auto& v : vs) encode_value(w, v);
}

std::vector<Value> decode_values(support::ByteReader& r) {
  auto n = r.get_u32();
  // Every value needs at least its one-byte tag, so a count exceeding the
  // remaining bytes is malformed. Checking before the reserve keeps a
  // corrupted length prefix from forcing a gigantic allocation.
  if (n > r.remaining()) {
    throw VmError("value sequence length " + std::to_string(n) +
                  " exceeds the remaining " + std::to_string(r.remaining()) +
                  " bytes");
  }
  std::vector<Value> vs;
  vs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) vs.push_back(decode_value(r));
  return vs;
}

Value default_value(ValueKind kind) {
  switch (kind) {
    case ValueKind::kInt:
      return Value(std::int64_t{0});
    case ValueKind::kReal:
      return Value(0.0);
    case ValueKind::kString:
      return Value(std::string{});
    case ValueKind::kPointer:
      return Value(AbstractPointer{});
  }
  return Value{};
}

}  // namespace surgeon::ser
