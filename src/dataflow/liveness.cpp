#include "dataflow/liveness.hpp"

#include <sstream>

#include "minic/builtins.hpp"

namespace surgeon::dataflow {

using namespace minic;

namespace {

/// Is this variable a parameter or local of the analyzed function?
bool is_frame_var(const Expr& e) {
  if (e.kind != ExprKind::kVar) return false;
  const auto& v = static_cast<const VarExpr&>(e);
  return v.storage == VarStorage::kLocal || v.storage == VarStorage::kParam;
}

const std::string& var_name(const Expr& e) {
  return static_cast<const VarExpr&>(e).name;
}

struct UseDef {
  std::set<std::string>* use;
  std::set<std::string>* def;
  std::set<std::string>* address_taken;

  /// Collects uses in a value-position expression.
  void value(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kVar:
        if (is_frame_var(e)) use->insert(var_name(e));
        return;
      case ExprKind::kUnary:
        value(*static_cast<const UnaryExpr&>(e).operand);
        return;
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        value(*b.lhs);
        value(*b.rhs);
        return;
      }
      case ExprKind::kCast:
        value(*static_cast<const CastExpr&>(e).operand);
        return;
      case ExprKind::kDeref:
        value(*static_cast<const DerefExpr&>(e).operand);
        return;
      case ExprKind::kIndex: {
        const auto& i = static_cast<const IndexExpr&>(e);
        value(*i.base);
        value(*i.index);
        return;
      }
      case ExprKind::kAddrOf: {
        // Address escapes in a value position: the variable may be read or
        // written through the pointer at any later time.
        const auto& a = static_cast<const AddrOfExpr&>(e);
        if (is_frame_var(*a.operand)) {
          address_taken->insert(var_name(*a.operand));
          use->insert(var_name(*a.operand));
        }
        return;
      }
      case ExprKind::kCall:
        call(static_cast<const CallExpr&>(e));
        return;
      default:
        return;  // literals
    }
  }

  void call(const CallExpr& c) {
    // Receive positions of mh_read (args 2..) and mh_restore (args 1..)
    // define their &var targets rather than using them.
    std::size_t receive_from = SIZE_MAX;
    if (c.is_builtin) {
      auto id = static_cast<BuiltinId>(c.callee_index);
      if (id == BuiltinId::kMhRead) receive_from = 2;
      if (id == BuiltinId::kMhRestore) receive_from = 1;
    }
    for (std::size_t i = 0; i < c.args.size(); ++i) {
      const Expr& a = *c.args[i];
      if (i >= receive_from && a.kind == ExprKind::kAddrOf) {
        const auto& addr = static_cast<const AddrOfExpr&>(a);
        if (is_frame_var(*addr.operand)) def->insert(var_name(*addr.operand));
        continue;
      }
      value(a);
    }
  }
};

class Builder {
 public:
  explicit Builder(const Function& fn) : fn_(fn) {}

  void run(std::vector<CfgNode>& nodes,
           std::map<const Stmt*, std::size_t>& node_of_stmt,
           std::set<std::string>& address_taken) {
    nodes_ = &nodes;
    node_of_stmt_ = &node_of_stmt;
    address_taken_ = &address_taken;
    exit_ = make_node(nullptr, "exit");
    auto [entry, exits] = build(*fn_.body);
    (void)entry;
    for (auto e : exits) (*nodes_)[e].succ.push_back(exit_);
    for (const auto& [node, label] : pending_gotos_) {
      auto it = label_entry_.find(label);
      if (it != label_entry_.end()) {
        (*nodes_)[node].succ.push_back(it->second);
      }
    }
  }

 private:
  std::size_t make_node(const Stmt* stmt, std::string debug) {
    nodes_->push_back(CfgNode{});
    nodes_->back().stmt = stmt;
    nodes_->back().debug = std::move(debug);
    if (stmt != nullptr) (*node_of_stmt_)[stmt] = nodes_->size() - 1;
    return nodes_->size() - 1;
  }

  UseDef usedef(std::size_t node) {
    return UseDef{&(*nodes_)[node].use, &(*nodes_)[node].def, address_taken_};
  }

  /// Builds the subgraph for a statement; returns (entry, open exits).
  std::pair<std::size_t, std::vector<std::size_t>> build(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock: {
        const auto& b = static_cast<const BlockStmt&>(s);
        std::size_t entry = SIZE_MAX;
        std::vector<std::size_t> open;
        for (const auto& child : b.stmts) {
          auto [centry, cexits] = build(*child);
          if (entry == SIZE_MAX) entry = centry;
          for (auto e : open) (*nodes_)[e].succ.push_back(centry);
          open = std::move(cexits);
        }
        if (entry == SIZE_MAX) {
          // Empty block: a passthrough node.
          std::size_t n = make_node(&s, "empty-block");
          return {n, {n}};
        }
        return {entry, open};
      }
      case StmtKind::kDecl: {
        std::size_t n = make_node(&s, "decl");
        const auto& d = static_cast<const DeclStmt&>(s);
        if (d.init) usedef(n).value(*d.init);
        (*nodes_)[n].def.insert(d.name);
        return {n, {n}};
      }
      case StmtKind::kAssign: {
        std::size_t n = make_node(&s, "assign");
        const auto& a = static_cast<const AssignStmt&>(s);
        auto ud = usedef(n);
        ud.value(*a.value);
        if (a.target->kind == ExprKind::kVar) {
          if (is_frame_var(*a.target)) {
            (*nodes_)[n].def.insert(var_name(*a.target));
          }
        } else {
          // *p = v / p[i] = v uses the pointer (and index).
          ud.value(*a.target);
        }
        return {n, {n}};
      }
      case StmtKind::kExpr: {
        std::size_t n = make_node(&s, "expr");
        usedef(n).value(*static_cast<const ExprStmt&>(s).expr);
        return {n, {n}};
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        std::size_t cond = make_node(&s, "if-cond");
        usedef(cond).value(*i.cond);
        auto [tentry, texits] = build(*i.then_branch);
        (*nodes_)[cond].succ.push_back(tentry);
        std::vector<std::size_t> open = texits;
        if (i.else_branch) {
          auto [eentry, eexits] = build(*i.else_branch);
          (*nodes_)[cond].succ.push_back(eentry);
          open.insert(open.end(), eexits.begin(), eexits.end());
        } else {
          open.push_back(cond);
        }
        return {cond, open};
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const WhileStmt&>(s);
        std::size_t cond = make_node(&s, "while-cond");
        usedef(cond).value(*w.cond);
        loop_stack_.push_back(LoopNodes{cond, {}});
        auto [bentry, bexits] = build(*w.body);
        (*nodes_)[cond].succ.push_back(bentry);
        for (auto e : bexits) (*nodes_)[e].succ.push_back(cond);
        std::vector<std::size_t> exits = {cond};
        for (auto b : loop_stack_.back().breaks) exits.push_back(b);
        loop_stack_.pop_back();
        return {cond, exits};
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        std::size_t entry = SIZE_MAX;
        std::vector<std::size_t> into_cond;
        if (f.init) {
          auto [ientry, iexits] = build(*f.init);
          entry = ientry;
          into_cond = iexits;
        }
        std::size_t cond = make_node(&s, "for-cond");
        if (f.cond) usedef(cond).value(*f.cond);
        if (entry == SIZE_MAX) entry = cond;
        for (auto e : into_cond) (*nodes_)[e].succ.push_back(cond);
        // `continue` targets the step (or the condition when absent).
        std::size_t step_entry = SIZE_MAX;
        std::vector<std::size_t> step_exits;
        // The step's node must exist before the body builds so that
        // continue edges can point at it.
        if (f.step) {
          auto [sentry, sexits] = build(*f.step);
          step_entry = sentry;
          step_exits = sexits;
        }
        loop_stack_.push_back(
            LoopNodes{step_entry == SIZE_MAX ? cond : step_entry, {}});
        auto [bentry, bexits] = build(*f.body);
        (*nodes_)[cond].succ.push_back(bentry);
        if (step_entry == SIZE_MAX) {
          for (auto e : bexits) (*nodes_)[e].succ.push_back(cond);
        } else {
          for (auto e : bexits) (*nodes_)[e].succ.push_back(step_entry);
          for (auto e : step_exits) (*nodes_)[e].succ.push_back(cond);
        }
        std::vector<std::size_t> exits;
        if (f.cond) exits.push_back(cond);  // condition-false exit
        for (auto b : loop_stack_.back().breaks) exits.push_back(b);
        loop_stack_.pop_back();
        return {entry, exits};
      }
      case StmtKind::kBreak: {
        std::size_t n = make_node(&s, "break");
        loop_stack_.back().breaks.push_back(n);
        return {n, {}};
      }
      case StmtKind::kContinue: {
        std::size_t n = make_node(&s, "continue");
        (*nodes_)[n].succ.push_back(loop_stack_.back().continue_target);
        return {n, {}};
      }
      case StmtKind::kReturn: {
        std::size_t n = make_node(&s, "return");
        const auto& r = static_cast<const ReturnStmt&>(s);
        if (r.value) usedef(n).value(*r.value);
        (*nodes_)[n].succ.push_back(exit_);
        return {n, {}};
      }
      case StmtKind::kGoto: {
        std::size_t n = make_node(&s, "goto");
        pending_gotos_.emplace_back(n,
                                    static_cast<const GotoStmt&>(s).label);
        return {n, {}};
      }
      case StmtKind::kLabeled: {
        const auto& l = static_cast<const LabeledStmt&>(s);
        auto [entry, exits] = build(*l.inner);
        label_entry_[l.label] = entry;
        // The labeled statement shares its inner statement's node for
        // live_before/after queries.
        (*node_of_stmt_)[&s] = entry;
        return {entry, exits};
      }
      case StmtKind::kEmpty: {
        std::size_t n = make_node(&s, "empty");
        return {n, {n}};
      }
    }
    std::size_t n = make_node(&s, "?");
    return {n, {n}};
  }

  struct LoopNodes {
    std::size_t continue_target = 0;
    std::vector<std::size_t> breaks;
  };

  const Function& fn_;
  std::vector<CfgNode>* nodes_ = nullptr;
  std::map<const Stmt*, std::size_t>* node_of_stmt_ = nullptr;
  std::set<std::string>* address_taken_ = nullptr;
  std::size_t exit_ = 0;
  std::map<std::string, std::size_t> label_entry_;
  std::vector<std::pair<std::size_t, std::string>> pending_gotos_;
  std::vector<LoopNodes> loop_stack_;
};

}  // namespace

Liveness Liveness::analyze(const Function& fn) {
  Liveness lv;
  for (const auto& p : fn.params) lv.all_vars_.insert(p.name);
  for (const auto& l : fn.locals) lv.all_vars_.insert(l.name);

  Builder(fn).run(lv.nodes_, lv.node_of_stmt_, lv.address_taken_);

  // Backward fixpoint: live_in = use ∪ (live_out − def);
  // live_out = ∪ live_in(succ). Address-taken variables are pinned live.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t idx = lv.nodes_.size(); idx-- > 0;) {
      CfgNode& n = lv.nodes_[idx];
      std::set<std::string> out;
      for (auto s : n.succ) {
        out.insert(lv.nodes_[s].live_in.begin(), lv.nodes_[s].live_in.end());
      }
      std::set<std::string> in = n.use;
      for (const auto& v : out) {
        if (!n.def.contains(v)) in.insert(v);
      }
      if (out != n.live_out || in != n.live_in) {
        n.live_out = std::move(out);
        n.live_in = std::move(in);
        changed = true;
      }
    }
  }
  // Pin address-taken variables.
  for (auto& n : lv.nodes_) {
    for (const auto& v : lv.address_taken_) {
      n.live_in.insert(v);
      n.live_out.insert(v);
    }
  }
  return lv;
}

std::set<std::string> Liveness::live_before(const Stmt* stmt) const {
  auto it = node_of_stmt_.find(stmt);
  if (it == node_of_stmt_.end()) return all_vars_;
  return nodes_[it->second].live_in;
}

std::set<std::string> Liveness::live_after(const Stmt* stmt) const {
  auto it = node_of_stmt_.find(stmt);
  if (it == node_of_stmt_.end()) return all_vars_;
  return nodes_[it->second].live_out;
}

std::string Liveness::dump() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    os << i << " [" << n.debug << "]";
    os << " use{";
    for (const auto& v : n.use) os << v << " ";
    os << "} def{";
    for (const auto& v : n.def) os << v << " ";
    os << "} in{";
    for (const auto& v : n.live_in) os << v << " ";
    os << "} out{";
    for (const auto& v : n.live_out) os << v << " ";
    os << "} ->";
    for (auto s : n.succ) os << " " << s;
    os << "\n";
  }
  return os.str();
}

}  // namespace surgeon::dataflow
