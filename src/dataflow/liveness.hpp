// Control-flow graph construction and live-variable analysis.
//
// Section 3 of the paper: "At a reconfiguration point, data-flow analysis
// could be used to determine the set of live variables." This module
// implements that suggestion: a per-function CFG at statement granularity
// and classic backward may-liveness, used by the transformer (option
// use_liveness) to shrink the captured state, and benchmarked by the
// liveness-ablation experiment (A1 in DESIGN.md).
//
// Soundness notes:
//  - A variable whose address escapes (passed &v to a user function, or
//    captured outside a receive position) is treated as always live.
//  - &v arguments in *receive* positions of mh_read / mh_restore are
//    definitions, not escapes.
//  - Pointer dereferences use the pointer variable; the pointee is managed
//    heap or another frame and is outside this analysis.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace surgeon::dataflow {

struct CfgNode {
  const minic::Stmt* stmt = nullptr;  // null for synthetic nodes
  std::string debug;                  // node kind for dumps
  std::set<std::string> use;
  std::set<std::string> def;
  std::vector<std::size_t> succ;
  std::set<std::string> live_in;
  std::set<std::string> live_out;
};

class Liveness {
 public:
  /// Analyzes one function of an analyzed program.
  static Liveness analyze(const minic::Function& fn);

  /// Variables (parameters/locals of the function) live immediately BEFORE
  /// the given statement. Conservatively returns all variables when the
  /// statement has no node (should not happen for elementary statements).
  [[nodiscard]] std::set<std::string> live_before(
      const minic::Stmt* stmt) const;
  /// Variables live immediately AFTER the given statement (what a capture
  /// block following the statement must preserve).
  [[nodiscard]] std::set<std::string> live_after(
      const minic::Stmt* stmt) const;

  [[nodiscard]] const std::vector<CfgNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::set<std::string>& address_taken() const noexcept {
    return address_taken_;
  }

  /// Multi-line dump of the CFG with live sets, for tests and debugging.
  [[nodiscard]] std::string dump() const;

 private:
  std::vector<CfgNode> nodes_;
  std::map<const minic::Stmt*, std::size_t> node_of_stmt_;
  std::set<std::string> address_taken_;
  std::set<std::string> all_vars_;
};

}  // namespace surgeon::dataflow
