#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "minic/sema.hpp"
#include "vm/compiler.hpp"
#include "xform/transform.hpp"

namespace surgeon::xform {
namespace {

using cfg::ReconfigPointSpec;
using cfg::StateVar;

std::vector<ReconfigPointSpec> points_of_monitor_compute() {
  cfg::ConfigFile file =
      cfg::parse_config(app::samples::monitor_config_text());
  return file.find_module("compute")->reconfig_points;
}

TEST(Normalize, WrapsBareBodiesInBlocks) {
  minic::Program p = minic::parse_program(R"(
void main() {
  int i;
  if (1) i = 1; else i = 2;
  while (i > 0) i = i - 1;
}
)");
  minic::analyze(p);
  normalize_blocks(p);
  auto& body = *p.functions[0]->body;
  auto& if_stmt = static_cast<minic::IfStmt&>(*body.stmts[1]);
  EXPECT_EQ(if_stmt.then_branch->kind, minic::StmtKind::kBlock);
  EXPECT_EQ(if_stmt.else_branch->kind, minic::StmtKind::kBlock);
  auto& while_stmt = static_cast<minic::WhileStmt&>(*body.stmts[2]);
  EXPECT_EQ(while_stmt.body->kind, minic::StmtKind::kBlock);
  // Idempotent.
  normalize_blocks(p);
  EXPECT_EQ(if_stmt.then_branch->kind, minic::StmtKind::kBlock);
}

TEST(Xform, MonitorComputeStructure) {
  // F4: transform the Figure 3 module and check the Figure 4 structure.
  PreparedSource prepared = prepare_source(
      app::samples::monitor_compute_source(), points_of_monitor_compute());
  const std::string& text = prepared.source;

  // The four mh_ globals and the signal handler exist.
  EXPECT_NE(text.find("int mh_reconfig;"), std::string::npos);
  EXPECT_NE(text.find("int mh_capturestack;"), std::string::npos);
  EXPECT_NE(text.find("int mh_restoring;"), std::string::npos);
  EXPECT_NE(text.find("int mh_location;"), std::string::npos);
  EXPECT_NE(text.find("void mh_catchreconfig()"), std::string::npos);
  EXPECT_NE(text.find("mh_reconfig = 1;"), std::string::npos);

  // Figure 4 graph: 4 edges -- compute->compute (1), R (2), main's two call
  // sites (3, 4). compute precedes main in the source.
  ASSERT_EQ(prepared.result.graph.edges.size(), 4u);
  EXPECT_EQ(prepared.result.graph.edges[0].from, "compute");
  EXPECT_TRUE(prepared.result.graph.edges[1].is_reconfig_point);

  // Status check and decode appear in main only.
  EXPECT_NE(text.find("if (mh_getstatus() == \"clone\")"), std::string::npos);
  EXPECT_EQ(text.find("mh_decode"), text.rfind("mh_decode"));  // exactly once

  // The reconfiguration-point capture block sets the cascade flags.
  EXPECT_NE(text.find("mh_reconfig = 0;"), std::string::npos);
  EXPECT_NE(text.find("mh_capturestack = 1;"), std::string::npos);

  // The spec's variable list {num, n, *rp} governs compute's captures:
  // location + num + n + *rp, with rp dereferenced in capture and passed
  // plain as a restore target (Figure 4's "iiif" ... rp).
  EXPECT_NE(text.find("mh_capture(\"iiiF\", 2, num, n, *rp);"),
            std::string::npos);
  EXPECT_NE(text.find("mh_restore(\"iiiF\", &mh_location, &num, &n, rp);"),
            std::string::npos);
  // temper is NOT captured (the spec omits it, as Figure 4 does): the
  // exact capture/restore strings above are the complete variable lists.

  // main's captures: location + n + response.
  EXPECT_NE(text.find("mh_capture(\"iiF\", 3, n, response);"),
            std::string::npos);
  EXPECT_NE(text.find("mh_capture(\"iiF\", 4, n, response);"),
            std::string::npos);
  EXPECT_NE(text.find("mh_restore(\"iiF\", &mh_location, &n, &response);"),
            std::string::npos);

  // main's capture blocks divulge via mh_encode; compute's do not.
  // (encode appears exactly twice: once per main call edge.)
  std::size_t encodes = 0;
  for (std::size_t pos = text.find("mh_encode()"); pos != std::string::npos;
       pos = text.find("mh_encode()", pos + 1)) {
    ++encodes;
  }
  EXPECT_EQ(encodes, 2u);

  // Restore dispatch: the reconfiguration edge reinstalls the handler and
  // jumps to R; call edges repeat the call and jump to their labels.
  EXPECT_NE(text.find("mh_restoring = 0;"), std::string::npos);
  EXPECT_NE(text.find("goto R;"), std::string::npos);
  EXPECT_NE(text.find("goto L1;"), std::string::npos);
  EXPECT_NE(text.find("L1:"), std::string::npos);

  // The transformed source must itself be valid MiniC that compiles.
  minic::Program reparsed = minic::parse_program(text);
  minic::analyze(reparsed);
  (void)vm::compile(reparsed);

  // Figure 4 banners for human readers.
  EXPECT_NE(text.find("begin capture"), std::string::npos);
  EXPECT_NE(text.find("begin restore"), std::string::npos);
}

TEST(Xform, MonitorComputeGolden) {
  // F4: the fully transformed compute module, byte for byte. The golden
  // file tests/golden/monitor_compute_prepared.mc is the repository's
  // rendition of the paper's Figure 4; regenerate it with
  //   ./build/examples/mh_prepare --demo
  // and review the diff whenever the transformation intentionally changes.
  std::ifstream in(std::string(SURGEON_GOLDEN_DIR) +
                   "/monitor_compute_prepared.mc");
  ASSERT_TRUE(in.good()) << "golden file missing";
  std::ostringstream golden;
  golden << in.rdbuf();
  PreparedSource prepared = prepare_source(
      app::samples::monitor_compute_source(), points_of_monitor_compute());
  EXPECT_EQ(prepared.source, golden.str());
}

TEST(Xform, TransformedSourceIsStable) {
  // Transforming, printing, and reparsing yields a program that prints
  // identically (the output is canonical MiniC).
  PreparedSource p1 = prepare_source(app::samples::monitor_compute_source(),
                                     points_of_monitor_compute());
  // The banner comments are lost on reparse; compare banner-free prints.
  minic::Program r1 = minic::parse_program(p1.source);
  minic::analyze(r1);
  std::string text1 = minic::print_program(r1);
  minic::Program r2 = minic::parse_program(text1);
  minic::analyze(r2);
  EXPECT_EQ(minic::print_program(r2), text1);
}

TEST(Xform, RepeatedCallUsesDummyArguments) {
  // Section 3's final issue: the repeated call's argument `a / b` could
  // fault under restored state (b may be 0 at capture time), so the
  // transformer substitutes a typed dummy. The pointer argument and the
  // plain variable are repeated verbatim.
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"RP", {}, {}}};
  PreparedSource prepared = prepare_source(R"(
void work(int q, int n, float *out) {
RP:
  *out = (float)(q + n);
}
void main() {
  int a; int b; float r;
  a = 6; b = 2;
  work(a / b, a, &r);
  b = 0;
  print(r);
}
)",
                                           points);
  EXPECT_NE(prepared.source.find("work(0, a, &r);"), std::string::npos)
      << prepared.source;
}

TEST(Xform, SafeExpressionArgumentsAreRepeated) {
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"RP", {}, {}}};
  PreparedSource prepared = prepare_source(R"(
void work(int n, float *out) {
  if (n <= 0) { return; }
  work(n - 1, out);
RP:
  *out = *out + 1.0;
}
void main() {
  float r;
  work(3, &r);
  print(r);
}
)",
                                           points);
  // n - 1 cannot fault: repeated verbatim, as the paper prefers.
  EXPECT_NE(prepared.source.find("work(n - 1, out);"), std::string::npos);
}

TEST(Xform, PointerArgMustBeRepeatable) {
  // A pointer argument produced by a call cannot be repeated during
  // restoration without re-executing the call. The call site is already
  // rejected at graph construction (a nested call makes it a non-statement
  // call); the transformer's own pointer-argument check is a second line of
  // defence. Either way, preparation must fail loudly.
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"RP", {}, {}}};
  EXPECT_THROW(prepare_source(R"(
int* make() { return mh_alloc_int(1); }
void work(int *p) {
RP:
  *p = 1;
}
void main() {
  work(make());
}
)",
                              points),
               support::Error);
}

TEST(Xform, ReservedNamesRejected) {
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"RP", {}, {}}};
  EXPECT_THROW(prepare_source(R"(
int mh_reconfig;
void main() {
RP:
  ;
}
)",
                              points),
               XformError);
  // Transforming twice is the same error.
  PreparedSource once = prepare_source("void main() {\nRP:\n ; }", points);
  minic::Program again = minic::parse_program(once.source);
  minic::analyze(again);
  EXPECT_THROW(prepare_module(again, points), XformError);
}

TEST(Xform, NoPointsRejected) {
  minic::Program p = minic::parse_program("void main() { }");
  minic::analyze(p);
  EXPECT_THROW(prepare_module(p, {}), XformError);
}

TEST(Xform, SpecVarMustExist) {
  std::vector<ReconfigPointSpec> points = {
      ReconfigPointSpec{"RP", {StateVar{"nope", false}}, {}}};
  EXPECT_THROW(prepare_source("void main() {\nRP:\n ; }", points),
               XformError);
}

TEST(Xform, SpecDerefOfNonPointerRejected) {
  std::vector<ReconfigPointSpec> points = {
      ReconfigPointSpec{"RP", {StateVar{"x", true}}, {}}};
  EXPECT_THROW(prepare_source(R"(
void main() {
  int x;
RP:
  x = 1;
}
)",
                              points),
               XformError);
}

TEST(Xform, GlobalsCapturedInDataAreaFrame) {
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"RP", {}, {}}};
  PreparedSource prepared = prepare_source(R"(
int total = 0;
float rate = 1.5;
void main() {
  int x;
RP:
  x = 1;
  total = total + x;
}
)",
                                           points);
  // The data-area frame is captured after the stack frames and restored
  // before them (mh_capture of the globals, mh_restore with their targets).
  EXPECT_NE(prepared.source.find("mh_capture(\"iF\", total, rate);"),
            std::string::npos)
      << prepared.source;
  EXPECT_NE(prepared.source.find("mh_restore(\"iF\", &total, &rate);"),
            std::string::npos);
}

TEST(Xform, GlobalsCaptureCanBeDisabled) {
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"RP", {}, {}}};
  XformOptions options;
  options.capture_globals = false;
  PreparedSource prepared = prepare_source(R"(
int total = 0;
void main() {
RP:
  total = total + 1;
}
)",
                                           points, options);
  EXPECT_EQ(prepared.source.find("mh_capture(\"i\", total);"),
            std::string::npos);
}

TEST(Xform, MultipleReconfigPointsShareCallEdgeBlocks) {
  // Section 3: capture blocks at call edges are shared by all
  // reconfiguration points; each point gets its own capture block.
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"R1", {}, {}},
                                           ReconfigPointSpec{"R2", {}, {}}};
  PreparedSource prepared = prepare_source(R"(
void a(int x) {
R1:
  x = x + 1;
}
void b(int x) {
R2:
  x = x + 2;
}
void main() {
  a(1);
  b(2);
}
)",
                                           points);
  const std::string& text = prepared.source;
  // Two rp capture blocks (each tests mh_reconfig)...
  std::size_t rp_blocks = 0;
  for (std::size_t pos = text.find("if (mh_reconfig)");
       pos != std::string::npos;
       pos = text.find("if (mh_reconfig)", pos + 1)) {
    ++rp_blocks;
  }
  EXPECT_EQ(rp_blocks, 2u);
  // ...and one shared stack-capture block per call site.
  std::size_t stack_blocks = 0;
  for (std::size_t pos = text.find("if (mh_capturestack)");
       pos != std::string::npos;
       pos = text.find("if (mh_capturestack)", pos + 1)) {
    ++stack_blocks;
  }
  EXPECT_EQ(stack_blocks, 2u);
}

TEST(Xform, LivenessModeShrinksCapturedState) {
  const char* src = R"(
void work(int n, float *out) {
  int big1; int big2; int big3;
  big1 = n; big2 = n; big3 = n;
  print(big1, big2, big3);
RP:
  *out = (float)n;
}
void main() {
  float r;
  work(5, &r);
  print(r);
}
)";
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"RP", {}, {}}};
  PreparedSource full = prepare_source(src, points);
  XformOptions options;
  options.use_liveness = true;
  PreparedSource live = prepare_source(src, points, options);
  // Liveness mode: big1..big3 are dead at RP, so the rp capture carries
  // only {n, out}; default mode carries all five.
  EXPECT_NE(full.source.find("big1, big2, big3"), std::string::npos);
  EXPECT_EQ(live.source.find("mh_capture(\"iiF\", 1, n, big1"),
            std::string::npos);
  EXPECT_NE(live.source.find("mh_peek_location()"), std::string::npos);
  // Captured-variable accounting reflects the difference.
  std::size_t full_vars = 0, live_vars = 0;
  for (const auto& [fn, count] : full.result.captured_var_counts) {
    full_vars += count;
  }
  for (const auto& [fn, count] : live.result.captured_var_counts) {
    live_vars += count;
  }
  EXPECT_LT(live_vars, full_vars);
}

TEST(Xform, LabelCollisionAvoided) {
  // The program already uses L1; generated labels must not collide.
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"RP", {}, {}}};
  PreparedSource prepared = prepare_source(R"(
void work(int n) {
RP:
  n = n + 1;
}
void main() {
  int i;
  i = 0;
L2:
  work(i);
  i = i + 1;
  if (i < 2) goto L2;
}
)",
                                           points);
  // The call edge is edge 2 (work's RP is edge 1); its label would be L2,
  // which the user already owns, so the generated one is mh_L2.
  EXPECT_NE(prepared.source.find("mh_L2:"), std::string::npos)
      << prepared.source;
}

TEST(Xform, NonVoidFunctionsGetTypedReturns) {
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"RP", {}, {}}};
  PreparedSource prepared = prepare_source(R"(
int work(int n) {
RP:
  return n + 1;
}
void main() {
  work(1);
}
)",
                                           points);
  // The capture block inside `work` must return a value of work's type.
  EXPECT_NE(prepared.source.find("return 0;"), std::string::npos)
      << prepared.source;
  // And the transformed program still compiles.
  minic::Program reparsed = minic::parse_program(prepared.source);
  minic::analyze(reparsed);
  (void)vm::compile(reparsed);
}

}  // namespace
}  // namespace surgeon::xform
