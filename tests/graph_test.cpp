#include <gtest/gtest.h>

#include "graph/callgraph.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"

namespace surgeon::graph {
namespace {

using support::SemaError;

minic::Program parsed(std::string_view src) {
  minic::Program p = minic::parse_program(src);
  minic::analyze(p);
  return p;
}

/// The Figure 6 program shape: main calls a twice and b once; a calls b;
/// reconfiguration points R1 in a and R2 in b.
const char* kFigure6 = R"(
void b(int x) {
  int t;
R2:
  t = x;
}

void a(int x) {
R1:
  b(x);
}

void main() {
  int i;
  i = 0;
  a(1);
  a(2);
  b(3);
}
)";

TEST(CallGraph, NodesAndMultiEdges) {
  minic::Program p = parsed(kFigure6);
  CallGraph cg = build_call_graph(p);
  EXPECT_EQ(cg.nodes, (std::set<std::string>{"a", "b", "main"}));
  // Edges: a->b, main->a (twice), main->b.
  ASSERT_EQ(cg.sites.size(), 4u);
  int main_to_a = 0;
  for (const auto& site : cg.sites) {
    if (site.caller == "main" && site.callee == "a") ++main_to_a;
    EXPECT_TRUE(site.is_statement_call);
  }
  EXPECT_EQ(main_to_a, 2);
}

TEST(CallGraph, Reachability) {
  minic::Program p = parsed(R"(
void isolated() { }
void leaf() { }
void mid() { leaf(); }
void main() { mid(); }
)");
  CallGraph cg = build_call_graph(p);
  auto reach = cg.reachable_from("main");
  EXPECT_TRUE(reach.contains("leaf"));
  EXPECT_FALSE(reach.contains("isolated"));
  auto reaching = cg.can_reach({"leaf"});
  EXPECT_EQ(reaching, (std::set<std::string>{"leaf", "mid", "main"}));
}

TEST(CallGraph, RecursionIsACycle) {
  minic::Program p = parsed(R"(
void f(int n) { if (n > 0) { f(n - 1); } }
void main() { f(3); }
)");
  CallGraph cg = build_call_graph(p);
  EXPECT_TRUE(cg.reachable_from("f").contains("f"));
  EXPECT_TRUE(cg.can_reach({"f"}).contains("main"));
}

TEST(CallGraph, NestedCallsAreNotStatementCalls) {
  minic::Program p = parsed(R"(
int g(int x) { return x; }
void main() {
  int a;
  a = g(1) + g(2);
  if (g(a) > 0) { a = 0; }
  g(g(3));
}
)");
  CallGraph cg = build_call_graph(p);
  int statement_calls = 0;
  for (const auto& site : cg.sites) {
    if (site.is_statement_call) ++statement_calls;
  }
  // Only the OUTER g(g(3))... even that one is disqualified because its
  // argument contains a call; no site qualifies.
  EXPECT_EQ(statement_calls, 0);
  EXPECT_EQ(cg.sites.size(), 5u);
}

TEST(ReconfigPoints, LocatedByLabel) {
  minic::Program p = parsed(kFigure6);
  auto points = find_reconfig_points(p, {"R1", "R2"});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].function, "a");
  EXPECT_EQ(points[1].function, "b");
}

TEST(ReconfigPoints, MissingLabelThrows) {
  minic::Program p = parsed(kFigure6);
  EXPECT_THROW((void)find_reconfig_points(p, {"NOPE"}), SemaError);
}

TEST(ReconfigGraph, Figure6Shape) {
  // F6: the reconfiguration graph of the figure's program: nodes {main, a,
  // b} plus the synthetic reconfig node; one edge per call statement plus
  // one per reconfiguration point, numbered consecutively in program order.
  minic::Program p = parsed(kFigure6);
  ReconfigGraph rg = build_reconfig_graph(p, {"R1", "R2"});
  EXPECT_EQ(rg.nodes, (std::set<std::string>{"a", "b", "main"}));
  ASSERT_EQ(rg.edges.size(), 6u);
  // Program order: b holds R2; a holds a->b then R1; main holds three calls.
  EXPECT_EQ(rg.edges[0].id, 1);
  EXPECT_TRUE(rg.edges[0].is_reconfig_point);
  EXPECT_EQ(rg.edges[0].point.label, "R2");
  EXPECT_EQ(rg.edges[1].from, "a");
  EXPECT_EQ(rg.edges[1].to, "b");
  EXPECT_TRUE(rg.edges[2].is_reconfig_point);
  EXPECT_EQ(rg.edges[2].point.label, "R1");
  EXPECT_EQ(rg.edges[3].from, "main");
  EXPECT_EQ(rg.edges[3].to, "a");
  EXPECT_EQ(rg.edges[4].to, "a");
  EXPECT_EQ(rg.edges[5].to, "b");
  EXPECT_EQ(rg.edges[5].id, 6);
  EXPECT_EQ(rg.edges_from("main").size(), 3u);
}

TEST(ReconfigGraph, OnlyPathsToReconfigAreInstrumented) {
  // Calls to functions that cannot reach a reconfiguration point get no
  // edges; unreachable functions are excluded entirely.
  minic::Program p = parsed(R"(
void logger(int x) { int t; t = x; }
void worker(int n) {
RP:
  logger(n);
}
void main() {
  logger(0);
  worker(1);
}
)");
  ReconfigGraph rg = build_reconfig_graph(p, {"RP"});
  EXPECT_EQ(rg.nodes, (std::set<std::string>{"main", "worker"}));
  // Edges: RP in worker, main->worker. NOT worker->logger or main->logger.
  ASSERT_EQ(rg.edges.size(), 2u);
  for (const auto& e : rg.edges) {
    EXPECT_NE(e.to, "logger");
  }
}

TEST(ReconfigGraph, RecursiveMonitorShape) {
  // The monitor compute module: two call sites in main plus the recursive
  // call and the reconfiguration point -- Figure 4's numbering 1..4.
  minic::Program p = parsed(R"(
void compute(int num, int n, float *rp) {
  int temper;
  if (n <= 0) { *rp = 0.0; return; }
  compute(num, n - 1, rp);
R:
  temper = 1;
  *rp = *rp + (float)temper / (float)num;
}
void main() {
  int n;
  float response;
  while (1) {
    while (n > 0) {
      compute(n, n, &response);
    }
    if (n == 0) {
      compute(1, 1, &response);
    }
    sleep(2);
  }
}
)");
  ReconfigGraph rg = build_reconfig_graph(p, {"R"});
  ASSERT_EQ(rg.edges.size(), 4u);
  // compute precedes main in the source, so its edges number first.
  EXPECT_EQ(rg.edges[0].from, "compute");
  EXPECT_EQ(rg.edges[0].to, "compute");
  EXPECT_TRUE(rg.edges[1].is_reconfig_point);
  EXPECT_EQ(rg.edges[2].from, "main");
  EXPECT_EQ(rg.edges[3].from, "main");
}

TEST(ReconfigGraph, UnreachableReconfigPointThrows) {
  minic::Program p = parsed(R"(
void orphan() {
RP:
  ;
}
void main() { int x; x = 0; }
)");
  EXPECT_THROW((void)build_reconfig_graph(p, {"RP"}), SemaError);
}

TEST(ReconfigGraph, NonStatementCallOnPathThrows) {
  minic::Program p = parsed(R"(
int helper(int n) {
RP:
  return n;
}
void main() {
  int x;
  x = helper(3) + 1;
}
)");
  EXPECT_THROW((void)build_reconfig_graph(p, {"RP"}), SemaError);
}

TEST(ReconfigGraph, DuplicateLabelAcrossFunctionsThrows) {
  minic::Program p = minic::parse_program(R"(
void f() {
R:
  ;
}
void main() {
R:
  f();
}
)");
  minic::analyze(p);
  EXPECT_THROW((void)find_reconfig_points(p, {"R"}), SemaError);
}

TEST(ReconfigGraph, DotRenderings) {
  minic::Program p = parsed(kFigure6);
  CallGraph cg = build_call_graph(p);
  ReconfigGraph rg = build_reconfig_graph(p, {"R1", "R2"});
  std::string cg_dot = to_dot(cg);
  std::string rg_dot = to_dot(rg);
  EXPECT_NE(cg_dot.find("\"main\" -> \"a\""), std::string::npos);
  EXPECT_NE(rg_dot.find("reconfig"), std::string::npos);
  EXPECT_NE(rg_dot.find("(1, "), std::string::npos);
}

}  // namespace
}  // namespace surgeon::graph
