#include <gtest/gtest.h>

#include "net/sim.hpp"
#include "support/diag.hpp"

namespace surgeon::net {
namespace {

using support::BusError;

TEST(Sim, MachinesRegister) {
  Simulator sim;
  sim.add_machine("a", arch_vax());
  sim.add_machine("b", arch_sparc());
  EXPECT_TRUE(sim.has_machine("a"));
  EXPECT_FALSE(sim.has_machine("c"));
  EXPECT_EQ(sim.machine("b").arch.name, "sparc");
  EXPECT_EQ(sim.machine_names().size(), 2u);
  EXPECT_THROW(sim.add_machine("a", arch_vax()), BusError);
  EXPECT_THROW((void)sim.machine("zz"), BusError);
}

TEST(Sim, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(30, [&] { order.push_back(3); });
  sim.schedule_after(10, [&] { order.push_back(1); });
  sim.schedule_after(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
  EXPECT_TRUE(sim.idle());
}

TEST(Sim, EqualTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Sim, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(1, [&] {
    ++fired;
    sim.schedule_after(1, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 2u);
}

TEST(Sim, StepReturnsFalseWhenIdle) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_after(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Sim, RunRespectsMaxEvents) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) sim.schedule_after(i, [&] { ++fired; });
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Sim, PastEventsClampToNow) {
  Simulator sim;
  sim.schedule_after(100, [] {});
  sim.run();
  bool ran = false;
  sim.schedule_at(5, [&] { ran = true; });  // in the past
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Sim, LatencyModelDistinguishesLocalAndRemote) {
  Simulator sim;
  sim.add_machine("a", arch_vax());
  sim.add_machine("b", arch_sparc());
  LatencyModel model;
  model.local_us = 3;
  model.remote_us = 500;
  sim.set_latency_model(model);
  EXPECT_EQ(sim.message_latency("a", "a"), 3u);
  EXPECT_EQ(sim.message_latency("a", "b"), 500u);
}

TEST(Sim, RemoteJitterBoundedAndDeterministic) {
  LatencyModel model;
  model.remote_us = 100;
  model.remote_jitter_us = 50;
  Simulator sim1(99), sim2(99);
  sim1.set_latency_model(model);
  sim2.set_latency_model(model);
  for (int i = 0; i < 100; ++i) {
    auto l1 = sim1.message_latency("a", "b");
    EXPECT_GE(l1, 100u);
    EXPECT_LE(l1, 150u);
    EXPECT_EQ(l1, sim2.message_latency("a", "b"));
  }
}

TEST(Sim, AdvanceTimeMovesClock) {
  Simulator sim;
  sim.advance_time(42);
  EXPECT_EQ(sim.now(), 42u);
  // An event scheduled before the advance still runs, at the later clock.
  bool ran = false;
  sim.schedule_at(10, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 42u);
}

TEST(Arch, ReferenceArchitecturesDiffer) {
  EXPECT_NE(arch_vax().byte_order, arch_sparc().byte_order);
  EXPECT_NE(arch_vax().slot_padding, arch_sparc().slot_padding);
}

TEST(DurableStore, LogsAppendInOrderAndTruncate) {
  DurableStore store;
  EXPECT_TRUE(store.log("wal").empty());
  store.append("wal", {1, 2});
  store.append("wal", {3});
  ASSERT_EQ(store.log("wal").size(), 2u);
  EXPECT_EQ(store.log("wal")[0], (DurableStore::Record{1, 2}));
  EXPECT_EQ(store.log("wal")[1], (DurableStore::Record{3}));
  EXPECT_EQ(store.appends(), 2u);
  EXPECT_EQ(store.bytes_written(), 3u);
  store.truncate("wal");
  EXPECT_TRUE(store.log("wal").empty());
}

TEST(DurableStore, KeyValueAreaWithPrefixScan) {
  DurableStore store;
  EXPECT_EQ(store.get("ckpt/server"), nullptr);
  store.put("ckpt/server", {9});
  store.put("ckpt/filter", {8});
  store.put("other", {7});
  ASSERT_NE(store.get("ckpt/server"), nullptr);
  EXPECT_EQ(*store.get("ckpt/server"), (DurableStore::Record{9}));
  std::vector<std::string> keys = store.keys_with_prefix("ckpt/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "ckpt/filter");
  EXPECT_EQ(keys[1], "ckpt/server");
  EXPECT_TRUE(store.erase("ckpt/server"));
  EXPECT_FALSE(store.erase("ckpt/server"));
  EXPECT_EQ(store.get("ckpt/server"), nullptr);
  EXPECT_EQ(store.puts(), 3u);
}

TEST(DurableStore, BelongsToTheMachineNotTheProcess) {
  // Each machine has one store; it survives anything short of losing the
  // host, and unknown machines have no disk to write to.
  Simulator sim;
  sim.add_machine("vax", arch_vax());
  sim.add_machine("sparc", arch_sparc());
  sim.durable_store("vax").put("k", {1});
  EXPECT_EQ(sim.durable_store("sparc").get("k"), nullptr);
  ASSERT_NE(sim.durable_store("vax").get("k"), nullptr);
  EXPECT_THROW((void)sim.durable_store("atlantis"), BusError);
}

}  // namespace
}  // namespace surgeon::net
