// Pipeline integration: a three-stage stream where the middle stage is
// replaced under load. Queued and in-flight messages must survive the
// rebind (the "cap"/"rmq" commands of Figure 5 plus the drain window), and
// the stage's sequence counter must continue without a gap.
#include <gtest/gtest.h>

#include <set>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "reconfig/scripts.hpp"

namespace surgeon {
namespace {

using app::Runtime;

std::unique_ptr<Runtime> make_pipeline(int items, std::uint64_t seed = 5) {
  auto rt = std::make_unique<Runtime>(seed);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  net::LatencyModel model;
  model.local_us = 15;
  model.remote_us = 2500;
  rt->simulator().set_latency_model(model);
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::pipeline_config_text());
  rt->load_application(config, "pipeline",
                       [&](const cfg::ModuleSpec& spec) {
                         if (spec.name == "feeder") {
                           return app::samples::pipeline_source_source(items);
                         }
                         if (spec.name == "filter") {
                           return app::samples::pipeline_filter_source();
                         }
                         return app::samples::pipeline_sink_source();
                       });
  return rt;
}

std::vector<std::string> sink_output(Runtime& rt) {
  return rt.machine_of("sink")->output();
}

void expect_complete_stream(const std::vector<std::string>& lines,
                            int items) {
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(items));
  std::set<int> values;
  std::set<int> seqs;
  for (const auto& line : lines) {
    int value = 0, seq = 0;
    ASSERT_EQ(sscanf(line.c_str(), "item %d %d", &value, &seq), 2) << line;
    values.insert(value);
    seqs.insert(seq);
  }
  // Every item came through exactly once (doubled by the filter), and the
  // filter's sequence numbers form 1..items with no gap: its `seen`
  // counter survived the replacement.
  for (int i = 1; i <= items; ++i) {
    EXPECT_TRUE(values.contains(2 * i)) << "missing item " << i;
    EXPECT_TRUE(seqs.contains(i)) << "sequence gap at " << i;
  }
}

TEST(Pipeline, AllItemsFlowWithoutReconfiguration) {
  const int items = 40;
  auto rt = make_pipeline(items);
  ASSERT_TRUE(rt->run_until(
      [&] { return sink_output(*rt).size() >= static_cast<std::size_t>(items); },
      10'000'000));
  rt->check_faults();
  expect_complete_stream(sink_output(*rt), items);
  EXPECT_EQ(rt->bus().stats().messages_dropped_unbound, 0u);
}

TEST(Pipeline, MigrateFilterUnderLoadLosesNothing) {
  const int items = 60;
  auto rt = make_pipeline(items);
  // Let roughly a third through, then migrate the filter cross-machine
  // while the feeder keeps pushing.
  ASSERT_TRUE(rt->run_until(
      [&] { return sink_output(*rt).size() >= 20; }, 10'000'000));
  auto report = reconfig::move_module(*rt, "filter", "sparc");
  EXPECT_EQ(rt->bus().module_info(report.new_instance).machine, "sparc");
  ASSERT_TRUE(rt->run_until(
      [&] { return sink_output(*rt).size() >= static_cast<std::size_t>(items); },
      10'000'000));
  rt->check_faults();
  expect_complete_stream(sink_output(*rt), items);
}

TEST(Pipeline, QueuedBacklogMovesWithTheModule) {
  // A feeder that fires bursts of 10 with a pause between them: when the
  // filter is replaced a couple of items into a burst, the rest of the
  // burst is queued at (or in flight toward) the old instance and must be
  // swept to the clone -- the "cap" commands plus the drain window.
  const int items = 30;
  auto rt = std::make_unique<Runtime>(5);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::pipeline_config_text());
  rt->load_application(
      config, "pipeline", [&](const cfg::ModuleSpec& spec) -> std::string {
        if (spec.name == "feeder") {
          return R"(
void main() {
  int i;
  i = 1;
  while (i <= )" + std::to_string(items) + R"() {
    mh_write("out", "i", i);
    if (i % 10 == 0) { sleep(2); }
    i = i + 1;
  }
  print("feeder-done");
}
)";
        }
        if (spec.name == "filter") {
          return app::samples::pipeline_filter_source();
        }
        return app::samples::pipeline_sink_source();
      });
  // Slow the scheduler down so the replacement lands inside a burst: wait
  // until the sink saw the first couple of items of burst one.
  rt->set_slice(60);
  ASSERT_TRUE(rt->run_until(
      [&] { return sink_output(*rt).size() >= 2; }, 10'000'000));
  auto report = reconfig::replace_module(*rt, "filter");
  EXPECT_GT(report.queued_messages_moved, 0u);
  ASSERT_TRUE(rt->run_until(
      [&] { return sink_output(*rt).size() >= static_cast<std::size_t>(items); },
      10'000'000));
  rt->check_faults();
  expect_complete_stream(sink_output(*rt), items);
}

TEST(Pipeline, BackToBackReplacements) {
  const int items = 50;
  auto rt = make_pipeline(items);
  std::string filter = "filter";
  for (std::size_t threshold : {10u, 20u, 30u}) {
    ASSERT_TRUE(rt->run_until(
        [&] { return sink_output(*rt).size() >= threshold; }, 10'000'000));
    auto report = reconfig::move_module(
        *rt, filter,
        rt->bus().module_info(filter).machine == "vax" ? "sparc" : "vax");
    filter = report.new_instance;
  }
  ASSERT_TRUE(rt->run_until(
      [&] { return sink_output(*rt).size() >= static_cast<std::size_t>(items); },
      10'000'000));
  rt->check_faults();
  expect_complete_stream(sink_output(*rt), items);
}

class PipelineJitterSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineJitterSweep, MigrationUnderJitterLosesNothing) {
  // Network jitter reorders deliveries relative to the no-jitter schedule;
  // the migration must still lose nothing, for any seed.
  const int items = 40;
  auto rt = std::make_unique<Runtime>(GetParam());
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  net::LatencyModel model;
  model.local_us = 15;
  model.remote_us = 2500;
  model.remote_jitter_us = 2000;
  rt->simulator().set_latency_model(model);
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::pipeline_config_text());
  rt->load_application(config, "pipeline",
                       [&](const cfg::ModuleSpec& spec) {
                         if (spec.name == "feeder") {
                           return app::samples::pipeline_source_source(items);
                         }
                         if (spec.name == "filter") {
                           return app::samples::pipeline_filter_source();
                         }
                         return app::samples::pipeline_sink_source();
                       });
  ASSERT_TRUE(rt->run_until(
      [&] { return sink_output(*rt).size() >= 10; }, 10'000'000));
  auto report = reconfig::move_module(*rt, "filter", "sparc");
  (void)report;
  ASSERT_TRUE(rt->run_until(
      [&] { return sink_output(*rt).size() >= static_cast<std::size_t>(items); },
      10'000'000));
  rt->check_faults();
  expect_complete_stream(sink_output(*rt), items);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineJitterSweep,
                         ::testing::Range<std::uint64_t>(50, 60));

TEST(Pipeline, ReplicaSeesTrafficAfterReplication) {
  const int items = 40;
  auto rt = make_pipeline(items);
  ASSERT_TRUE(rt->run_until(
      [&] { return sink_output(*rt).size() >= 10; }, 10'000'000));
  auto report = reconfig::replicate_module(*rt, "filter", "sparc");
  EXPECT_GT(rt->machine_of(report.replica_instance)->decode_count(), 0u);
  // Drain the whole stream: run until the feeder finished and every queue
  // emptied (both filters fan out to the sink, so line counts exceed
  // `items`; only full drainage gives a stable picture).
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("feeder"); }, 20'000'000));
  rt->run_until_idle(20'000'000);
  rt->check_faults();
  // The sink now receives duplicates (two filters); every original value
  // must still be present.
  std::set<int> values;
  for (const auto& line : sink_output(*rt)) {
    int value = 0, seq = 0;
    ASSERT_EQ(sscanf(line.c_str(), "item %d %d", &value, &seq), 2);
    values.insert(value);
  }
  for (int i = 1; i <= items; ++i) {
    EXPECT_TRUE(values.contains(2 * i)) << "missing item " << i;
  }
}

}  // namespace
}  // namespace surgeon
