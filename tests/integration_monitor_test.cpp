// F1 / F5: the paper's Monitor example, end to end. Three modules on two
// machines; the compute module is moved to the other machine while it is
// executing (Figure 1), driven by the parameterized replacement script
// (Figure 5). The application keeps producing correct averages.
#include <gtest/gtest.h>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "reconfig/scripts.hpp"

namespace surgeon {
namespace {

using app::Runtime;
using app::samples::monitor_config_text;
using app::samples::monitor_source_of;

std::unique_ptr<Runtime> make_monitor(std::uint64_t seed = 1) {
  auto rt = std::make_unique<Runtime>(seed);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  net::LatencyModel model;
  model.local_us = 20;
  model.remote_us = 3000;
  rt->simulator().set_latency_model(model);
  cfg::ConfigFile config = cfg::parse_config(monitor_config_text());
  rt->load_application(config, "monitor", monitor_source_of);
  return rt;
}

std::size_t display_lines(Runtime& rt, const std::string& name = "display") {
  vm::Machine* m = rt.machine_of(name);
  return m == nullptr ? 0 : m->output().size();
}

TEST(Monitor, RunsWithoutReconfiguration) {
  auto rt = make_monitor();
  rt->run_for(30'000'000);  // 30 virtual seconds
  rt->check_faults();
  vm::Machine* display = rt->machine_of("display");
  ASSERT_NE(display, nullptr);
  // One request every ~2s (plus service time): at least 5 averages in 30s.
  EXPECT_GE(display->output().size(), 5u);
  for (const auto& line : display->output()) {
    // Averages of values in [15, 24].
    double avg = std::stod(line.substr(line.find(' ') + 1));
    EXPECT_GE(avg, 15.0);
    EXPECT_LE(avg, 24.0);
  }
  // Sensor messages flow cross-machine.
  EXPECT_GT(rt->bus().stats().messages_delivered, 10u);
}

TEST(Monitor, MoveComputeWhileExecuting) {
  auto rt = make_monitor();
  rt->run_for(9'000'000);
  rt->check_faults();
  std::size_t lines_before = display_lines(*rt);

  // Figure 1: move compute from vax to sparc while the application runs.
  reconfig::ReplaceReport report =
      reconfig::move_module(*rt, "compute", "sparc");
  EXPECT_EQ(report.old_instance, "compute");
  EXPECT_FALSE(rt->bus().has_module("compute"));
  ASSERT_TRUE(rt->bus().has_module(report.new_instance));
  EXPECT_EQ(rt->bus().module_info(report.new_instance).machine, "sparc");
  EXPECT_EQ(rt->bus().module_info(report.new_instance).status, "clone");

  // The state moved as one abstract buffer with the AR stack inside:
  // at least main's frame and one compute frame.
  EXPECT_GE(report.state_frames, 2u);
  EXPECT_GT(report.state_bytes, 0u);
  EXPECT_GT(report.total_delay(), 0u);

  // The application continues: display keeps printing fresh averages.
  rt->run_for(30'000'000);
  rt->check_faults();
  EXPECT_GT(display_lines(*rt), lines_before + 3);

  // Bindings were rewired: old name gone, new instance bound to both peers.
  auto peers = rt->bus().bound_peers({report.new_instance, "display"});
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].module, "display");
}

TEST(Monitor, MoveCapturesRecursionInProgress) {
  // Force the capture to happen mid-recursion: wait until compute is
  // observably deep inside a 4-value averaging request (blocked on the
  // sensor read at R with several activation records below), then move it.
  // A variant monitor whose display asks for 8-value averages: the sensor
  // (1 value/s) cannot keep up, so compute reliably blocks deep inside the
  // recursion at R waiting for more values.
  auto rt = std::make_unique<Runtime>(1);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config = cfg::parse_config(monitor_config_text());
  rt->load_application(config, "monitor", [](const cfg::ModuleSpec& spec) {
    std::string src = monitor_source_of(spec);
    if (spec.name == "display") {
      auto pos = src.find("n = 4;");
      src.replace(pos, 6, "n = 8;");
    }
    return src;
  });
  // Small scheduling slices so the stack depth is observable mid-request
  // (with large slices a whole averaging request can finish in one slice
  // whenever enough sensor values are already queued).
  rt->set_slice(40);
  ASSERT_TRUE(rt->run_until(
      [&] {
        vm::Machine* compute = rt->machine_of("compute");
        // Deep in the recursion AND parked on the sensor read at R: the
        // next sensor value is up to a virtual second away, so the signal
        // (microseconds) reaches the module before the recursion unwinds.
        return compute != nullptr && compute->stack_depth() >= 4 &&
               compute->state() == vm::RunState::kBlockedRead;
      },
      10'000'000));
  rt->check_faults();
  reconfig::ReplaceReport report =
      reconfig::move_module(*rt, "compute", "sparc");
  // The signal lands while the recursion is still several frames deep, so
  // the abstract state carries main plus multiple compute records.
  EXPECT_GE(report.state_frames, 3u)
      << "capture did not happen inside the recursion";
  rt->run_for(20'000'000);
  rt->check_faults();
}

TEST(Monitor, RepeatedMigrationsPingPong) {
  auto rt = make_monitor();
  rt->run_for(5'000'000);
  std::string instance = "compute";
  const char* machines[] = {"sparc", "vax", "sparc", "vax"};
  for (const char* target : machines) {
    auto report = reconfig::move_module(*rt, instance, target);
    instance = report.new_instance;
    EXPECT_EQ(rt->bus().module_info(instance).machine, target);
    rt->run_for(8'000'000);
    rt->check_faults();
  }
  EXPECT_EQ(instance, "compute@5");
  EXPECT_GT(display_lines(*rt), 8u);
}

TEST(Monitor, ReplacementScriptReportsTimings) {
  auto rt = make_monitor();
  rt->run_for(3'000'000);
  auto report = reconfig::move_module(*rt, "compute", "sparc");
  EXPECT_LE(report.requested_at, report.divulged_at);
  EXPECT_LE(report.divulged_at, report.rebound_at);
  EXPECT_LE(report.rebound_at, report.completed_at);
  EXPECT_GT(report.reaction_delay(), 0u);
}

TEST(Monitor, MhStatsExposesTheReplacementTimeline) {
  // The acceptance scenario for the observability subsystem: a full move
  // with metrics enabled yields per-step spans for all seven Figure 5
  // phases, queryable from any module through mh_stats in both formats.
  auto rt = make_monitor();
  rt->enable_metrics();
  rt->run_for(9'000'000);
  auto report = reconfig::move_module(*rt, "compute", "sparc");
  rt->run_for(5'000'000);
  rt->check_faults();

  bus::Client client(rt->bus(), "display");
  std::string prom = client.mh_stats("prometheus");
  std::string json = client.mh_stats("json");
  for (const char* step : reconfig::kFigure5Steps) {
    EXPECT_NE(prom.find("surgeon_reconfig_step_us_bucket{step=\"" +
                        std::string(step) + "\""),
              std::string::npos)
        << step;
    EXPECT_NE(json.find("\"name\":\"" + std::string(step) +
                        "\",\"scope\":\"compute\""),
              std::string::npos)
        << step;
  }
  // Bus and VM instrumentation fed the same registry.
  EXPECT_NE(prom.find("surgeon_bus_messages_delivered_total"),
            std::string::npos);
  EXPECT_NE(prom.find("surgeon_vm_instructions_total"), std::string::npos);
  EXPECT_GT(rt->metrics().counter_value(
                "surgeon_vm_instructions_total",
                {{"module", report.new_instance}}),
            0u);
  EXPECT_GT(rt->metrics().counter_value("surgeon_bus_state_bytes_total"),
            0u);
  // The clone's restore is visible: it consumed as many frames as the old
  // instance captured into the moved state.
  EXPECT_EQ(rt->metrics().gauge_value("surgeon_vm_restore_frames",
                                      {{"module", report.new_instance}}),
            static_cast<std::int64_t>(report.state_frames));
}

TEST(Monitor, UnknownModuleRejected) {
  auto rt = make_monitor();
  EXPECT_THROW(reconfig::move_module(*rt, "nosuch", "sparc"),
               reconfig::ScriptError);
}

TEST(Monitor, DeterministicAcrossIdenticalRuns) {
  auto rt1 = make_monitor(7);
  auto rt2 = make_monitor(7);
  rt1->run_for(12'000'000);
  rt2->run_for(12'000'000);
  ASSERT_NE(rt1->machine_of("display"), nullptr);
  EXPECT_EQ(rt1->machine_of("display")->output(),
            rt2->machine_of("display")->output());
  EXPECT_EQ(rt1->now(), rt2->now());
}

}  // namespace
}  // namespace surgeon
