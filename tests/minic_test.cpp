#include <gtest/gtest.h>

#include "minic/lexer.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "minic/sema.hpp"

namespace surgeon::minic {
namespace {

using support::ParseError;
using support::SemaError;

Program parsed(std::string_view src) {
  Program p = parse_program(src);
  analyze(p);
  return p;
}

// --- lexer ---------------------------------------------------------------------

TEST(Lexer, TokenizesOperatorsGreedily) {
  auto tokens = lex("== = != ! <= < >= > && & || :");
  std::vector<TokKind> kinds;
  for (const auto& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokKind>{
                       TokKind::kEq, TokKind::kAssign, TokKind::kNe,
                       TokKind::kBang, TokKind::kLe, TokKind::kLt,
                       TokKind::kGe, TokKind::kGt, TokKind::kAndAnd,
                       TokKind::kAmp, TokKind::kOrOr, TokKind::kColon,
                       TokKind::kEof}));
}

TEST(Lexer, NumbersIntAndReal) {
  auto tokens = lex("42 3.5 1e3 2.5e-2");
  EXPECT_EQ(tokens[0].kind, TokKind::kIntLit);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokKind::kRealLit);
  EXPECT_DOUBLE_EQ(tokens[1].real_value, 3.5);
  EXPECT_DOUBLE_EQ(tokens[2].real_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].real_value, 0.025);
}

TEST(Lexer, StringsWithEscapes) {
  auto tokens = lex(R"("a\nb\"c\\d")");
  EXPECT_EQ(tokens[0].text, "a\nb\"c\\d");
}

TEST(Lexer, KeywordsVsIdentifiers) {
  auto tokens = lex("int intx if iffy");
  EXPECT_EQ(tokens[0].kind, TokKind::kKwInt);
  EXPECT_EQ(tokens[1].kind, TokKind::kIdent);
  EXPECT_EQ(tokens[2].kind, TokKind::kKwIf);
  EXPECT_EQ(tokens[3].kind, TokKind::kIdent);
}

TEST(Lexer, DoubleIsFloatAlias) {
  EXPECT_EQ(lex("double")[0].kind, TokKind::kKwFloat);
}

TEST(Lexer, CommentsSkipped) {
  auto tokens = lex("a // line\n /* block\n */ b");
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].loc.line, 3u);
}

TEST(Lexer, ErrorsOnBadInput) {
  EXPECT_THROW(lex("\"unterminated"), ParseError);
  EXPECT_THROW(lex("/* unterminated"), ParseError);
  EXPECT_THROW(lex("a $ b"), ParseError);
  EXPECT_THROW(lex("a | b"), ParseError);
}

// --- parser --------------------------------------------------------------------

TEST(Parser, FunctionAndGlobalStructure) {
  Program p = parsed(R"(
int counter = 0;
float scale = 1.5;

int add(int a, int b) { return a + b; }

void main() { int x; x = add(1, 2); }
)");
  ASSERT_EQ(p.globals.size(), 2u);
  EXPECT_EQ(p.globals[1].name, "scale");
  ASSERT_EQ(p.functions.size(), 2u);
  EXPECT_EQ(p.functions[0]->params.size(), 2u);
  EXPECT_EQ(p.functions[0]->return_type, kIntType);
  EXPECT_EQ(p.function_index("main"), 1u);
}

TEST(Parser, PointerTypesAndOperations) {
  Program p = parsed(R"(
void f(float *rp) { *rp = *rp + 1.0; }
void main() { float x; x = 0.0; f(&x); }
)");
  EXPECT_EQ(p.functions[0]->params[0].type, (Type{BaseType::kReal, true}));
}

TEST(Parser, LabelsAndGoto) {
  Program p = parsed(R"(
void main() {
  int i;
  i = 0;
L1:
  i = i + 1;
  if (i < 3) goto L1;
}
)");
  (void)p;
}

TEST(Parser, CastVsParenthesizedExpression) {
  Program p = parsed(R"(
void main() {
  int a; float b;
  a = 3;
  b = (float)a / (float)(a + 1);
  a = (int)b;
  a = (a);
}
)");
  (void)p;
}

TEST(Parser, PrecedenceShape) {
  ExprPtr e = parse_expression("1 + 2 * 3 == 7 && !0");
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(static_cast<BinaryExpr&>(*e).op, BinaryOp::kAnd);
  EXPECT_EQ(print_expr(*e), "1 + 2 * 3 == 7 && !0");
}

TEST(Parser, EmptyStatement) {
  Program p = parsed("void main() { ; L: ; }");
  (void)p;
}

TEST(Parser, IndexingParses) {
  Program p = parsed(R"(
void main() {
  int* v;
  v = mh_alloc_int(4);
  v[0] = 5;
  v[1] = v[0] + 1;
  mh_free(v);
}
)");
  (void)p;
}

TEST(Parser, ForLoops) {
  Program p = parsed(R"(
void main() {
  int sum;
  sum = 0;
  for (int i = 0; i < 10; i = i + 1) { sum = sum + i; }
  for (sum = 0; sum < 5; sum = sum + 1) ;
  for (; sum < 10;) { sum = sum + 1; }
  for (;;) { break; }
  for (print(1); 1; print(2)) { break; }
}
)");
  (void)p;
}

TEST(Parser, BreakContinue) {
  Program p = parsed(R"(
void main() {
  int i;
  for (i = 0; i < 10; i = i + 1) {
    if (i == 3) { continue; }
    if (i == 7) { break; }
  }
  while (1) { break; }
}
)");
  (void)p;
}

TEST(Parser, ForHeaderRejectsNonStatements) {
  EXPECT_THROW((void)parse_program("void main() { for (1 + 2; 1; ) {} }"),
               ParseError);
}

TEST(Parser, Errors) {
  EXPECT_THROW((void)parse_program("void main() { int; }"), ParseError);
  EXPECT_THROW((void)parse_program("void main() { x = ; }"), ParseError);
  EXPECT_THROW((void)parse_program("void main() {"), ParseError);
  EXPECT_THROW((void)parse_program("void f(void x) {}"), ParseError);
  EXPECT_THROW((void)parse_program("int g = 1"), ParseError);
}

// --- sema ----------------------------------------------------------------------

TEST(Sema, RequiresMain) {
  Program p = parse_program("int f() { return 1; }");
  EXPECT_THROW(analyze(p), SemaError);
  SemaOptions opts;
  opts.require_main = false;
  analyze(p, opts);  // fine as a fragment
}

TEST(Sema, ResolvesStorageClasses) {
  Program p = parsed(R"(
int g;
void f(int a) { int l; l = a + g; }
void main() { f(1); }
)");
  // The assignment l = a + g references all three storage classes; walk to
  // the binary expr and check resolution.
  auto& f = *p.functions[0];
  auto& assign = static_cast<AssignStmt&>(*f.body->stmts[1]);
  auto& target = static_cast<VarExpr&>(*assign.target);
  EXPECT_EQ(target.storage, VarStorage::kLocal);
  auto& bin = static_cast<BinaryExpr&>(*assign.value);
  EXPECT_EQ(static_cast<VarExpr&>(*bin.lhs).storage, VarStorage::kParam);
  EXPECT_EQ(static_cast<VarExpr&>(*bin.rhs).storage, VarStorage::kGlobal);
}

TEST(Sema, LocalsHaveFunctionScope) {
  // A restore block at the top of a function references locals declared
  // later in the body; MiniC gives locals function scope.
  Program p = parsed(R"(
void main() {
  x = 5;
  int x;
}
)");
  (void)p;
}

struct BadProgram {
  const char* name;
  const char* source;
};

class SemaErrors : public ::testing::TestWithParam<BadProgram> {};

TEST_P(SemaErrors, Rejected) {
  Program p = parse_program(GetParam().source);
  EXPECT_THROW(analyze(p), SemaError) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SemaErrors,
    ::testing::Values(
        BadProgram{"undefined_var", "void main() { x = 1; }"},
        BadProgram{"undefined_fn", "void main() { f(); }"},
        BadProgram{"dup_local", "void main() { int a; int a; }"},
        BadProgram{"dup_param", "void f(int a, int a) {} void main() {}"},
        BadProgram{"dup_global", "int g; int g; void main() {}"},
        BadProgram{"dup_fn", "void f() {} void f() {} void main() {}"},
        BadProgram{"dup_label", "void main() { L: ; L: ; }"},
        BadProgram{"goto_nowhere", "void main() { goto L; }"},
        BadProgram{"arity", "void f(int a) {} void main() { f(); }"},
        BadProgram{"arg_type", "void f(int a) {} void main() { f(\"s\"); }"},
        BadProgram{"real_to_int", "void main() { int a; a = 1.5; }"},
        BadProgram{"void_var", "void main() { void v; }"},
        BadProgram{"assign_fn", "void f() {} void main() { f = 1; }"},
        BadProgram{"deref_int", "void main() { int a; a = *a; }"},
        BadProgram{"addr_of_expr", "void main() { int* p; p = &(1); }"},
        BadProgram{"addr_of_ptr",
                   "void main() { int* p; int x; p = &x; p = &p; }"},
        BadProgram{"ptr_arith",
                   "void main() { int* p; int x; p = &x; x = p + 1; }"},
        BadProgram{"mod_floats", "void main() { float f; f = 1.5 % 2.0; }"},
        BadProgram{"string_minus",
                   "void main() { string s; s = \"a\" - \"b\"; }"},
        BadProgram{"cast_string", "void main() { int a; a = (int)\"s\"; }"},
        BadProgram{"cond_string", "void main() { if (\"s\") { ; } }"},
        BadProgram{"void_return_value", "void main() { return 1; }"},
        BadProgram{"missing_return_value",
                   "int f() { return; } void main() {}"},
        BadProgram{"main_with_params", "void main(int a) {}"},
        BadProgram{"shadow_builtin", "void sleep() {} void main() {}"},
        BadProgram{"global_shadows_builtin", "int print; void main() {}"},
        BadProgram{"read_fmt_not_literal",
                   "void main() { int x; string f; f = \"i\"; "
                   "mh_read(\"a\", f, &x); }"},
        BadProgram{"read_target_count",
                   "void main() { int x; mh_read(\"a\", \"ii\", &x); }"},
        BadProgram{"read_target_type",
                   "void main() { float x; mh_read(\"a\", \"i\", &x); }"},
        BadProgram{"read_target_not_ptr",
                   "void main() { int x; mh_read(\"a\", \"i\", x); }"},
        BadProgram{"write_value_type",
                   "void main() { mh_write(\"a\", \"i\", \"str\"); }"},
        BadProgram{"capture_bad_fmt",
                   "void main() { mh_capture(\"zz\", 1, 2); }"},
        BadProgram{"signal_not_function",
                   "void main() { int h; mh_signal(h); }"},
        BadProgram{"signal_handler_with_params",
                   "void h(int x) {} void main() { mh_signal(h); }"},
        BadProgram{"restore_ptr_target_not_addr",
                   "void main() { int x; mh_restore(\"p\", &x); }"},
        BadProgram{"break_outside_loop", "void main() { break; }"},
        BadProgram{"continue_outside_loop",
                   "void main() { if (1) { continue; } }"},
        BadProgram{"break_after_loop",
                   "void main() { while (0) { ; } break; }"},
        BadProgram{"for_cond_string",
                   "void main() { for (; \"s\"; ) { break; } }"}),
    [](const ::testing::TestParamInfo<BadProgram>& info) {
      return info.param.name;
    });

TEST(Sema, BuiltinSignaturesAccepted) {
  Program p = parsed(R"(
void handler() { }
void main() {
  int i; float f; string s; int* hp;
  mh_write("a", "iFs", 1, 2.5, "x");
  mh_write("a", "F", i);
  if (mh_query_ifmsgs("a")) { mh_read("a", "iF", &i, &f); }
  mh_capture("iF", i, f);
  mh_restore("iF", &i, &f);
  hp = mh_alloc_int(3);
  mh_capture("p", hp);
  mh_restore("p", &hp);
  mh_encode();
  mh_decode();
  s = mh_getstatus();
  s = mh_self();
  mh_signal(handler);
  sleep(1);
  print("x", i, f, s);
  i = random(10);
  i = clock();
  i = mh_peek_location();
  mh_free(hp);
}
)");
  (void)p;
}

// --- printer ---------------------------------------------------------------------

TEST(Printer, RoundTripPreservesSemantics) {
  const char* src = R"(
int g = 3;

void helper(int a, float *out)
{
  int t;
  t = a * 2;
  if (t > 4) { *out = (float)t; }
  else { *out = 0.5; }
  while (t > 0) { t = t - 1; }
L:
  ;
  goto L2;
L2:
  *out = *out + 1.0;
}

void main()
{
  float r;
  helper(g, &r);
  print(r);
}
)";
  Program p1 = parsed(src);
  std::string text1 = print_program(p1);
  Program p2 = parsed(text1);
  std::string text2 = print_program(p2);
  // Printing is a fixpoint: parse(print(p)) prints identically.
  EXPECT_EQ(text1, text2);
}

TEST(Printer, ForLoopRoundTrip) {
  Program p1 = parsed(R"(
void main() {
  int sum;
  sum = 0;
  for (int i = 0; i < 10; i = i + 1) {
    if (i == 3) continue;
    if (i == 8) break;
    sum = sum + i;
  }
  for (;;) { break; }
  print(sum);
}
)");
  std::string text1 = print_program(p1);
  EXPECT_NE(text1.find("for (int i = 0; i < 10; i = i + 1)"),
            std::string::npos)
      << text1;
  EXPECT_NE(text1.find("for (; ; )"), std::string::npos) << text1;
  EXPECT_NE(text1.find("continue;"), std::string::npos);
  EXPECT_NE(text1.find("break;"), std::string::npos);
  Program p2 = parsed(text1);
  EXPECT_EQ(print_program(p2), text1);
}

TEST(Printer, RealLiteralsStayReal) {
  Program p = parsed("void main() { float f; f = 2.0; f = 1.25; }");
  std::string text = print_program(p);
  EXPECT_NE(text.find("2.0"), std::string::npos);
  EXPECT_NE(text.find("1.25"), std::string::npos);
}

TEST(Printer, ParenthesizesByPrecedence) {
  ExprPtr e = parse_expression("(1 + 2) * 3");
  EXPECT_EQ(print_expr(*e), "(1 + 2) * 3");
  ExprPtr e2 = parse_expression("1 + 2 * 3");
  EXPECT_EQ(print_expr(*e2), "1 + 2 * 3");
  ExprPtr e3 = parse_expression("-(1 + 2)");
  EXPECT_EQ(print_expr(*e3), "-(1 + 2)");
}

TEST(Printer, BannersForTransformedStatements) {
  Program p = parsed("void main() { int x; x = 1; }");
  p.functions[0]->body->stmts[1]->xform_note = "capture";
  std::string text = print_program(p);
  EXPECT_NE(text.find("begin capture"), std::string::npos);
  EXPECT_NE(text.find("end capture"), std::string::npos);
}

// --- clone ------------------------------------------------------------------------

TEST(Ast, CloneExprDeepCopies) {
  ExprPtr e = parse_expression("f(a + 1, &b, (float)c[2])");
  ExprPtr c = clone_expr(*e);
  EXPECT_EQ(print_expr(*e), print_expr(*c));
  // Mutating the clone leaves the original alone.
  static_cast<CallExpr&>(*c).args.clear();
  EXPECT_NE(print_expr(*e), print_expr(*c));
}

}  // namespace
}  // namespace surgeon::minic
