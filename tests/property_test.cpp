// Property-style sweeps over the system's key invariants:
//  (1) serialize round trips for arbitrary generated states,
//  (2) transformation transparency: transformed == original behaviour,
//  (3) migration safety at randomized interrupt points and workloads,
//  (4) counter app correctness for random request sequences with a
//      replacement injected at a random moment.
#include <gtest/gtest.h>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "reconfig/scripts.hpp"
#include "support/rng.hpp"
#include "vm/compiler.hpp"
#include "xform/transform.hpp"

namespace surgeon {
namespace {

using support::SplitMix64;

// --- (1) serialize round trip -------------------------------------------------

ser::Value random_value(SplitMix64& rng, bool allow_pointer) {
  switch (rng.next_below(allow_pointer ? 4 : 3)) {
    case 0:
      return ser::Value(static_cast<std::int64_t>(rng.next()));
    case 1:
      return ser::Value(rng.next_double() * 1e6 - 5e5);
    case 2: {
      std::string s;
      auto len = rng.next_below(32);
      for (std::uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng.next_below(26)));
      }
      return ser::Value(std::move(s));
    }
    default:
      return ser::Value(
          ser::AbstractPointer{rng.next_below(100), rng.next_below(16)});
  }
}

class StateRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StateRoundTrip, EncodeDecodeIsIdentity) {
  SplitMix64 rng(GetParam());
  ser::StateBuffer sb;
  auto nframes = 1 + rng.next_below(20);
  for (std::uint64_t f = 0; f < nframes; ++f) {
    ser::StateFrame frame;
    auto nvalues = rng.next_below(12);
    for (std::uint64_t v = 0; v < nvalues; ++v) {
      frame.values.push_back(random_value(rng, true));
    }
    sb.push_frame(std::move(frame));
  }
  auto nheap = rng.next_below(6);
  for (std::uint64_t h = 0; h < nheap; ++h) {
    std::vector<ser::Value> cells;
    auto ncells = rng.next_below(8);
    for (std::uint64_t c = 0; c < ncells; ++c) {
      cells.push_back(random_value(rng, true));
    }
    sb.put_heap_object(h + 1, std::move(cells));
  }
  EXPECT_EQ(ser::StateBuffer::decode(sb.encode()), sb);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 25));

// --- (2)+(3) transformation transparency and migration safety ------------------

/// A parameterized worker whose behaviour depends on arithmetic, globals,
/// heap, and recursion depth -- all the state classes of Section 1.2.
std::string sweep_source(int rounds, int depth, int heap_cells) {
  return R"(
int acc = 0;
int* table;

void work(int n, int *out) {
  if (n <= 0) { *out = acc; return; }
  work(n - 1, out);
RP:
  acc = acc + n * n;
  table[n % )" +
         std::to_string(heap_cells) + R"(] = acc;
  *out = acc + table[0];
}

void main() {
  int r;
  int round;
  table = mh_alloc_int()" +
         std::to_string(heap_cells) + R"();
  round = 0;
  while (round < )" +
         std::to_string(rounds) + R"() {
    work()" +
         std::to_string(depth) + R"(, &r);
    print(round, r);
    round = round + 1;
  }
}
)";
}

std::vector<std::string> plain_run(const std::string& src) {
  minic::Program prog = minic::parse_program(src);
  minic::analyze(prog);
  auto compiled = vm::compile(prog);
  vm::Machine m(compiled, net::arch_vax());
  (void)m.step(100'000'000);
  EXPECT_EQ(m.state(), vm::RunState::kDone) << m.fault_message();
  return m.output();
}

struct SweepCase {
  int rounds;
  int depth;
  int heap_cells;
  std::uint64_t signal_after;
};

class MigrationSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MigrationSweep, MigratedRunMatchesPlainRun) {
  const SweepCase& c = GetParam();
  std::string src = sweep_source(c.rounds, c.depth, c.heap_cells);
  auto reference = plain_run(src);

  minic::Program prog = minic::parse_program(src);
  minic::analyze(prog);
  xform::prepare_module(prog, {cfg::ReconfigPointSpec{"RP", {}, {}}});
  auto compiled = std::make_shared<vm::CompiledProgram>(vm::compile(prog));

  vm::Machine old_machine(*compiled, net::arch_vax());
  (void)old_machine.step(c.signal_after);
  old_machine.raise_signal();
  (void)old_machine.step(100'000'000);
  ASSERT_EQ(old_machine.state(), vm::RunState::kDone)
      << old_machine.fault_message();

  std::vector<std::string> combined = old_machine.output();
  if (old_machine.last_encoded_state().has_value()) {
    vm::Machine clone(*compiled, net::arch_sparc());
    clone.set_standalone_status("clone");
    clone.inject_incoming_state(*old_machine.last_encoded_state());
    (void)clone.step(100'000'000);
    ASSERT_EQ(clone.state(), vm::RunState::kDone) << clone.fault_message();
    combined.insert(combined.end(), clone.output().begin(),
                    clone.output().end());
  }
  EXPECT_EQ(combined, reference);
}

std::vector<SweepCase> make_sweep() {
  std::vector<SweepCase> cases;
  SplitMix64 rng(2026);
  for (int i = 0; i < 24; ++i) {
    SweepCase c;
    c.rounds = 2 + static_cast<int>(rng.next_below(5));
    c.depth = 1 + static_cast<int>(rng.next_below(10));
    c.heap_cells = 2 + static_cast<int>(rng.next_below(6));
    c.signal_after = 5 + rng.next_below(2000);
    cases.push_back(c);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, MigrationSweep,
                         ::testing::ValuesIn(make_sweep()));

// --- (3b) every ordered architecture pair ---------------------------------------

class ArchPairSweep
    : public ::testing::TestWithParam<std::pair<net::Arch, net::Arch>> {};

TEST_P(ArchPairSweep, MigrationWorksBetweenAnyTwoArchitectures) {
  const auto& [from, to] = GetParam();
  std::string src = sweep_source(3, 5, 4);
  auto reference = plain_run(src);

  minic::Program prog = minic::parse_program(src);
  minic::analyze(prog);
  xform::prepare_module(prog, {cfg::ReconfigPointSpec{"RP", {}, {}}});
  auto compiled = std::make_shared<vm::CompiledProgram>(vm::compile(prog));

  vm::Machine old_machine(*compiled, from);
  (void)old_machine.step(120);
  old_machine.raise_signal();
  (void)old_machine.step(100'000'000);
  ASSERT_EQ(old_machine.state(), vm::RunState::kDone)
      << old_machine.fault_message();
  ASSERT_TRUE(old_machine.last_encoded_state().has_value());

  vm::Machine clone(*compiled, to);
  clone.set_standalone_status("clone");
  clone.inject_incoming_state(*old_machine.last_encoded_state());
  (void)clone.step(100'000'000);
  ASSERT_EQ(clone.state(), vm::RunState::kDone) << clone.fault_message();

  std::vector<std::string> combined = old_machine.output();
  combined.insert(combined.end(), clone.output().begin(),
                  clone.output().end());
  EXPECT_EQ(combined, reference)
      << from.name << " -> " << to.name << " migration diverged";
}

std::vector<std::pair<net::Arch, net::Arch>> all_arch_pairs() {
  std::vector<std::pair<net::Arch, net::Arch>> pairs;
  for (const auto& a : net::reference_arches()) {
    for (const auto& b : net::reference_arches()) {
      pairs.emplace_back(a, b);
    }
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ArchPairSweep, ::testing::ValuesIn(all_arch_pairs()),
    [](const ::testing::TestParamInfo<std::pair<net::Arch, net::Arch>>& info) {
      return info.param.first.name + "_to_" + info.param.second.name;
    });

// --- (4) full-application property ---------------------------------------------

class CounterReplaceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CounterReplaceSweep, ReplacementIsInvisibleToTheClient) {
  SplitMix64 rng(GetParam());
  const int requests = 5 + static_cast<int>(rng.next_below(10));
  const std::size_t replace_after = 1 + rng.next_below(
      static_cast<std::uint64_t>(requests) - 1);
  const bool cross_machine = rng.next_below(2) == 1;

  auto build = [&] {
    auto rt = std::make_unique<app::Runtime>(GetParam());
    rt->add_machine("vax", net::arch_vax());
    rt->add_machine("sparc", net::arch_sparc());
    cfg::ConfigFile config =
        cfg::parse_config(app::samples::counter_config_text());
    rt->load_application(config, "counter",
                         [&](const cfg::ModuleSpec& spec) {
                           if (spec.name == "client") {
                             return app::samples::counter_client_source(
                                 requests);
                           }
                           return app::samples::counter_server_source();
                         });
    return rt;
  };

  auto reference_rt = build();
  EXPECT_TRUE(reference_rt->run_until(
      [&] { return reference_rt->module_finished("client"); }, 10'000'000));
  reference_rt->check_faults();
  auto reference = reference_rt->machine_of("client")->output();

  auto rt = build();
  ASSERT_TRUE(rt->run_until(
      [&] {
        return rt->machine_of("client")->output().size() >= replace_after;
      },
      10'000'000));
  reconfig::ReplaceOptions options;
  if (cross_machine) options.machine = "sparc";
  (void)reconfig::replace_module(*rt, "server", options);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
  EXPECT_EQ(rt->machine_of("client")->output(), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterReplaceSweep,
                         ::testing::Range<std::uint64_t>(100, 116));

}  // namespace
}  // namespace surgeon
