// Property/fuzz sweep for the configuration-language parser.
//
// Two corpora, both derived from a seed so every failure is replayable:
//  - generated well-formed configurations, which must parse, and
//  - mutated (corrupted) configurations, which must either parse or throw
//    support::ParseError -- never crash, never hang.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "support/rng.hpp"

namespace surgeon::cfg {
namespace {

class ConfigGenerator {
 public:
  explicit ConfigGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string config() {
    std::string out;
    int modules = 1 + static_cast<int>(rng_.next_below(4));
    for (int i = 0; i < modules; ++i) out += module(i);
    out += application(modules);
    return out;
  }

  /// One random mutation applied to `text`.
  std::string mutate(std::string text) {
    if (text.empty()) return text;
    std::size_t at = rng_.next_below(text.size());
    switch (rng_.next_below(6)) {
      case 0:  // delete a character
        text.erase(at, 1);
        break;
      case 1:  // insert an arbitrary byte
        text.insert(at, 1, random_byte());
        break;
      case 2:  // overwrite with an arbitrary byte
        text[at] = random_byte();
        break;
      case 3:  // truncate (unterminated constructs)
        text.resize(at);
        break;
      case 4: {  // duplicate a chunk (repeated/mismatched tokens)
        std::size_t len = 1 + rng_.next_below(std::min<std::size_t>(
                                  40, text.size() - at));
        text.insert(at, text.substr(at, len));
        break;
      }
      default: {  // splice a keyword mid-stream
        static const char* kTokens[] = {"module", "application", "::", "{",
                                        "}", "\"", "interface", "=", "bind"};
        text.insert(at, kTokens[rng_.next_below(9)]);
        break;
      }
    }
    return text;
  }

 private:
  char random_byte() {
    // Mostly printable (interesting to the lexer), sometimes arbitrary.
    if (rng_.next_below(4) != 0) {
      return static_cast<char>(' ' + rng_.next_below(95));
    }
    return static_cast<char>(rng_.next_below(256));
  }

  std::string ident(const char* stem, int i) {
    return std::string(stem) + std::to_string(i);
  }

  std::string pattern() {
    static const char* kTypes[] = {"integer", "float", "string", "pointer"};
    std::string out = "{";
    int n = 1 + static_cast<int>(rng_.next_below(3));
    for (int i = 0; i < n; ++i) {
      if (i != 0) out += ", ";
      out += kTypes[rng_.next_below(4)];
    }
    return out + "}";
  }

  std::string module(int index) {
    std::string out = "// module " + std::to_string(index) + "\n";
    out += "module " + ident("m", index) + " {\n";
    out += "  source = \"./" + ident("m", index) + ".mc\" ::\n";
    if (rng_.next_below(2) == 0) {
      out += "  machine = \"host" + std::to_string(rng_.next_below(3)) +
             "\" ::\n";
    }
    int ifaces = 1 + static_cast<int>(rng_.next_below(3));
    for (int i = 0; i < ifaces; ++i) {
      static const char* kRoles[] = {"use", "define", "client", "server"};
      const char* role = kRoles[rng_.next_below(4)];
      out += std::string("  ") + role + " interface " + ident("p", i);
      if (std::string(role) == "client") {
        out += " accepts = " + pattern();
      } else if (std::string(role) == "server") {
        out += " returns = " + pattern();
      } else {
        out += " pattern = " + pattern();
      }
      out += " ::\n";
    }
    if (rng_.next_below(2) == 0) {
      out += "  reconfiguration point = {RP}";
      if (rng_.next_below(2) == 0) out += " vars = {x, *y}";
      out += " ::\n";
    }
    out += "}\n";
    return out;
  }

  std::string application(int modules) {
    std::string out = "application app {\n";
    for (int i = 0; i < modules; ++i) {
      out += "  instance " + ident("m", i);
      if (rng_.next_below(2) == 0) out += " as " + ident("inst", i);
      if (rng_.next_below(2) == 0) {
        out += " on \"host" + std::to_string(rng_.next_below(3)) + "\"";
      }
      out += " ::\n";
    }
    if (modules >= 2) {
      out += "  bind \"m0 p0\" \"m1 p0\" ::\n";
    }
    out += "}\n";
    return out;
  }

  support::SplitMix64 rng_;
};

/// Corrupt input must parse or diagnose -- anything but a crash.
void expect_parses_or_diagnoses(const std::string& text,
                                std::uint64_t seed) {
  try {
    (void)parse_config(text);
  } catch (const support::ParseError&) {
    // A diagnostic is a correct answer for corrupt input.
  } catch (const std::exception& e) {
    FAIL() << "seed " << seed << ": non-ParseError exception '" << e.what()
           << "' on input:\n" << text;
  }
}

class WellFormedSweep : public ::testing::TestWithParam<std::uint64_t> {};
class MutationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WellFormedSweep, GeneratedConfigsParse) {
  ConfigGenerator gen(GetParam());
  std::string text = gen.config();
  try {
    ConfigFile file = parse_config(text);
    EXPECT_FALSE(file.modules.empty()) << text;
    EXPECT_FALSE(file.applications.empty()) << text;
  } catch (const support::ParseError& e) {
    FAIL() << "seed " << GetParam() << ": well-formed config rejected: "
           << e.what() << "\n" << text;
  }
}

TEST_P(MutationSweep, CorruptConfigsNeverCrash) {
  ConfigGenerator gen(GetParam());
  // Corrupt both a generated config and the real sample configs.
  std::string generated = gen.config();
  for (const std::string& base : {
           generated,
           app::samples::monitor_config_text(),
           app::samples::counter_config_text(),
           app::samples::pipeline_config_text(),
       }) {
    std::string text = base;
    int rounds = 1 + static_cast<int>(GetParam() % 5);
    for (int i = 0; i < rounds; ++i) {
      text = gen.mutate(std::move(text));
      expect_parses_or_diagnoses(text, GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WellFormedSweep,
                         ::testing::Range<std::uint64_t>(1, 101));
INSTANTIATE_TEST_SUITE_P(Seeds, MutationSweep,
                         ::testing::Range<std::uint64_t>(1, 151));

}  // namespace
}  // namespace surgeon::cfg
