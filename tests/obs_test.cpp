// Unit tests of the observability subsystem: counter/gauge/histogram
// semantics, label canonicalization, span recording over the virtual
// clock, the exporters (including the Prometheus golden file), the bus
// instrumentation hooks, mh_stats, and the bounded trace ring.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "app/runtime.hpp"
#include "bus/bus.hpp"
#include "bus/client.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "support/diag.hpp"

namespace surgeon::obs {
namespace {

TEST(Metrics, CounterAndGaugeSemantics) {
  MetricsRegistry reg;
  reg.counter("c").inc();
  reg.counter("c").inc(41);
  EXPECT_EQ(reg.counter_value("c"), 42u);
  EXPECT_EQ(reg.counter_value("never_touched"), 0u);

  reg.gauge("g").set(7);
  reg.gauge("g").add(-10);
  EXPECT_EQ(reg.gauge_value("g"), -3);
}

TEST(Metrics, LabelsAreCanonicalized) {
  MetricsRegistry reg;
  // The same label set in any order names the same series.
  reg.counter("c", {{"b", "2"}, {"a", "1"}}).inc();
  reg.counter("c", {{"a", "1"}, {"b", "2"}}).inc();
  EXPECT_EQ(reg.counter_value("c", {{"a", "1"}, {"b", "2"}}), 2u);
  // A different value is a different series.
  EXPECT_EQ(reg.counter_value("c", {{"a", "1"}, {"b", "3"}}), 0u);
}

TEST(Metrics, HistogramBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {}, {10, 100, 1000});
  h.observe(5);     // <= 10
  h.observe(10);    // <= 10 (bounds are inclusive)
  h.observe(50);    // <= 100
  h.observe(5000);  // +Inf
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5065u);
  // Repeated lookup returns the same histogram (bounds ignored after the
  // first call).
  EXPECT_EQ(&reg.histogram("h", {}, {1}), &h);
}

TEST(Metrics, QuantileInterpolatesInsideTheTargetBucket) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("q", {}, {10, 100, 1000});
  // 10 observations in [0,10], 10 in (10,100]: the CDF is piecewise linear
  // with a knee at rank 10 / value 10.
  for (int i = 0; i < 10; ++i) h.observe(1);
  for (int i = 0; i < 10; ++i) h.observe(50);
  // Rank 10 is the upper edge of the first bucket...
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 10.0);
  // ...and ranks above it interpolate linearly across (10, 100]:
  // rank 15 is halfway through the second bucket's 10 observations.
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 55.0);
  // rank 5 is halfway through the first bucket, whose lower edge is 0.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);
  // q clamps to [0, 1]; q=1 is the last populated bucket's upper edge.
  EXPECT_DOUBLE_EQ(h.quantile(1.5), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), 0.0);
}

TEST(Metrics, QuantileEdgeCases) {
  MetricsRegistry reg;
  // Empty histogram: no rank to find.
  EXPECT_DOUBLE_EQ(reg.histogram("empty", {}, {10}).quantile(0.5), 0.0);
  // Everything in the +Inf bucket clamps to the largest finite bound, the
  // same convention Prometheus' histogram_quantile uses.
  Histogram& inf = reg.histogram("inf", {}, {10, 100});
  inf.observe(5000);
  inf.observe(9000);
  EXPECT_DOUBLE_EQ(inf.quantile(0.5), 100.0);
  // Skips empty buckets: with only the third bucket populated, every
  // quantile interpolates inside (100, 1000].
  Histogram& sparse = reg.histogram("sparse", {}, {10, 100, 1000});
  for (int i = 0; i < 4; ++i) sparse.observe(500);
  EXPECT_DOUBLE_EQ(sparse.quantile(0.25), 325.0);   // rank 1 of 4
  EXPECT_DOUBLE_EQ(sparse.quantile(1.0), 1000.0);   // rank 4 of 4
  // The static form matches the member form given the same buckets.
  EXPECT_DOUBLE_EQ(Histogram::quantile_from_buckets(
                       sparse.upper_bounds(), sparse.bucket_counts(),
                       sparse.count(), 0.25),
                   sparse.quantile(0.25));
}

TEST(Metrics, HistogramDefaultsToTimeBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t");
  EXPECT_EQ(h.upper_bounds(), default_time_buckets());
}

TEST(Metrics, SpanRecordsVirtualTime) {
  MetricsRegistry reg;
  std::uint64_t now = 100;
  reg.set_clock([&] { return now; });
  reg.set_enabled(true);
  {
    Span span(&reg, "rebind", "compute");
    now = 150;
  }
  ASSERT_EQ(reg.spans().size(), 1u);
  const SpanRecord& s = reg.spans()[0];
  EXPECT_EQ(s.name, "rebind");
  EXPECT_EQ(s.scope, "compute");
  EXPECT_EQ(s.begin_us, 100u);
  EXPECT_EQ(s.end_us, 150u);
  EXPECT_EQ(s.duration_us(), 50u);
  // The duration also lands in the per-step histogram.
  Histogram& h = reg.histogram("surgeon_reconfig_step_us",
                               {{"step", "rebind"}});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 50u);
}

TEST(Metrics, DisabledRegistryIsANoOpForSpans) {
  MetricsRegistry reg;  // starts disabled
  { Span span(&reg, "rebind", "compute"); }
  { Span span(nullptr, "rebind", "compute"); }
  EXPECT_TRUE(reg.spans().empty());
  EXPECT_TRUE(reg.histograms().empty());
}

TEST(Export, PrometheusGolden) {
  // The exact exposition format, byte for byte. Regenerate the golden file
  // by copying the EXPECT_EQ failure output after an intentional change.
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.counter("surgeon_bus_messages_sent_total",
              {{"module", "p"}, {"iface", "out"}})
      .inc(3);
  reg.counter("surgeon_bus_messages_sent_total",
              {{"module", "c"}, {"iface", "in"}})
      .inc(1);
  // A label value exercising every escape the exposition format defines:
  // double quote, backslash, and newline.
  reg.counter("surgeon_chaos_note_total",
              {{"detail", "line1\nline2 \"q\" back\\slash"}})
      .inc();
  reg.gauge("surgeon_bus_queue_depth", {{"module", "c"}, {"iface", "in"}})
      .set(2);
  Histogram& h = reg.histogram("surgeon_reconfig_step_us",
                               {{"step", "rebind"}}, {10, 100, 1000});
  h.observe(5);
  h.observe(50);
  h.observe(51);
  h.observe(5000);

  std::ifstream in(std::string(SURGEON_GOLDEN_DIR) + "/obs_prometheus.txt");
  ASSERT_TRUE(in.good()) << "golden file missing";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(to_prometheus(reg), golden.str());
}

TEST(Export, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("c", {{"k", "a\"b\\c\nd"}}).inc();
  EXPECT_NE(to_prometheus(reg).find("c{k=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

TEST(Export, JsonEscapesControlCharacters) {
  // support::quote (diagnostics) stops at newline; the JSON export must
  // escape every control character or the document fails to parse.
  MetricsRegistry reg;
  reg.counter("c", {{"k", "a\tb\rc\x01" "d\"e\\f\ng"}}).inc();
  std::string json = to_json(reg);
  EXPECT_NE(json.find("\"a\\tb\\rc\\u0001d\\\"e\\\\f\\ng\""),
            std::string::npos);
}

TEST(Export, JsonCarriesSeriesAndSpans) {
  MetricsRegistry reg;
  std::uint64_t now = 7;
  reg.set_clock([&] { return now; });
  reg.set_enabled(true);
  reg.counter("c", {{"module", "m"}}).inc(2);
  reg.gauge("g").set(-4);
  {
    Span span(&reg, "obj_cap", "server");
    now = 9;
  }
  std::string json = to_json(reg);
  EXPECT_NE(json.find("\"name\":\"c\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"module\":\"m\"}"), std::string::npos);
  EXPECT_NE(json.find("\"value\":2"), std::string::npos);
  EXPECT_NE(json.find("\"value\":-4"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obj_cap\",\"scope\":\"server\","
                      "\"begin_us\":7,\"end_us\":9,\"seq\":0"),
            std::string::npos);
}

// --- bus instrumentation ---------------------------------------------------

struct InstrumentedBus {
  net::Simulator sim{1};
  bus::Bus bus{sim};
  MetricsRegistry reg;

  InstrumentedBus() {
    sim.add_machine("m", net::arch_vax());
    reg.set_clock([this] { return sim.now(); });
    reg.set_enabled(true);
    bus.set_metrics(&reg);
    bus::ModuleInfo producer;
    producer.name = "p";
    producer.machine = "m";
    producer.interfaces = {
        bus::InterfaceSpec{"out", bus::IfaceRole::kDefine, "i", ""}};
    bus.add_module(producer);
    bus::ModuleInfo consumer;
    consumer.name = "c";
    consumer.machine = "m";
    consumer.interfaces = {
        bus::InterfaceSpec{"in", bus::IfaceRole::kUse, "i", ""}};
    bus.add_module(consumer);
    bus.add_binding({"p", "out"}, {"c", "in"});
  }
};

TEST(BusMetrics, SendDeliverReceiveCounters) {
  InstrumentedBus f;
  f.bus.send("p", "out", {ser::Value(std::int64_t{1})});
  f.bus.send("p", "out", {ser::Value(std::int64_t{2})});
  f.sim.run();
  obs::Labels out{{"module", "p"}, {"iface", "out"}};
  obs::Labels in{{"module", "c"}, {"iface", "in"}};
  EXPECT_EQ(f.reg.counter_value("surgeon_bus_messages_sent_total", out), 2u);
  EXPECT_EQ(f.reg.counter_value("surgeon_bus_messages_delivered_total", in),
            2u);
  EXPECT_EQ(f.reg.gauge_value("surgeon_bus_queue_depth", in), 2);
  (void)f.bus.receive("c", "in");
  EXPECT_EQ(f.reg.gauge_value("surgeon_bus_queue_depth", in), 1);
  (void)f.bus.receive("c", "in");
  EXPECT_EQ(f.reg.gauge_value("surgeon_bus_queue_depth", in), 0);
}

TEST(BusMetrics, UnboundSendCountsAsDrop) {
  InstrumentedBus f;
  f.bus.del_binding({"p", "out"}, {"c", "in"});
  f.bus.send("p", "out", {ser::Value(std::int64_t{1})});
  EXPECT_EQ(f.reg.counter_value("surgeon_bus_messages_dropped_total",
                                {{"module", "p"}, {"iface", "out"}}),
            1u);
  EXPECT_EQ(f.reg.counter_value("surgeon_bus_rebinds_total"), 2u);
}

TEST(BusMetrics, DisabledRegistryRecordsNothing) {
  InstrumentedBus f;
  f.reg.set_enabled(false);
  f.bus.send("p", "out", {ser::Value(std::int64_t{1})});
  f.sim.run();
  EXPECT_EQ(f.reg.counter_value("surgeon_bus_messages_sent_total",
                                {{"module", "p"}, {"iface", "out"}}),
            0u);
  // The plain BusStats keep counting regardless.
  EXPECT_EQ(f.bus.stats().messages_sent, 1u);
}

TEST(BusMetrics, MhStatsExportsThroughTheClient) {
  InstrumentedBus f;
  f.bus.send("p", "out", {ser::Value(std::int64_t{1})});
  f.sim.run();
  bus::Client client(f.bus, "c");
  std::string prom = client.mh_stats();
  EXPECT_NE(prom.find("surgeon_bus_messages_sent_total"), std::string::npos);
  std::string json = client.mh_stats("json");
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_THROW((void)client.mh_stats("xml"), support::BusError);
}

TEST(BusMetrics, MhStatsWithoutRegistryIsEmpty) {
  net::Simulator sim(1);
  bus::Bus bus(sim);
  sim.add_machine("m", net::arch_vax());
  bus::ModuleInfo info;
  info.name = "solo";
  info.machine = "m";
  bus.add_module(info);
  bus::Client client(bus, "solo");
  EXPECT_EQ(client.mh_stats(), "");
  EXPECT_EQ(client.mh_stats("json"),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[],\"spans\":[]}");
}

// --- trace ring ------------------------------------------------------------

TEST(TraceRing, OldestEventsDropWhenFull) {
  app::Runtime rt(1);
  rt.add_machine("m", net::arch_vax());
  rt.enable_metrics();
  rt.enable_tracing();
  rt.set_trace_capacity(2);
  for (int i = 0; i < 5; ++i) {
    bus::ModuleInfo info;
    info.name = "mod" + std::to_string(i);
    info.machine = "m";
    rt.bus().add_module(std::move(info));
  }
  EXPECT_EQ(rt.trace().size(), 2u);
  EXPECT_EQ(rt.trace_dropped(), 3u);
  EXPECT_EQ(rt.metrics().counter_value("surgeon_trace_dropped_total"), 3u);
  // The survivors are the most recent events.
  EXPECT_EQ(rt.trace().back().module, "mod4");
  EXPECT_EQ(rt.trace().front().module, "mod3");
}

}  // namespace
}  // namespace surgeon::obs
