#include <gtest/gtest.h>

#include "support/bytes.hpp"
#include "support/diag.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/strutil.hpp"

namespace surgeon::support {
namespace {

// --- bytes -------------------------------------------------------------------

TEST(Bytes, RoundTripBigEndian) {
  ByteWriter w(ByteOrder::kBig);
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_i64(-42);
  w.put_f64(3.25);
  w.put_string("hello");
  ByteReader r(w.bytes(), ByteOrder::kBig);
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.25);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, RoundTripLittleEndian) {
  ByteWriter w(ByteOrder::kLittle);
  w.put_u32(0x11223344);
  w.put_f64(-1.5);
  ByteReader r(w.bytes(), ByteOrder::kLittle);
  EXPECT_EQ(r.get_u32(), 0x11223344u);
  EXPECT_DOUBLE_EQ(r.get_f64(), -1.5);
}

TEST(Bytes, EndiannessMattersOnTheWire) {
  ByteWriter w(ByteOrder::kBig);
  w.put_u32(0x01020304);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[3], 0x04);
  // The same value read with the wrong order comes out byte-swapped: this
  // is exactly why the abstract state format fixes a byte order.
  ByteReader r(w.bytes(), ByteOrder::kLittle);
  EXPECT_EQ(r.get_u32(), 0x04030201u);
}

TEST(Bytes, UnderrunThrows) {
  ByteWriter w(ByteOrder::kBig);
  w.put_u16(7);
  ByteReader r(w.bytes(), ByteOrder::kBig);
  (void)r.get_u8();
  EXPECT_THROW((void)r.get_u32(), VmError);
}

TEST(Bytes, StoreLoadScalar) {
  std::uint8_t buf[8];
  store_u64(buf, 0x1122334455667788ULL, ByteOrder::kBig);
  EXPECT_EQ(buf[0], 0x11);
  EXPECT_EQ(load_u64(buf, ByteOrder::kBig), 0x1122334455667788ULL);
  EXPECT_EQ(load_u64(buf, ByteOrder::kLittle), 0x8877665544332211ULL);
}

// --- format strings -----------------------------------------------------------

TEST(Format, PaperFormatsParse) {
  // The format strings that appear verbatim in the paper's figures.
  EXPECT_EQ(parse_format("i"),
            (std::vector<ValueKind>{ValueKind::kInt}));
  EXPECT_EQ(parse_format("F"),
            (std::vector<ValueKind>{ValueKind::kReal}));
  EXPECT_EQ(parse_format("llF"),
            (std::vector<ValueKind>{ValueKind::kInt, ValueKind::kInt,
                                    ValueKind::kReal}));
  EXPECT_EQ(parse_format("iiif"),
            (std::vector<ValueKind>{ValueKind::kInt, ValueKind::kInt,
                                    ValueKind::kInt, ValueKind::kReal}));
}

TEST(Format, EmptyFormatIsEmpty) { EXPECT_TRUE(parse_format("").empty()); }

TEST(Format, BadCharacterThrows) {
  EXPECT_THROW(parse_format("ix"), ParseError);
  EXPECT_THROW(parse_format("?"), ParseError);
}

TEST(Format, RoundTrip) {
  auto kinds = parse_format("iFsp");
  EXPECT_EQ(format_of(kinds), "iFsp");
}

// --- strutil -------------------------------------------------------------------

TEST(Strutil, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strutil, SplitAndJoin) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"x", "y"}, "::"), "x::y");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strutil, Quote) {
  EXPECT_EQ(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
}

// --- diagnostics ----------------------------------------------------------------

TEST(Diag, EngineCountsErrors) {
  DiagnosticEngine engine;
  engine.warning({1, 2}, "w");
  EXPECT_FALSE(engine.has_errors());
  engine.error({3, 4}, "e");
  EXPECT_TRUE(engine.has_errors());
  EXPECT_EQ(engine.error_count(), 1u);
  EXPECT_NE(engine.summary().find("line 3:4"), std::string::npos);
}

TEST(Diag, NoteConvenienceMatchesErrorAndWarning) {
  DiagnosticEngine engine;
  engine.note({5, 1}, "consider a reconfiguration point here");
  ASSERT_EQ(engine.diagnostics().size(), 1u);
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::kNote);
  EXPECT_FALSE(engine.has_errors());
  EXPECT_NE(engine.summary().find("note"), std::string::npos);
}

TEST(Diag, ParseErrorCarriesLocation) {
  ParseError err(SourceLoc{7, 3}, "bad");
  EXPECT_EQ(err.loc().line, 7u);
  EXPECT_NE(std::string(err.what()).find("line 7:3"), std::string::npos);
}

// --- rng -------------------------------------------------------------------------

TEST(Rng, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BoundsRespected) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace surgeon::support
