// Tests of the profiling and cluster-telemetry plane (surgeon::profile):
// the sampling profiler's attribution and exporters, the Reporter ->
// Collector delta stream, the mh_top renderings, the collector's own
// Figure 5 replacement (byte-identical aggregates across 215 chaos seeds),
// and the obs exporters under the series churn a replacement causes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "chaos/fault.hpp"
#include "net/arch.hpp"
#include "obs/export.hpp"
#include "profile/profiler.hpp"
#include "profile/telemetry.hpp"
#include "reconfig/scripts.hpp"
#include "support/diag.hpp"

namespace surgeon::profile {
namespace {

std::unique_ptr<app::Runtime> make_counter(std::uint64_t seed, int requests) {
  auto rt = std::make_unique<app::Runtime>(seed);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  rt->load_application(config, "counter", [&](const cfg::ModuleSpec& spec) {
    if (spec.name == "client") {
      return app::samples::counter_client_source(requests);
    }
    return app::samples::counter_server_source();
  });
  return rt;
}

// --- sampling profiler -------------------------------------------------------

TEST(Profiler, InstructionSamplingNamesHotOpcodeSequences) {
  auto rt = make_counter(3, 40);
  Profiler profiler;
  ProfileOptions options;
  options.every_insns = 4;  // dense: the opcode-evidence mode
  rt->enable_profiler(profiler, options);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 40; }));

  EXPECT_GT(profiler.total_samples(), 100u);
  // Both modules executed instructions, so both appear in the attribution.
  bool saw_client = false, saw_server = false;
  for (const auto& [key, stat] : profiler.functions()) {
    if (key.first == "client") saw_client = true;
    if (key.first == "server") saw_server = true;
    EXPECT_GE(stat.cum, stat.self) << key.first << ";" << key.second;
  }
  EXPECT_TRUE(saw_client);
  EXPECT_TRUE(saw_server);
  // The superinstruction evidence: static opcode sequences with counts.
  ASSERT_FALSE(profiler.sequences().empty());
  std::uint64_t hottest = 0;
  for (const auto& [key, n] : profiler.sequences()) {
    EXPECT_NE(key.second.find('+'), std::string::npos) << key.second;
    hottest = std::max(hottest, n);
  }
  EXPECT_GT(hottest, 0u);
  EXPECT_FALSE(profiler.opcodes().empty());

  // Folded exporter: "module;fn[;fn...] count" lines, flamegraph-ready.
  const std::string folded = profiler.to_folded();
  EXPECT_NE(folded.find("client;"), std::string::npos);
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::strtoull(line.c_str() + space + 1, nullptr, 10), 0u)
        << line;
  }
  const std::string json = profiler.to_json();
  EXPECT_NE(json.find("\"total_samples\":"), std::string::npos);
  EXPECT_NE(json.find("\"sequences\":"), std::string::npos);
}

TEST(Profiler, TimerModeSamplesAndDisableStops) {
  auto rt = make_counter(4, 60);
  Profiler profiler;
  ProfileOptions options;
  options.interval_us = 1'000;  // virtual-clock sampling timer
  rt->enable_profiler(profiler, options);
  EXPECT_TRUE(rt->profiler_enabled());
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 20; }));
  EXPECT_GT(profiler.total_samples(), 0u);

  rt->disable_profiler();
  EXPECT_FALSE(rt->profiler_enabled());
  const std::uint64_t frozen = profiler.total_samples();
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 60; }));
  EXPECT_EQ(profiler.total_samples(), frozen);
}

// --- telemetry plane ---------------------------------------------------------

TEST(Telemetry, CollectorAggregatesDeltaStream) {
  auto rt = make_counter(5, 200);
  rt->enable_metrics();
  auto collector =
      std::make_unique<Collector>(rt->bus(), "collector", "vax");
  Reporter vax(rt->bus(), rt->metrics(), "vax", "collector");
  Reporter sparc(rt->bus(), rt->metrics(), "sparc", "collector");
  rt->run_for(800'000);

  EXPECT_GT(vax.deltas_sent() + sparc.deltas_sent(), 0u);
  EXPECT_GT(collector->deltas_applied(), 0u);
  EXPECT_EQ(collector->malformed_dropped(), 0u);

  // The counter application is entirely vax-hosted: the sparc reporter has
  // nothing to stream, and silence is the correct report.
  EXPECT_EQ(sparc.deltas_sent(), 0u);

  // The table names the busiest series of the loaded machine.
  const std::string table = collector->top("table");
  EXPECT_NE(table.find("MACHINE"), std::string::npos);
  EXPECT_NE(table.find("RATE/S"), std::string::npos);
  EXPECT_NE(table.find("surgeon_bus_messages_sent_total"), std::string::npos);
  EXPECT_NE(table.find("vax"), std::string::npos);

  // The query path every operator tool uses: bus::Client::mh_top.
  bus::Client query(rt->bus(), "client");
  EXPECT_EQ(query.mh_top("table"), table);
  const std::string json = query.mh_top("json");
  EXPECT_EQ(json.rfind("{\"window_us\":", 0), 0u) << json;
  EXPECT_NE(json.find("\"series\":["), std::string::npos);
  EXPECT_THROW((void)query.mh_top("xml"), support::BusError);

  // The plane never reports itself: no telemetry module appears as a row.
  EXPECT_EQ(table.find("telemetry@"), std::string::npos);
  EXPECT_EQ(json.find("\"collector\""), std::string::npos);
}

TEST(Telemetry, MalformedIngestIsCountedNotFatal) {
  auto rt = make_counter(6, 10);
  rt->enable_metrics();
  Collector collector(rt->bus(), "collector", "vax");
  bus::ModuleInfo rogue;
  rogue.name = "rogue";
  rogue.machine = "vax";
  rogue.source = kTelemetrySource;
  rogue.interfaces.push_back(
      bus::InterfaceSpec{"junk", bus::IfaceRole::kDefine, "", ""});
  rt->bus().add_module(std::move(rogue));
  rt->bus().add_binding(bus::BindingEnd{"rogue", "junk"},
                        bus::BindingEnd{"collector", "ingest"});
  bus::Client rogue_client(rt->bus(), "rogue");
  using ser::Value;
  // Too short, non-string header, unknown kind, odd histogram payload.
  rogue_client.write("junk", {Value{std::int64_t{7}}});
  rogue_client.write("junk",
                     {Value{std::int64_t{1}}, Value{std::string{"m"}},
                      Value{std::string{"i"}}, Value{std::string{"c"}},
                      Value{std::string{"c"}}, Value{std::int64_t{1}}});
  rogue_client.write("junk",
                     {Value{std::string{"vax"}}, Value{std::string{"m"}},
                      Value{std::string{"i"}}, Value{std::string{"c"}},
                      Value{std::string{"?"}}, Value{std::int64_t{1}}});
  rogue_client.write("junk",
                     {Value{std::string{"vax"}}, Value{std::string{"m"}},
                      Value{std::string{"i"}}, Value{std::string{"h"}},
                      Value{std::string{"h"}}, Value{std::int64_t{10}},
                      Value{std::int64_t{1}}, Value{std::int64_t{20}}});
  rt->run_for(200'000);
  EXPECT_EQ(collector.deltas_applied(), 0u);
  EXPECT_EQ(collector.malformed_dropped(), 4u);
  // Still answering queries.
  EXPECT_EQ(collector.top("json").rfind("{\"window_us\":", 0), 0u);
}

TEST(Telemetry, StateRoundTripReproducesTopExactly) {
  auto rt = make_counter(7, 120);
  rt->enable_metrics();
  Collector original(rt->bus(), "collector", "vax");
  Reporter reporter(rt->bus(), rt->metrics(), "vax", "collector");
  rt->run_for(500'000);
  ASSERT_GT(original.deltas_applied(), 0u);

  const ser::StateBuffer state = original.encode_state();
  Collector clone(rt->bus(), "collector2", "sparc", {}, "clone");
  EXPECT_FALSE(clone.active());
  clone.install_state(state);
  EXPECT_TRUE(clone.active());
  EXPECT_EQ(clone.top("json"), original.top("json"));
  EXPECT_EQ(clone.top("table"), original.top("table"));
}

// The acceptance bar: replacing the aggregator module itself must not
// perturb the cluster view. 215 seeds vary the network schedule AND the
// chaos fault mix (drops, duplicates, delays on every link — telemetry
// superposes the reliable delivery layer like any other traffic).
TEST(Telemetry, ReplaceCollectorByteIdenticalAcross215ChaosSeeds) {
  for (std::uint64_t seed = 1; seed <= 215; ++seed) {
    chaos::FaultInjector faults(seed);  // outlives the bus hook
    auto rt = make_counter(seed, 40);
    rt->enable_metrics();
    chaos::LinkFaults mix;
    mix.drop = 0.04 * static_cast<double>(seed % 3);
    mix.duplicate = 0.03 * static_cast<double>(seed % 4);
    mix.delay = 0.04 * static_cast<double>(seed % 5);
    mix.jitter_us = 200 + (seed % 7) * 300;
    faults.set_default(mix);
    faults.attach(rt->bus());

    auto collector =
        std::make_unique<Collector>(rt->bus(), "collector", "vax");
    auto vax = std::make_unique<Reporter>(rt->bus(), rt->metrics(), "vax",
                                          "collector");
    auto sparc = std::make_unique<Reporter>(rt->bus(), rt->metrics(),
                                            "sparc", "collector");
    rt->run_for(400'000);
    // Stop the reporters, then let retransmissions and the ingest queue
    // drain completely: the window must be frozen before the snapshot.
    vax->stop();
    sparc->stop();
    rt->run_for(2'000'000);
    ASSERT_GT(collector->deltas_applied(), 0u) << "seed " << seed;

    const std::string before = collector->top("json");
    ASSERT_NE(before.find("\"series\":[{"), std::string::npos)
        << "seed " << seed;
    ReplaceCollectorReport report = replace_collector(
        rt->bus(), collector, "vax", [&] { return rt->step(); });
    EXPECT_EQ(report.new_instance, "collector#2") << "seed " << seed;
    EXPECT_GT(report.state_bytes, 0u) << "seed " << seed;
    EXPECT_EQ(collector->module_name(), "collector#2") << "seed " << seed;

    // Byte-identical: same aggregates through the replacement, and the
    // mh_top query path follows the new instance automatically.
    EXPECT_EQ(collector->top("json"), before) << "seed " << seed;
    bus::Client query(rt->bus(), "client");
    EXPECT_EQ(query.mh_top("json"), before) << "seed " << seed;
  }
}

// --- obs exporters under replacement churn (satellite) -----------------------

// A Figure 5 replacement churns the registry: the clone's series appear
// mid-run, the old instance's series go stale (module gone from the bus
// but series retained). The exporters and the Reporter must keep a
// consistent view; the export is golden-diffed byte for byte, which also
// pins the derived-quantile lines. Regenerate with
//   SURGEON_REGEN_GOLDEN=1 ./profile_test
//       --gtest_filter=Telemetry.ExportersSurviveSeriesChurnGolden
TEST(Telemetry, ExportersSurviveSeriesChurnGolden) {
  auto rt = make_counter(11, 60);
  rt->enable_metrics();
  auto collector =
      std::make_unique<Collector>(rt->bus(), "collector", "vax");
  Reporter reporter(rt->bus(), rt->metrics(), "vax", "collector");
  ASSERT_TRUE(rt->run_until(
      [&] { return !rt->machine_of("client")->output().empty(); }));

  // The churn: replace the server mid-run. server@2's series are born,
  // server's go stale.
  reconfig::ReplaceReport report = reconfig::replace_module(*rt, "server");
  EXPECT_EQ(report.new_instance, "server@2");
  EXPECT_FALSE(rt->bus().has_module("server"));
  // Stale series survive in the registry...
  EXPECT_GT(
      rt->metrics().counter_value("surgeon_bus_messages_sent_total",
                                  {{"module", "server"}, {"iface", "req"}}),
      0u);
  // ...and the Reporter flushes over them without tripping (stale series
  // are simply no longer attributable to a live module).
  reporter.flush();
  rt->run_for(300'000);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 10; }));

  const std::string actual = obs::to_prometheus(rt->metrics());
  const std::string path =
      std::string(SURGEON_GOLDEN_DIR) + "/obs_churn_prometheus.txt";
  if (std::getenv("SURGEON_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "golden file missing: " << path;
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(actual, golden.str());
  // The interesting churn evidence, independent of exact counts: both
  // generations of the server appear in one consistent export.
  EXPECT_NE(actual.find("module=\"server\""), std::string::npos);
  EXPECT_NE(actual.find("module=\"server@2\""), std::string::npos);
  EXPECT_NE(actual.find("# quantile"), std::string::npos);
}

}  // namespace
}  // namespace surgeon::profile
