// surgeon::recover -- WAL'd Figure 5 transactions, the heartbeat failure
// detector, coordinator-crash recovery at every step boundary, and
// checkpoint-based module recovery.
//
// The CoordinatorKillSweep at the bottom kills the coordinator at all eight
// step boundaries across 25 random scenarios (200 runs); every failure
// message starts with the scenario's describe() line for replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "chaos/scenario.hpp"
#include "net/arch.hpp"
#include "net/durable.hpp"
#include "recover/detector.hpp"
#include "recover/recovery.hpp"
#include "recover/supervisor.hpp"
#include "recover/wal.hpp"
#include "reconfig/scripts.hpp"

namespace surgeon {
namespace {

using app::Runtime;

// --- write-ahead log --------------------------------------------------------

TEST(Wal, CommittedTransactionRoundTrips) {
  net::DurableStore store;
  recover::Wal wal(store);
  wal.begin("server", "server@2", "sparc");
  wal.intent(reconfig::kStepObjCap);
  wal.intent(reconfig::kStepObjstateMove);
  wal.divulged({1, 2, 3, 4});
  wal.intent(reconfig::kStepCommit);
  wal.committed();

  std::vector<recover::WalTxn> txns = wal.scan();
  ASSERT_EQ(txns.size(), 1u);
  const recover::WalTxn& t = txns[0];
  EXPECT_EQ(t.id, 1u);
  EXPECT_EQ(t.old_instance, "server");
  EXPECT_EQ(t.new_instance, "server@2");
  EXPECT_EQ(t.machine, "sparc");
  ASSERT_EQ(t.steps.size(), 3u);
  EXPECT_EQ(t.steps.front(), reconfig::kStepObjCap);
  EXPECT_EQ(t.last_step(), reconfig::kStepCommit);
  ASSERT_TRUE(t.state.has_value());
  EXPECT_EQ(*t.state, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_TRUE(t.committed);
  EXPECT_FALSE(t.open());
  EXPECT_FALSE(wal.open_transaction().has_value());
  EXPECT_EQ(wal.records(), 6u);
}

TEST(Wal, OpenTransactionExposesProgress) {
  net::DurableStore store;
  recover::Wal wal(store);
  wal.begin("server", "server@2", "");
  wal.intent(reconfig::kStepObjCap);
  wal.intent(reconfig::kStepCloneRegister);
  // The coordinator dies here: no divulged record, no commit.
  std::optional<recover::WalTxn> open = wal.open_transaction();
  ASSERT_TRUE(open.has_value());
  EXPECT_EQ(open->id, 1u);
  EXPECT_EQ(open->last_step(), reconfig::kStepCloneRegister);
  EXPECT_FALSE(open->state.has_value());
  EXPECT_TRUE(open->open());
}

TEST(Wal, AbortClosesTransaction) {
  net::DurableStore store;
  recover::Wal wal(store);
  wal.begin("server", "server@2", "");
  wal.intent(reconfig::kStepObjstateMove);
  wal.aborted("divulge timeout");
  std::vector<recover::WalTxn> txns = wal.scan();
  ASSERT_EQ(txns.size(), 1u);
  EXPECT_TRUE(txns[0].aborted);
  EXPECT_EQ(txns[0].abort_reason, "divulge timeout");
  EXPECT_FALSE(wal.open_transaction().has_value());
}

TEST(Wal, IdsContinueAcrossCoordinatorRestarts) {
  net::DurableStore store;
  {
    recover::Wal wal(store);
    wal.begin("a", "a@2", "");
    wal.committed();
  }
  recover::Wal successor(store);  // restarted coordinator, same disk
  successor.begin("b", "b@2", "");
  successor.aborted("rolled back");
  std::vector<recover::WalTxn> txns = successor.scan();
  ASSERT_EQ(txns.size(), 2u);
  EXPECT_EQ(txns[0].id, 1u);
  EXPECT_EQ(txns[1].id, 2u);
  EXPECT_TRUE(txns[1].aborted);
}

TEST(Wal, MarkCommittedClosesScannedTransaction) {
  net::DurableStore store;
  recover::Wal wal(store);
  wal.begin("server", "server@2", "");
  wal.intent(reconfig::kStepRebind);
  std::optional<recover::WalTxn> open = wal.open_transaction();
  ASSERT_TRUE(open.has_value());
  wal.mark_committed(open->id);
  EXPECT_FALSE(wal.open_transaction().has_value());
  EXPECT_TRUE(wal.scan()[0].committed);
}

TEST(Wal, MalformedRecordsThrow) {
  net::DurableStore store;
  store.append("reconfig.wal", {1});  // begin record cut off mid-header
  recover::Wal wal(store);
  EXPECT_THROW((void)wal.scan(), recover::WalError);

  net::DurableStore store2;
  store2.append("reconfig.wal",
                {99, 1, 0, 0, 0, 0, 0, 0, 0});  // unknown record type
  recover::Wal wal2(store2);
  EXPECT_THROW((void)wal2.scan(), recover::WalError);
}

// --- failure detector -------------------------------------------------------

TEST(Detector, SuspectsModulesAfterSilence) {
  recover::FailureDetector det(recover::DetectorOptions{.suspicion_timeout_us = 100});
  det.beat("a", 0);
  det.beat("b", 0);
  det.beat("a", 90);
  EXPECT_TRUE(det.suspects(50).empty());
  std::vector<std::string> s = det.suspects(150);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], "b");  // a beat at 90, b has been silent for 150
  s = det.suspects(500);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], "a");  // sorted by name
  EXPECT_EQ(s[1], "b");
  EXPECT_EQ(det.beats_observed(), 3u);
  ASSERT_TRUE(det.last_beat("a").has_value());
  EXPECT_EQ(*det.last_beat("a"), 90u);
}

TEST(Detector, ForgetStopsTracking) {
  recover::FailureDetector det(recover::DetectorOptions{.suspicion_timeout_us = 10});
  det.beat("a", 0);
  EXPECT_EQ(det.tracked(), 1u);
  det.forget("a");
  EXPECT_EQ(det.tracked(), 0u);
  EXPECT_TRUE(det.suspects(1000).empty());
  EXPECT_FALSE(det.last_beat("a").has_value());
}

// --- runtime heartbeats -----------------------------------------------------

std::unique_ptr<Runtime> make_counter(int requests = 8) {
  auto rt = std::make_unique<Runtime>(2);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  rt->load_application(config, "counter", [&](const cfg::ModuleSpec& spec) {
    if (spec.name == "client") {
      return app::samples::counter_client_source(requests);
    }
    return app::samples::counter_server_source();
  });
  return rt;
}

std::vector<std::string> golden_counter_output(int requests) {
  auto rt = make_counter(requests);
  EXPECT_TRUE(rt->run_until([&] { return rt->module_finished("client"); },
                            4'000'000));
  return rt->machine_of("client")->output();
}

TEST(Heartbeats, EveryLiveProcessBeatsOnTheVirtualClock) {
  auto rt = make_counter();
  recover::FailureDetector det(
      recover::DetectorOptions{.suspicion_timeout_us = 5'000});
  rt->enable_heartbeats(1'000, [&](const std::string& module,
                                   net::SimTime at) { det.beat(module, at); });
  EXPECT_TRUE(rt->heartbeats_enabled());
  rt->run_for(10'000);
  EXPECT_EQ(det.tracked(), 2u);  // client and server both beat
  EXPECT_GE(det.beats_observed(), 10u);
  EXPECT_TRUE(det.suspects(rt->now()).empty());

  // A crashed module stops beating and crosses the suspicion timeout.
  rt->crash_module("server", "test crash");
  rt->run_for(10'000);
  std::vector<std::string> s = det.suspects(rt->now());
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], "server");

  // disable_heartbeats invalidates the pending tick.
  std::uint64_t before = det.beats_observed();
  rt->disable_heartbeats();
  rt->run_for(10'000);
  EXPECT_EQ(det.beats_observed(), before);
}

TEST(Heartbeats, ZeroIntervalRejected) {
  auto rt = make_counter();
  EXPECT_THROW(rt->enable_heartbeats(0, [](const std::string&, net::SimTime) {}),
               support::BusError);
}

// --- coordinator crash recovery (directed, one test per watershed side) ----

TEST(Recovery, NoOpenTransactionIsANoOp) {
  auto rt = make_counter();
  net::DurableStore& store = rt->simulator().durable_store("vax");
  recover::Wal wal(store);
  recover::RecoveryReport rep = recover::recover_coordinator(*rt, wal);
  EXPECT_FALSE(rep.found_open_txn);
  EXPECT_FALSE(rep.rolled_forward);
  EXPECT_FALSE(rep.rolled_back);
}

// Kills the coordinator of a manual replacement at `boundary` and returns
// the runtime plus the WAL for recovery assertions.
struct CrashedReplacement {
  std::unique_ptr<Runtime> rt;
  std::unique_ptr<recover::Wal> wal;
};

CrashedReplacement crash_coordinator_at(const char* boundary,
                                        int requests = 8) {
  CrashedReplacement cr;
  cr.rt = make_counter(requests);
  cr.rt->bus().set_delivery(bus::DeliveryOptions{.reliable = true});
  EXPECT_TRUE(cr.rt->run_until(
      [&] { return cr.rt->machine_of("client")->output().size() >= 2; },
      2'000'000));
  cr.wal = std::make_unique<recover::Wal>(
      cr.rt->simulator().durable_store("vax"));
  reconfig::ReplaceOptions options;
  options.journal = cr.wal.get();
  options.crash_hook = [boundary](const char* step) {
    if (std::string_view(step) == boundary) {
      throw recover::CoordinatorCrash(std::string("test: died at '") + step +
                                      "'");
    }
  };
  EXPECT_THROW((void)reconfig::replace_module(*cr.rt, "server", options),
               recover::CoordinatorCrash);
  return cr;
}

TEST(Recovery, PreDivulgeCrashRollsBackAndOldKeepsServing) {
  std::vector<std::string> golden = golden_counter_output(8);
  CrashedReplacement cr = crash_coordinator_at(reconfig::kStepBindEditPrep);
  recover::RecoveryReport rep = recover::recover_coordinator(*cr.rt, *cr.wal);
  EXPECT_TRUE(rep.found_open_txn);
  EXPECT_TRUE(rep.rolled_back);
  EXPECT_FALSE(rep.rolled_forward);
  EXPECT_EQ(rep.crashed_after_step, reconfig::kStepBindEditPrep);
  // The half-born clone is gone; exactly the old instance remains.
  EXPECT_FALSE(cr.rt->bus().has_module("server@2"));
  EXPECT_TRUE(cr.rt->bus().has_module("server"));
  EXPECT_FALSE(cr.wal->open_transaction().has_value());
  ASSERT_TRUE(cr.rt->run_until(
      [&] { return cr.rt->module_finished("client"); }, 2'000'000));
  EXPECT_EQ(cr.rt->machine_of("client")->output(), golden);
  cr.rt->check_faults();
}

TEST(Recovery, PostDivulgeCrashRollsForwardToTheClone) {
  std::vector<std::string> golden = golden_counter_output(8);
  CrashedReplacement cr = crash_coordinator_at(reconfig::kStepRebind);
  recover::RecoveryReport rep = recover::recover_coordinator(*cr.rt, *cr.wal);
  EXPECT_TRUE(rep.rolled_forward);
  EXPECT_TRUE(rep.restored);
  EXPECT_EQ(rep.new_instance, "server@2");
  EXPECT_FALSE(cr.rt->bus().has_module("server"));
  EXPECT_TRUE(cr.rt->bus().has_module("server@2"));
  EXPECT_FALSE(cr.wal->open_transaction().has_value());
  ASSERT_TRUE(cr.rt->run_until(
      [&] { return cr.rt->module_finished("client"); }, 2'000'000));
  EXPECT_EQ(cr.rt->machine_of("client")->output(), golden);
  cr.rt->check_faults();
}

// ISSUE satellite: a crash landing between divulge and install -- the clone
// process dies while the coordinator is down. Recovery restarts it
// (crash_module/restart_module) and the reliable layer re-converges the
// state delivery on the fresh VM.
TEST(Recovery, CloneCrashedDuringCoordinatorOutageIsRestarted) {
  std::vector<std::string> golden = golden_counter_output(8);
  CrashedReplacement cr = crash_coordinator_at(reconfig::kStepDel);
  // The clone was started by the "add" step; kill its process before the
  // successor coordinator comes up. Its state delivery is still in flight.
  cr.rt->crash_module("server@2", "host fault during outage");
  EXPECT_TRUE(cr.rt->module_crashed("server@2"));
  recover::RecoveryReport rep = recover::recover_coordinator(*cr.rt, *cr.wal);
  EXPECT_TRUE(rep.rolled_forward);
  EXPECT_TRUE(rep.restored);
  EXPECT_FALSE(cr.rt->module_crashed("server@2"));
  ASSERT_TRUE(cr.rt->run_until(
      [&] { return cr.rt->module_finished("client"); }, 2'000'000));
  EXPECT_EQ(cr.rt->machine_of("client")->output(), golden);
  cr.rt->check_faults();
}

// The mailbox copy of the state can be lost with the crash; the WAL's
// divulged record is then the only copy, and roll-forward re-delivers it.
TEST(Recovery, StateRedeliveredFromWalWhenMailboxLost) {
  std::vector<std::string> golden = golden_counter_output(8);
  CrashedReplacement cr = crash_coordinator_at(reconfig::kStepRebind);
  cr.rt->run_for(60'000);  // let the in-flight delivery land in the mailbox
  ASSERT_TRUE(cr.rt->bus().take_incoming_state("server@2").has_value());
  std::optional<recover::WalTxn> open = cr.wal->open_transaction();
  ASSERT_TRUE(open.has_value());
  ASSERT_TRUE(open->state.has_value());  // the watershed record is durable
  recover::RecoveryReport rep = recover::recover_coordinator(*cr.rt, *cr.wal);
  EXPECT_TRUE(rep.rolled_forward);
  EXPECT_TRUE(rep.restored);
  ASSERT_TRUE(cr.rt->run_until(
      [&] { return cr.rt->module_finished("client"); }, 2'000'000));
  EXPECT_EQ(cr.rt->machine_of("client")->output(), golden);
  cr.rt->check_faults();
}

// The per-boundary fault-free crash sweep that used to live here (the
// hand-rolled BoundarySweep over Range(0, 8)) was promoted into the
// systematic explorer: systematic_test's BoundariesPromoted enumerates the
// same eight coordinator-crash boundaries through chaos::explore, which
// derives them from recover::kCrashBoundaries instead of a hand-kept list.

// ISSUE acceptance: the coordinator is killed at every step boundary across
// 25 randomized scenarios (faults, partitions, all three apps) -- 200 runs.
// Replay: spec = random_scenario(seed); spec.crash_clone = false;
// spec.crash_coordinator_at_step = boundary (both printed by describe()).
class CoordinatorKillSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoordinatorKillSweep, Invariants) {
  const std::uint64_t seed = 500 + std::uint64_t(GetParam()) / 8;
  const int boundary = GetParam() % 8;
  chaos::ScenarioSpec spec = chaos::random_scenario(seed);
  spec.crash_clone = false;  // recovery roll-forward is single-shot
  spec.crash_coordinator_at_step = boundary;
  chaos::ScenarioResult r = chaos::run_scenario(spec);
  ASSERT_TRUE(r.ok()) << r.failure << "\n  replay: " << spec.describe();
  EXPECT_TRUE(r.replaced || !r.abort_reason.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoordinatorKillSweep,
                         ::testing::Range(0, 200));

// --- checkpoint-based module recovery ---------------------------------------

// A client that tags requests, ignores stale duplicate replies, and resends
// after a timeout: the at-most-once delivery a restored-from-checkpoint
// server needs to look exactly-once from the outside. Replies encode
// (total * 10 + k) so the client can match a reply to its request.
const char* kRetryClientSource = R"mc(
void main()
{
  int k;
  int reply;
  int got;
  int waited;
  k = 1;
  while (k <= 6) {
    mh_write("svc", "i", k);
    got = 0;
    waited = 0;
    while (got == 0) {
      if (mh_query_ifmsgs("svc") > 0) {
        mh_read("svc", "i", &reply);
        if (reply % 10 == k) { got = 1; }
      }
      if (got == 0) {
        sleep(1);
        waited = waited + 1;
        if (waited >= 60) {
          mh_write("svc", "i", k);
          waited = 0;
        }
      }
    }
    print("ack", k, reply / 10);
    sleep(1);
    k = k + 1;
  }
  print("client-done");
}
)mc";

// The counter server with a busy loop at the reconfiguration point, so a
// crash countdown lands mid-recursion rather than between requests.
const char* kSlowServerSource = R"mc(
int total = 0;
int spin = 0;

void bump(int k, int *out)
{
  if (k <= 0) { return; }
  bump(k - 1, out);
RP:
  spin = 0;
  while (spin < 40) { spin = spin + 1; }
  total = total + k;
  *out = total;
}

void main()
{
  int k;
  int result;
  while (1) {
    mh_read("req", "i", &k);
    bump(k, &result);
    mh_write("req", "i", result * 10 + k);
  }
}
)mc";

std::unique_ptr<Runtime> make_retry_counter() {
  auto rt = std::make_unique<Runtime>(7);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  rt->add_machine("mips", net::arch_mips());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  rt->load_application(config, "counter", [](const cfg::ModuleSpec& spec) {
    return std::string(spec.name == "client" ? kRetryClientSource
                                             : kSlowServerSource);
  });
  rt->bus().set_delivery(bus::DeliveryOptions{.reliable = true});
  return rt;
}

// ISSUE acceptance: a module crashed mid-recursion is auto-detected by
// heartbeat timeout and restored from its checkpoint on a *different*
// machine, with output identical to the fault-free run.
TEST(Supervisor, CrashedModuleRestoredFromCheckpointOnSpareMachine) {
  std::vector<std::string> golden;
  {
    auto rt = make_retry_counter();
    ASSERT_TRUE(rt->run_until(
        [&] { return rt->module_finished("client"); }, 6'000'000));
    golden = rt->machine_of("client")->output();
  }
  ASSERT_EQ(golden.size(), 7u);  // six acks + client-done

  auto rt = make_retry_counter();
  recover::Supervisor sup(*rt, rt->simulator().durable_store("sparc"));
  sup.watch("server", /*spare_machine=*/"mips");
  sup.start();
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 2; },
      6'000'000));
  (void)sup.checkpoint_now("server");
  const std::string checkpointed = sup.current_instance("server");
  EXPECT_EQ(checkpointed, "server@2");
  EXPECT_TRUE(sup.has_checkpoint("server"));

  // Die mid-recursion of the first request the checkpoint does not cover.
  rt->crash_after(checkpointed, 200);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 8'000'000));
  sup.stop();

  EXPECT_EQ(rt->machine_of("client")->output(), golden);
  EXPECT_GE(sup.suspects_seen(), 1u);
  EXPECT_EQ(sup.restores(), 1u);
  const std::string heir = sup.current_instance("server");
  EXPECT_NE(heir, checkpointed);
  ASSERT_TRUE(rt->bus().has_module(heir));
  EXPECT_EQ(rt->bus().module_info(heir).machine, "mips");  // migrated
  EXPECT_FALSE(rt->bus().has_module(checkpointed));
  rt->check_faults();
}

// Periodic checkpoints are full production replacements: the instance name
// advances and the application's output is untouched.
TEST(Supervisor, PeriodicCheckpointsAreTransparent) {
  std::vector<std::string> golden;
  {
    auto rt = make_retry_counter();
    ASSERT_TRUE(rt->run_until(
        [&] { return rt->module_finished("client"); }, 6'000'000));
    golden = rt->machine_of("client")->output();
  }

  auto rt = make_retry_counter();
  recover::SupervisorOptions options;
  options.checkpoint_interval_us = 4'000'000;  // the app runs ~15 virtual s
  recover::Supervisor sup(*rt, rt->simulator().durable_store("sparc"),
                          options);
  sup.watch("server");
  sup.start();
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 8'000'000));
  sup.stop();
  EXPECT_EQ(rt->machine_of("client")->output(), golden);
  EXPECT_GE(sup.checkpoints_taken(), 1u);
  EXPECT_TRUE(sup.has_checkpoint("server"));
  EXPECT_NE(sup.current_instance("server"), "server");
  rt->check_faults();
}

}  // namespace
}  // namespace surgeon
