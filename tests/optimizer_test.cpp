#include <gtest/gtest.h>

#include "support/rng.hpp"

#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "minic/sema.hpp"
#include "opt/optimizer.hpp"
#include "vm/compiler.hpp"
#include "vm/machine.hpp"
#include "xform/transform.hpp"

namespace surgeon::opt {
namespace {

minic::Program parsed(std::string_view src) {
  minic::Program p = minic::parse_program(src);
  minic::analyze(p);
  return p;
}

std::vector<std::string> run(const minic::Program& prog) {
  auto compiled = vm::compile(prog);
  vm::Machine m(compiled, net::arch_vax());
  (void)m.step(100'000'000);
  EXPECT_EQ(m.state(), vm::RunState::kDone) << m.fault_message();
  return m.output();
}

/// Optimizes and re-analyzes; returns stats.
OptStats optimized(minic::Program& p, const OptOptions& options = {}) {
  OptStats stats = optimize(p, options);
  minic::analyze(p);
  return stats;
}

TEST(ExprEqual, StructuralEquality) {
  auto a = minic::parse_expression("x + 2 * y");
  auto b = minic::parse_expression("x + 2 * y");
  auto c = minic::parse_expression("x + 2 * z");
  auto d = minic::parse_expression("x + y * 2");
  EXPECT_TRUE(expr_equal(*a, *b));
  EXPECT_FALSE(expr_equal(*a, *c));
  EXPECT_FALSE(expr_equal(*a, *d));
  // Calls never compare equal (they may have effects).
  auto e = minic::parse_expression("f(1)");
  auto f = minic::parse_expression("f(1)");
  EXPECT_FALSE(expr_equal(*e, *f));
}

TEST(Folding, LiteralArithmetic) {
  minic::Program p = parsed(R"(
void main() {
  int a; float b; string s;
  a = (7 + 3) * 2 - 9 / 3;
  b = 1.5 * 4.0 + 1;
  s = "ab" + "cd";
  a = !0 + !(3 > 2);
  a = (int)2.9 + (int)(1.0 + 1.5);
  print(a, b, s);
}
)");
  OptStats stats = optimized(p);
  EXPECT_GT(stats.expressions_folded, 6u);
  std::string text = minic::print_program(p);
  EXPECT_NE(text.find("a = 17;"), std::string::npos) << text;
  EXPECT_NE(text.find("b = 7.0;"), std::string::npos) << text;
  EXPECT_NE(text.find("s = \"abcd\";"), std::string::npos) << text;
  EXPECT_NE(text.find("a = 4;"), std::string::npos) << text;  // casts folded
}

TEST(Folding, PreservesBehaviour) {
  const char* src = R"(
void main() {
  int i;
  i = 0;
  while (i < 3 + 2) {
    print(i * (10 - 4), 2.0 * 3.0);
    i = i + 1;
  }
}
)";
  minic::Program plain = parsed(src);
  auto expected = run(plain);
  minic::Program opt = parsed(src);
  (void)optimized(opt);
  EXPECT_EQ(run(opt), expected);
}

TEST(Folding, LeavesFaultsForRuntime) {
  minic::Program p = parsed(R"(
void main() {
  int z;
  z = 0;
  print(1 / 0 + z);
}
)");
  OptStats stats = optimized(p);
  (void)stats;
  std::string text = minic::print_program(p);
  EXPECT_NE(text.find("1 / 0"), std::string::npos);
  // The program still faults at run time, as the VM semantics demand.
  auto compiled = vm::compile(p);
  vm::Machine m(compiled, net::arch_vax());
  (void)m.step(1000);
  EXPECT_EQ(m.state(), vm::RunState::kFault);
}

TEST(Hoisting, InvariantMovesToPreheader) {
  minic::Program p = parsed(R"(
void main() {
  int i; int a; int b; int acc;
  a = 6; b = 7; acc = 0;
  i = 0;
  while (i < 100) {
    acc = acc + a * b + i;
    i = i + 1;
  }
  print(acc);
}
)");
  OptStats stats = optimized(p);
  EXPECT_EQ(stats.expressions_hoisted, 1u);
  std::string text = minic::print_program(p);
  EXPECT_NE(text.find("int opt_t0 = a * b;"), std::string::npos) << text;
  EXPECT_NE(text.find("acc + opt_t0 + i"), std::string::npos) << text;
  EXPECT_EQ(run(p), (std::vector<std::string>{"9150"}));
}

TEST(Hoisting, AssignedVariablesAreNotInvariant) {
  minic::Program p = parsed(R"(
void main() {
  int i; int a; int acc;
  a = 6; acc = 0;
  i = 0;
  while (i < 10) {
    acc = acc + a * 3;
    a = a + 1;
    i = i + 1;
  }
  print(acc);
}
)");
  OptStats stats = optimized(p);
  EXPECT_EQ(stats.expressions_hoisted, 0u);
}

TEST(Hoisting, AddressTakenVariablesAreNotInvariant) {
  minic::Program p = parsed(R"(
void bump(int *p) { *p = *p + 1; }
void main() {
  int i; int a; int acc;
  a = 6; acc = 0;
  i = 0;
  while (i < 10) {
    acc = acc + a * 3;
    bump(&a);
    i = i + 1;
  }
  print(acc);
}
)");
  minic::Program reference = parsed(R"(
void bump(int *p) { *p = *p + 1; }
void main() {
  int i; int a; int acc;
  a = 6; acc = 0;
  i = 0;
  while (i < 10) {
    acc = acc + a * 3;
    bump(&a);
    i = i + 1;
  }
  print(acc);
}
)");
  auto expected = run(reference);
  OptStats stats = optimized(p);
  EXPECT_EQ(stats.expressions_hoisted, 0u);
  EXPECT_EQ(run(p), expected);
}

TEST(Hoisting, LabelsInLoopBlockTheHoist) {
  // The Section-4 interference: a label inside the loop means a goto can
  // enter the body without passing the preheader, so code motion is off.
  minic::Program p = parsed(R"(
void main() {
  int i; int a; int b; int acc;
  a = 6; b = 7; acc = 0;
  i = 0;
  while (i < 100) {
L:
    acc = acc + a * b;
    i = i + 1;
  }
  print(acc);
}
)");
  OptStats stats = optimized(p);
  EXPECT_EQ(stats.expressions_hoisted, 0u);
  EXPECT_EQ(stats.loops_blocked_by_labels, 1u);
}

TEST(Hoisting, TransformedModuleLoopsAreBlocked) {
  // After the reconfiguration transformation, the loops that contain
  // reconfiguration machinery (labels Li / R) refuse hoisting...
  const char* src = R"(
int acc = 0;
void work(int a, int b, int n) {
  int i;
  i = 0;
  while (i < n) {
RP:
    acc = acc + a * b;
    i = i + 1;
  }
}
void main() {
  int round;
  round = 0;
  while (round < 10) {
    work(6, 7, 50);
    round = round + 1;
  }
  print(acc);
}
)";
  minic::Program transformed = parsed(src);
  xform::prepare_module(transformed, {cfg::ReconfigPointSpec{"RP", {}, {}}});
  OptStats stats = optimize(transformed);
  minic::analyze(transformed);
  EXPECT_GE(stats.loops_blocked_by_labels, 2u)
      << "both work's RP loop and main's instrumented loop carry labels";
  // ...while the same module WITHOUT the reconfiguration point (label
  // removed) hoists the invariant.
  std::string no_label(src);
  no_label.erase(no_label.find("RP:\n"), 4);
  minic::Program plain = parsed(no_label);
  OptStats plain_stats = optimized(plain);
  EXPECT_GE(plain_stats.expressions_hoisted, 1u);
}

TEST(Hoisting, OptimizedTransformedModuleStillMigrates) {
  // Safety of composing the passes: optimize AFTER transform, then run the
  // full capture -> migrate -> restore round trip.
  const char* src = R"(
int acc = 0;
void work(int n, int *out) {
  if (n <= 0) { *out = acc; return; }
  work(n - 1, out);
RP:
  acc = acc + n * n + 3 * 4;
  *out = acc;
}
void main() {
  int r;
  int round;
  round = 0;
  while (round < 6) {
    work(5, &r);
    print(round, r);
    round = round + 1;
  }
}
)";
  minic::Program reference_prog = parsed(src);
  auto expected = run(reference_prog);

  minic::Program p = parsed(src);
  xform::prepare_module(p, {cfg::ReconfigPointSpec{"RP", {}, {}}});
  (void)optimize(p);
  minic::analyze(p);
  auto compiled = std::make_shared<vm::CompiledProgram>(vm::compile(p));

  vm::Machine old_machine(*compiled, net::arch_vax());
  (void)old_machine.step(250);
  old_machine.raise_signal();
  (void)old_machine.step(100'000'000);
  ASSERT_EQ(old_machine.state(), vm::RunState::kDone)
      << old_machine.fault_message();
  ASSERT_TRUE(old_machine.last_encoded_state().has_value());

  vm::Machine clone(*compiled, net::arch_sparc());
  clone.set_standalone_status("clone");
  clone.inject_incoming_state(*old_machine.last_encoded_state());
  (void)clone.step(100'000'000);
  ASSERT_EQ(clone.state(), vm::RunState::kDone) << clone.fault_message();

  std::vector<std::string> combined = old_machine.output();
  combined.insert(combined.end(), clone.output().begin(),
                  clone.output().end());
  EXPECT_EQ(combined, expected);
}

TEST(Hoisting, ForLoopsHoistLikeWhileLoops) {
  minic::Program p = parsed(R"(
void main() {
  int a; int b; int acc;
  a = 6; b = 7; acc = 0;
  for (int i = 0; i < 100; i = i + 1) {
    acc = acc + a * b;
  }
  print(acc);
}
)");
  OptStats stats = optimized(p);
  EXPECT_EQ(stats.expressions_hoisted, 1u);
  EXPECT_EQ(run(p), (std::vector<std::string>{"4200"}));
}

TEST(Hoisting, ForHeaderVariablesAreLoopVarying) {
  // The induction variable is assigned in the step, which lives in the
  // header, not the body: expressions using it must not hoist.
  minic::Program p = parsed(R"(
void main() {
  int acc;
  acc = 0;
  for (int i = 0; i < 10; i = i + 1) {
    acc = acc + i * 3;
  }
  print(acc);
}
)");
  OptStats stats = optimized(p);
  EXPECT_EQ(stats.expressions_hoisted, 0u);
  EXPECT_EQ(run(p), (std::vector<std::string>{"135"}));
}

TEST(Hoisting, LabeledForLoopIsBlocked) {
  minic::Program p = parsed(R"(
void main() {
  int a; int b; int acc;
  a = 6; b = 7; acc = 0;
  for (int i = 0; i < 100; i = i + 1) {
L:
    acc = acc + a * b;
  }
  print(acc);
}
)");
  OptStats stats = optimized(p);
  EXPECT_EQ(stats.expressions_hoisted, 0u);
  EXPECT_EQ(stats.loops_blocked_by_labels, 1u);
}

TEST(Hoisting, NestedLoopsHoistInner) {
  minic::Program p = parsed(R"(
void main() {
  int i; int j; int a; int acc;
  a = 5; acc = 0;
  i = 0;
  while (i < 10) {
    j = 0;
    while (j < 10) {
      acc = acc + a * a;
      j = j + 1;
    }
    i = i + 1;
  }
  print(acc);
}
)");
  OptStats stats = optimized(p);
  EXPECT_GE(stats.expressions_hoisted, 1u);
  EXPECT_EQ(run(p), (std::vector<std::string>{"2500"}));
}

TEST(Hoisting, TempNamesAvoidCollisions) {
  minic::Program p = parsed(R"(
void main() {
  int i; int a; int b; int opt_t0; int acc;
  a = 2; b = 3; opt_t0 = 9; acc = 0;
  i = 0;
  while (i < 4) {
    acc = acc + a * b;
    i = i + 1;
  }
  print(acc, opt_t0);
}
)");
  (void)optimized(p);  // must not throw a duplicate-variable error
  EXPECT_EQ(run(p), (std::vector<std::string>{"24 9"}));
}

// Property: folding any randomly generated literal expression agrees with
// the VM's own evaluation of the unfolded form.
class FoldProperty : public ::testing::TestWithParam<std::uint64_t> {};

std::string random_literal_expr(support::SplitMix64& rng, int depth) {
  if (depth == 0 || rng.next_below(3) == 0) {
    // Leaf: an int or real literal (small, to keep arithmetic exact).
    if (rng.next_below(2) == 0) {
      return std::to_string(static_cast<int>(rng.next_below(19)) - 9);
    }
    return std::to_string(static_cast<int>(rng.next_below(19)) - 9) + "." +
           std::to_string(rng.next_below(4) * 25);
  }
  const char* ops[] = {"+", "-", "*"};
  return "(" + random_literal_expr(rng, depth - 1) + " " +
         ops[rng.next_below(3)] + " " + random_literal_expr(rng, depth - 1) +
         ")";
}

TEST_P(FoldProperty, FoldedMatchesUnfoldedEvaluation) {
  support::SplitMix64 rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    std::string expr = "(" + random_literal_expr(rng, 2) + " + " +
                       random_literal_expr(rng, 2) + ")";
    std::string src = "void main() { print(" + expr + "); }";
    minic::Program plain = parsed(src);
    auto expected = run(plain);
    minic::Program folded = parsed(src);
    OptStats stats = optimized(folded);
    EXPECT_GT(stats.expressions_folded, 0u) << expr;
    EXPECT_EQ(run(folded), expected) << expr;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Optimizer, DisabledPassesDoNothing) {
  minic::Program p = parsed(R"(
void main() {
  int i; int a; int acc;
  a = 6; acc = 1 + 2;
  i = 0;
  while (i < 4) { acc = acc + a * 3; i = i + 1; }
  print(acc);
}
)");
  OptOptions off;
  off.fold_constants = false;
  off.hoist_loop_invariants = false;
  OptStats stats = optimize(p, off);
  EXPECT_EQ(stats.expressions_folded, 0u);
  EXPECT_EQ(stats.expressions_hoisted, 0u);
}

}  // namespace
}  // namespace surgeon::opt
