// Dispatch-mode parity: the threaded (computed-goto) loop and the portable
// switch loop must be observationally identical, instruction for
// instruction. Every program here runs under both modes — and, where it
// matters, both fused and unfused — comparing printed output, instruction
// accounting (per-step and total), run state, the native frame image at a
// mid-run synchronization point, capture/encode results, and profiler
// sample attribution. The bottom of the file spot-checks the 215 chaos
// seeds: golden (fault-free) runs must be byte-identical across modes, so
// the dispatch rewrite cannot have moved any virtual-time crash point.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "chaos/scenario.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "vm/compiler.hpp"
#include "vm/machine.hpp"
#include "xform/transform.hpp"

namespace surgeon::vm {
namespace {

// --- trace harness ----------------------------------------------------------

/// One profiler hit, with everything a sampler can attribute.
struct SampleRecord {
  std::uint64_t at = 0;  // instructions_executed() at the hit
  std::uint32_t fn = 0;
  std::optional<Op> op;
  std::vector<Op> window;
  std::vector<std::uint32_t> stack;

  friend bool operator==(const SampleRecord& a, const SampleRecord& b) {
    return std::tie(a.at, a.fn, a.op, a.window, a.stack) ==
           std::tie(b.at, b.fn, b.op, b.window, b.stack);
  }
};

class RecordingSink : public SampleSink {
 public:
  void on_sample(const Machine& m) override {
    SampleRecord r;
    r.at = m.instructions_executed();
    r.fn = m.current_function();
    r.op = m.current_op();
    r.window = m.peek_ops(4);
    m.stack_functions(r.stack);
    records.push_back(std::move(r));
  }
  std::vector<SampleRecord> records;
};

/// Everything observable about one run. Two runs are "parity-equal" when
/// every field matches.
struct Trace {
  std::vector<std::string> output;
  std::uint64_t instructions = 0;
  RunState state = RunState::kRunnable;
  std::string fault;
  std::vector<std::uint64_t> chunk_insns;  // per-step(chunk) accounting
  std::vector<std::uint8_t> frame_image;   // native image at sync point
  std::vector<std::uint8_t> encoded;       // capture block output, if any
  std::vector<SampleRecord> samples;
};

struct TraceOptions {
  std::uint64_t chunk = 1 << 20;    // step() budget per call
  std::uint64_t sample_period = 0;  // 0 = profiler disarmed
  std::uint64_t signal_at = 0;      // raise_signal() once past this count
  std::uint64_t image_at = 0;       // snapshot raw_frame_image() once past
};

Trace run_trace(const CompiledProgram& prog, DispatchMode mode,
                const TraceOptions& opt = {}) {
  Machine m(prog, net::arch_vax());
  m.set_dispatch_mode(mode);
  RecordingSink sink;
  if (opt.sample_period != 0) {
    m.set_sample_sink(&sink);
    m.set_sample_period(opt.sample_period);
  }
  Trace t;
  bool signalled = opt.signal_at == 0;
  bool imaged = opt.image_at == 0;
  for (int guard = 0; guard < 4'000'000; ++guard) {
    if (m.state() != RunState::kRunnable) break;
    auto r = m.step(opt.chunk);
    t.chunk_insns.push_back(r.instructions);
    if (!signalled && m.instructions_executed() >= opt.signal_at) {
      m.raise_signal();
      signalled = true;
    }
    if (!imaged && m.instructions_executed() >= opt.image_at &&
        m.state() == RunState::kRunnable) {
      t.frame_image = m.raw_frame_image();
      imaged = true;
    }
    if (r.state == RunState::kBlockedRead ||
        r.state == RunState::kBlockedDecode) {
      break;  // nothing unblocks a standalone machine
    }
  }
  t.output = m.output();
  t.instructions = m.instructions_executed();
  t.state = m.state();
  t.fault = m.fault_message();
  if (m.last_encoded_state().has_value()) {
    t.encoded = m.last_encoded_state()->encode();
  }
  t.samples = std::move(sink.records);
  return t;
}

void expect_parity(const Trace& threaded, const Trace& sw, const char* what) {
  EXPECT_EQ(threaded.output, sw.output) << what;
  EXPECT_EQ(threaded.instructions, sw.instructions) << what;
  EXPECT_EQ(threaded.state, sw.state) << what;
  EXPECT_EQ(threaded.fault, sw.fault) << what;
  EXPECT_EQ(threaded.chunk_insns, sw.chunk_insns) << what;
  EXPECT_EQ(threaded.frame_image, sw.frame_image) << what;
  EXPECT_EQ(threaded.encoded, sw.encoded) << what;
  EXPECT_EQ(threaded.samples, sw.samples) << what;
}

/// Runs one compiled program under both dispatch modes with the same
/// options and requires identical traces. Returns the threaded trace for
/// further assertions. Degenerates to switch-vs-switch (still a useful
/// fused/stepping check) when the toolchain has no computed goto.
Trace check_modes(const CompiledProgram& prog, const TraceOptions& opt = {},
                  const char* what = "program") {
  Trace sw = run_trace(prog, DispatchMode::kSwitch, opt);
  if (!threaded_dispatch_supported()) return sw;
  Trace th = run_trace(prog, DispatchMode::kThreaded, opt);
  expect_parity(th, sw, what);
  return th;
}

CompiledProgram compile_opts(const std::string& src, bool fuse) {
  minic::Program prog = minic::parse_program(src);
  minic::analyze(prog);
  return compile(prog, CompileOptions{.fuse = fuse});
}

bool has_superinstruction(const CompiledProgram& prog) {
  for (const auto& fn : prog.functions) {
    for (const auto& insn : fn.code) {
      if (is_superinstruction(insn.op)) return true;
    }
  }
  return false;
}

// --- corpus -----------------------------------------------------------------

/// Tight loop: compare+branch loop edges plus slot/const arithmetic — the
/// exact shapes the peephole pass fuses.
const char* kTightLoop = R"(
void main() {
  int i; int sum; int prod;
  i = 0; sum = 0; prod = 1;
  while (i < 200) {
    sum = sum + i;
    sum = sum - 2;
    prod = (prod * 3) % 1000003;
    if (i != 199) { sum = sum + 1; }
    if (i >= 100) { sum = sum * 2 % 65536; }
    if (i <= 50)  { sum = sum - i; }
    if (i > 150)  { sum = sum + prod % 17; }
    i = i + 1;
  }
  print(sum, prod);
}
)";

/// Call-heavy: recursion, pointer out-params, globals across calls.
const char* kCallHeavy = R"(
int calls = 0;

int fib(int n) {
  calls = calls + 1;
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}

void accum(int n, int *out) {
  if (n <= 0) { return; }
  *out = *out + fib(n % 12);
  accum(n - 1, out);
}

void main() {
  int total;
  total = 0;
  accum(25, &total);
  print(total, calls);
}
)";

/// Strings, heap, floats, casts: the value-kind corners of every fused
/// arithmetic handler.
const char* kMixedValues = R"(
void main() {
  string s; float f; int *p; int i; int n;
  s = "x";
  f = 1.5;
  n = 6;
  p = mh_alloc_int(n);
  i = 0;
  while (i < n) {
    p[i] = i * i;
    s = s + "y";
    f = f * 1.25;
    i = i + 1;
  }
  i = 0;
  while (i < n) {
    print(i, p[i], s < "xz", (int)f);
    i = i + 1;
  }
  mh_free(p);
  print(s == "xyyyyyy", f > 4.0);
}
)";

/// Flag cascade via the real transformation: every statement boundary in
/// work() tests the reconfiguration flag, so the hot path is wall-to-wall
/// kStmtFlagJf superinstructions.
std::string worker_source(int rounds, int depth) {
  return R"(
int acc = 0;

void work(int n, int *out) {
  if (n <= 0) { *out = acc; return; }
  work(n - 1, out);
RP:
  acc = acc + n * n;
  *out = acc;
}

void main() {
  int r;
  int round;
  round = 0;
  while (round < )" +
         std::to_string(rounds) + R"() {
    work()" +
         std::to_string(depth) + R"(, &r);
    print(round, r);
    round = round + 1;
  }
  print("final", acc);
}
)";
}

CompiledProgram compile_worker(int rounds, int depth, bool fuse) {
  minic::Program prog = minic::parse_program(worker_source(rounds, depth));
  minic::analyze(prog);
  xform::prepare_module(prog, {cfg::ReconfigPointSpec{"RP", {}, {}}}, {});
  return compile(prog, CompileOptions{.fuse = fuse});
}

// --- parity: full-speed runs ------------------------------------------------

TEST(DispatchParity, TightLoopFused) {
  auto prog = compile_opts(kTightLoop, /*fuse=*/true);
  ASSERT_TRUE(has_superinstruction(prog));
  Trace t = check_modes(prog, {}, "tight loop");
  EXPECT_EQ(t.state, RunState::kDone) << t.fault;
  ASSERT_EQ(t.output.size(), 1u);
}

TEST(DispatchParity, CallHeavyFused) {
  auto prog = compile_opts(kCallHeavy, /*fuse=*/true);
  Trace t = check_modes(prog, {}, "call heavy");
  EXPECT_EQ(t.state, RunState::kDone) << t.fault;
  // total = sum of fib(n % 12) for n = 25..1 = 232 + 0 + 232 + 0 + 1;
  // calls = matching invocation counts (2*fib(k+1) - 1 per top-level call).
  EXPECT_EQ(t.output, std::vector<std::string>{"465 1481"});
}

TEST(DispatchParity, MixedValuesFused) {
  auto prog = compile_opts(kMixedValues, /*fuse=*/true);
  Trace t = check_modes(prog, {}, "mixed values");
  EXPECT_EQ(t.state, RunState::kDone) << t.fault;
}

TEST(DispatchParity, FaultDiagnosticsIdentical) {
  // The off-the-end sentinel and arithmetic faults must produce the same
  // message and the same instruction count in both loops.
  for (const char* src : {
           "void main() { int a; a = 1 / 0; print(a); }",
           "void main() { int *p; print(*p); }",
           "void main() { int* p; p = mh_alloc_int(1); mh_free(p); "
           "mh_free(p); }",
           "void main() { int* p; p = mh_alloc_int(2); print(p[5]); }",
           "void f() { f(); } void main() { f(); }",
       }) {
    auto prog = compile_opts(src, /*fuse=*/true);
    Trace t = check_modes(prog, {}, src);
    EXPECT_EQ(t.state, RunState::kFault) << src;
    EXPECT_FALSE(t.fault.empty()) << src;
  }
}

// --- parity: stepping and budget boundaries ---------------------------------

// step(1) must execute exactly one *component* instruction even when the
// head of a fused sequence is next: the loop takes the slow path and runs
// the plain head opcode.
TEST(DispatchParity, SingleSteppingRunsOneComponentPerStep) {
  auto prog = compile_opts(kTightLoop, /*fuse=*/true);
  TraceOptions opt;
  opt.chunk = 1;
  Trace t = check_modes(prog, opt, "single step");
  EXPECT_EQ(t.state, RunState::kDone) << t.fault;
  for (std::uint64_t n : t.chunk_insns) EXPECT_EQ(n, 1u);
  // Identical totals to the full-speed run: budget handling never skips or
  // double-counts a component.
  Trace full = run_trace(prog, DispatchMode::kSwitch, {});
  EXPECT_EQ(t.instructions, full.instructions);
  EXPECT_EQ(t.output, full.output);
}

// Awkward budgets land mid-fused-sequence on every step; accounting and
// results must not care.
TEST(DispatchParity, OddStepBudgetsLandInsideFusedSequences) {
  auto prog = compile_opts(kTightLoop, /*fuse=*/true);
  Trace full = run_trace(prog, DispatchMode::kSwitch, {});
  for (std::uint64_t chunk : {2u, 3u, 5u, 7u, 13u, 61u}) {
    TraceOptions opt;
    opt.chunk = chunk;
    Trace t = check_modes(prog, opt, "odd budget");
    EXPECT_EQ(t.output, full.output) << "chunk " << chunk;
    EXPECT_EQ(t.instructions, full.instructions) << "chunk " << chunk;
    for (std::uint64_t n : t.chunk_insns) EXPECT_LE(n, chunk);
  }
}

// --- parity: fused vs unfused -----------------------------------------------

// Fusion is a pure dispatch-cost optimization: identical output AND
// identical instruction accounting (a fused op counts op_width components),
// so virtual time is unchanged and chaos goldens cannot shift.
TEST(DispatchParity, FusedAndUnfusedAgreeOnEverythingObservable) {
  for (const char* src : {kTightLoop, kCallHeavy, kMixedValues}) {
    auto fused = compile_opts(src, /*fuse=*/true);
    auto plain = compile_opts(src, /*fuse=*/false);
    ASSERT_FALSE(has_superinstruction(plain));
    for (std::uint64_t chunk : {std::uint64_t{1} << 20, std::uint64_t{7}}) {
      TraceOptions opt;
      opt.chunk = chunk;
      Trace tf = run_trace(fused, DispatchMode::kSwitch, opt);
      Trace tp = run_trace(plain, DispatchMode::kSwitch, opt);
      EXPECT_EQ(tf.output, tp.output);
      EXPECT_EQ(tf.instructions, tp.instructions);
      EXPECT_EQ(tf.state, tp.state);
      if (threaded_dispatch_supported()) {
        Trace tt = run_trace(fused, DispatchMode::kThreaded, opt);
        EXPECT_EQ(tt.output, tp.output);
        EXPECT_EQ(tt.instructions, tp.instructions);
      }
    }
  }
}

// --- parity: capture, frame images, signals ---------------------------------

// Signal mid-recursion in a transformed module: the capture block walks the
// AR stack and divulges abstract state. The encoded bytes must be identical
// across modes, and across fused/unfused code (capture reads pc values that
// fusion must not have moved).
TEST(DispatchParity, CapturedStateByteIdenticalAcrossModes) {
  auto fused = compile_worker(50, 6, /*fuse=*/true);
  ASSERT_TRUE(has_superinstruction(fused));
  TraceOptions opt;
  opt.chunk = 40;  // deliver the signal at an interesting depth
  opt.signal_at = 200;
  Trace t = check_modes(fused, opt, "worker capture");
  EXPECT_EQ(t.state, RunState::kDone) << t.fault;
  EXPECT_FALSE(t.encoded.empty());

  auto plain = compile_worker(50, 6, /*fuse=*/false);
  Trace tp = run_trace(plain, DispatchMode::kSwitch, opt);
  EXPECT_EQ(t.encoded, tp.encoded);
  EXPECT_EQ(t.output, tp.output);
  EXPECT_EQ(t.instructions, tp.instructions);
}

TEST(DispatchParity, RawFrameImageIdenticalAtSyncPoint) {
  auto prog = compile_opts(kCallHeavy, /*fuse=*/true);
  TraceOptions opt;
  opt.chunk = 97;
  opt.image_at = 500;  // mid-recursion
  Trace t = check_modes(prog, opt, "frame image");
  EXPECT_FALSE(t.frame_image.empty());
}

// --- parity: profiler attribution -------------------------------------------

// Samples must fire at the same executed-instruction counts and attribute
// to the same function/opcode/stack in both modes. Periods that are coprime
// with the fused widths force countdown expiry inside fused sequences,
// where the loop must fall back to single-stepping the components.
TEST(DispatchParity, SampleAttributionIdentical) {
  for (std::uint64_t period : {3u, 7u, 11u}) {
    for (bool fuse : {true, false}) {
      auto prog = compile_worker(10, 5, fuse);
      TraceOptions opt;
      opt.sample_period = period;
      Trace t = check_modes(prog, opt, "sampling");
      EXPECT_EQ(t.state, RunState::kDone) << t.fault;
      ASSERT_FALSE(t.samples.empty());
      // Sample hit counts are denominated in component instructions, so the
      // cadence is exact regardless of fusion.
      for (std::size_t i = 0; i < t.samples.size(); ++i) {
        EXPECT_EQ(t.samples[i].at, period * (i + 1)) << "period " << period;
      }
    }
  }
}

// Fused and unfused code attribute samples to the same source position.
// Samples only ever fire at component-instruction boundaries: a countdown
// that would expire *inside* a fused sequence forces the slow path, which
// runs the components singly, so the sample lands either on a preserved
// interior instruction (identical op in both builds) or on a sequence head
// (the fused op, whose first component is the plain build's op).
TEST(DispatchParity, SamplesInsideFusedSequencesLandOnComponentBoundaries) {
  auto fused = compile_worker(10, 5, /*fuse=*/true);
  auto plain = compile_worker(10, 5, /*fuse=*/false);
  TraceOptions opt;
  opt.sample_period = 7;
  Trace tf = run_trace(fused, DispatchMode::kSwitch, opt);
  Trace tp = run_trace(plain, DispatchMode::kSwitch, opt);
  ASSERT_EQ(tf.samples.size(), tp.samples.size());
  for (std::size_t i = 0; i < tf.samples.size(); ++i) {
    EXPECT_EQ(tf.samples[i].at, tp.samples[i].at);
    EXPECT_EQ(tf.samples[i].fn, tp.samples[i].fn);
    EXPECT_EQ(tf.samples[i].stack, tp.samples[i].stack);
    ASSERT_TRUE(tf.samples[i].op.has_value());
    ASSERT_TRUE(tp.samples[i].op.has_value());
    EXPECT_EQ(op_first_component(*tf.samples[i].op), *tp.samples[i].op)
        << "sample " << i << " at " << tf.samples[i].at;
  }
}

// --- the 215-seed chaos spot-check ------------------------------------------

/// Restores the process-wide default dispatch mode even on test failure.
struct DefaultModeGuard {
  DispatchMode saved = default_dispatch_mode();
  ~DefaultModeGuard() { set_default_dispatch_mode(saved); }
};

// Golden (fault-free) chaos runs drive whole applications — runtime,
// virtual clock, bus, reconfiguration — off instruction counts. If the
// rewrite changed any observable accounting, some seed's golden output
// diverges between the two dispatch modes.
TEST(DispatchParity, ChaosGoldenRunsByteIdenticalAcross215Seeds) {
  if (!threaded_dispatch_supported()) {
    GTEST_SKIP() << "no computed goto on this toolchain";
  }
  DefaultModeGuard guard;
  for (std::uint64_t seed = 1; seed <= 215; ++seed) {
    chaos::ScenarioSpec spec = chaos::random_scenario(seed);
    set_default_dispatch_mode(DispatchMode::kSwitch);
    const std::vector<std::string> golden_switch = chaos::golden_output(spec);
    set_default_dispatch_mode(DispatchMode::kThreaded);
    const std::vector<std::string> golden_threaded =
        chaos::golden_output(spec);
    ASSERT_EQ(golden_threaded, golden_switch) << "seed " << seed;
  }
}

}  // namespace
}  // namespace surgeon::vm
