// Tests of the SLO plane (surgeon::slo): objective-spec parsing, the
// sliding-window engine and its multi-window burn-rate detectors, the
// streaming RequestTracker's hop assembly and eviction bounds, the
// Probe -> Monitor record stream over the diurnal workload, the monitor's
// own Figure 5 replacement (report byte-identical, alert id sequence
// gap-free across 215 chaos seeds), and the surgeon_slo_* exporter lines
// under replacement churn.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "app/runtime.hpp"
#include "bus/client.hpp"
#include "chaos/fault.hpp"
#include "obs/export.hpp"
#include "reconfig/scripts.hpp"
#include "slo/monitor.hpp"
#include "slo/request.hpp"
#include "slo/slo.hpp"
#include "support/diag.hpp"
#include "workload.hpp"

namespace surgeon::slo {
namespace {

// --- objective specs ---------------------------------------------------------

TEST(ObjectiveSpec, ParsesFullSpec) {
  Objective obj = parse_objective(
      "pipeline-p99 service=pipeline p99<2000us window=60s fast=5s@14 "
      "slow=30s@6");
  EXPECT_EQ(obj.name, "pipeline-p99");
  EXPECT_EQ(obj.service, "pipeline");
  EXPECT_DOUBLE_EQ(obj.quantile, 0.99);
  EXPECT_EQ(obj.threshold_us, 2000u);
  EXPECT_EQ(obj.window_us, 60'000'000u);
  EXPECT_EQ(obj.fast_window_us, 5'000'000u);
  EXPECT_DOUBLE_EQ(obj.fast_burn, 14.0);
  EXPECT_EQ(obj.slow_window_us, 30'000'000u);
  EXPECT_DOUBLE_EQ(obj.slow_burn, 6.0);
}

TEST(ObjectiveSpec, DefaultsAndUnits) {
  Objective obj = parse_objective("o service=s p99.9<2ms");
  EXPECT_DOUBLE_EQ(obj.quantile, 0.999);
  EXPECT_EQ(obj.threshold_us, 2000u);
  // The slow detector window follows the attainment window by default.
  Objective windowed = parse_objective("o service=s p50<1s window=30s");
  EXPECT_EQ(windowed.threshold_us, 1'000'000u);
  EXPECT_EQ(windowed.window_us, 30'000'000u);
  EXPECT_EQ(windowed.slow_window_us, 30'000'000u);
}

TEST(ObjectiveSpec, MalformedSpecsThrow) {
  EXPECT_THROW(parse_objective(""), support::BusError);
  EXPECT_THROW(parse_objective("name-only"), support::BusError);
  EXPECT_THROW(parse_objective("o service=s"), support::BusError);
  EXPECT_THROW(parse_objective("o service=s p99<2furlongs"),
               support::BusError);
  EXPECT_THROW(parse_objective("o service=s p200<2us"), support::BusError);
  EXPECT_THROW(parse_objective("o service=s p99<2us bogus=1"),
               support::BusError);
}

// --- engine ------------------------------------------------------------------

Completion make_completion(net::SimTime completed_at, net::SimTime latency) {
  Completion c;
  c.request = completed_at;  // unique enough for tests
  c.completed_at = completed_at;
  c.started_at = completed_at - latency;
  c.latency_us = latency;
  return c;
}

TEST(Engine, AttainmentOverSlidingWindow) {
  Engine engine;
  engine.add_objective(parse_objective("o service=s p99<1000us window=10s"));
  // 8 good + 2 bad inside the window.
  for (int i = 0; i < 8; ++i) {
    engine.observe("s", make_completion(1'000'000 + i * 1000, 500));
  }
  engine.observe("s", make_completion(2'000'000, 5'000));
  engine.observe("s", make_completion(2'001'000, 5'000));
  auto status = engine.objective_status(3'000'000);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].window_total, 10u);
  EXPECT_EQ(status[0].window_bad, 2u);
  EXPECT_DOUBLE_EQ(status[0].attainment, 0.8);
  EXPECT_EQ(status[0].violations_total, 2u);
  // 15s later the window has slid past everything.
  auto later = engine.objective_status(18'000'000);
  EXPECT_EQ(later[0].window_total, 0u);
  EXPECT_DOUBLE_EQ(later[0].attainment, 1.0);
  EXPECT_EQ(later[0].violations_total, 2u);  // lifetime counter stays
}

TEST(Engine, DuplicateObjectiveNameThrows) {
  Engine engine;
  engine.add_objective(parse_objective("o service=s p99<1000us"));
  EXPECT_THROW(engine.add_objective(parse_objective("o service=s p50<1us")),
               support::BusError);
}

TEST(Engine, BurnRateAlertsFireAndClearWithAscendingIds) {
  Engine engine;
  engine.add_objective(
      parse_objective("o service=s p99<1000us window=60s fast=5s@2 slow=10s@2"));
  // Saturate both windows with 100% bad traffic: burn = 100x the budget.
  for (int i = 0; i < 50; ++i) {
    engine.observe("s", make_completion(1'000'000 + i * 1000, 5'000));
  }
  std::vector<AlertEvent> fired = engine.evaluate(1'100'000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, AlertEvent::Kind::kFire);
  EXPECT_EQ(fired[0].id, 1u);
  EXPECT_EQ(fired[0].objective, "o");
  EXPECT_GT(fired[0].burn_fast, 2.0);
  // Still firing: edge-triggered, no repeat.
  EXPECT_TRUE(engine.evaluate(1'200'000).empty());
  // Far later both windows are clean: a clear event with the next id.
  std::vector<AlertEvent> cleared = engine.evaluate(100'000'000);
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared[0].kind, AlertEvent::Kind::kClear);
  EXPECT_EQ(cleared[0].id, 2u);
  EXPECT_EQ(engine.next_alert_id(), 3u);
}

TEST(Engine, BlackoutCorrelation) {
  Engine engine;
  engine.add_objective(parse_objective("o service=s p99<1000us"));
  engine.note_blackout(2'000'000, 2'010'000);
  engine.observe("s", make_completion(1'500'000, 5'000));  // outside
  engine.observe("s", make_completion(2'005'000, 5'000));  // inside
  auto status = engine.objective_status(3'000'000);
  EXPECT_EQ(status[0].violations_total, 2u);
  EXPECT_EQ(status[0].blackout_violations_total, 1u);
}

TEST(Engine, WorstHopAttribution) {
  Engine engine;
  engine.add_objective(parse_objective("o service=s p99<1000us"));
  Completion c = make_completion(1'000'000, 500);
  c.hops.push_back(Completion::Hop{"filter", 10, 5});
  c.hops.push_back(Completion::Hop{"sink", 400, 0});
  engine.observe("s", c);
  auto services = engine.service_status(1'500'000);
  ASSERT_EQ(services.size(), 1u);
  EXPECT_EQ(services[0].worst_hop, "sink");
  ASSERT_EQ(services[0].hops.size(), 2u);
  EXPECT_EQ(services[0].hops[0].module, "filter");
  EXPECT_EQ(services[0].hops[0].queue_us, 10u);
  EXPECT_EQ(services[0].hops[0].handler_us, 5u);
}

TEST(Engine, StateRoundTripPreservesWindowsCountersAndAlertIds) {
  Engine engine;
  engine.add_objective(
      parse_objective("o service=s p99<1000us window=10s fast=5s@2 slow=5s@2"));
  engine.note_blackout(900'000, 910'000);
  for (int i = 0; i < 20; ++i) {
    engine.observe("s", make_completion(1'000'000 + i * 1000,
                                        i % 2 == 0 ? 500 : 5'000));
  }
  (void)engine.evaluate(1'100'000);  // consume an alert id

  Engine clone;
  clone.install_state(engine.encode_state());
  EXPECT_EQ(clone.next_alert_id(), engine.next_alert_id());
  EXPECT_EQ(clone.completions_total(), engine.completions_total());
  ASSERT_EQ(clone.objectives().size(), 1u);
  EXPECT_EQ(clone.objectives()[0], engine.objectives()[0]);
  auto a = engine.objective_status(1'200'000);
  auto b = clone.objective_status(1'200'000);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].window_total, b[0].window_total);
  EXPECT_EQ(a[0].window_bad, b[0].window_bad);
  EXPECT_EQ(a[0].firing, b[0].firing);
  EXPECT_EQ(a[0].violations_total, b[0].violations_total);
  EXPECT_EQ(a[0].blackout_violations_total, b[0].blackout_violations_total);
  EXPECT_EQ(clone.blackouts(), engine.blackouts());
  // The clone continues the alert sequence, it does not re-fire.
  EXPECT_TRUE(clone.evaluate(1'300'000).empty());
}

// --- request tracker ---------------------------------------------------------

trace::Event make_event(trace::EventKind kind, const std::string& module,
                        net::SimTime at, std::uint64_t request,
                        std::uint64_t cause = 0,
                        const std::string& detail = "") {
  trace::Event ev;
  ev.kind = kind;
  ev.module = module;
  ev.at = at;
  ev.request = request;
  ev.cause = cause;
  ev.detail = detail;
  return ev;
}

TEST(RequestTrackerTest, AssemblesLatencyAndHopsFromEventStream) {
  using trace::EventKind;
  RequestTracker tracker;
  // Entry send at t=100, filter hop, sink terminal at t=400.
  tracker.observe(make_event(EventKind::kSend, "loadgen", 100, 7));
  tracker.observe(make_event(EventKind::kDeliver, "filter", 110, 7, 1));
  tracker.observe(make_event(EventKind::kReceive, "filter", 130, 7, 1));
  tracker.observe(make_event(EventKind::kSend, "filter", 150, 7, 2));
  tracker.observe(make_event(EventKind::kDeliver, "sink", 160, 7, 3));
  tracker.observe(
      make_event(EventKind::kReceive, "sink", 400, 7, 3, "in (terminal)"));
  EXPECT_EQ(tracker.open(), 0u);
  std::vector<Completion> done = tracker.drain();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].request, 7u);
  EXPECT_EQ(done[0].latency_us, 300u);
  EXPECT_TRUE(done[0].complete);
  ASSERT_EQ(done[0].hops.size(), 2u);
  EXPECT_EQ(done[0].hops[0].module, "filter");
  EXPECT_EQ(done[0].hops[0].queue_us, 30u);    // entry send 100 -> receive 130
  EXPECT_EQ(done[0].hops[0].handler_us, 20u);  // receive 130 -> send 150
  EXPECT_EQ(done[0].hops[1].module, "sink");
  EXPECT_EQ(done[0].hops[1].queue_us, 250u);   // send 150 -> receive 400
  EXPECT_EQ(done[0].hops[1].handler_us, 0u);   // terminal: no forwarding send
  EXPECT_EQ(tracker.completions_total(), 1u);
}

TEST(RequestTrackerTest, UntaggedEventsIgnoredAndMidStreamAttachIsPartial) {
  using trace::EventKind;
  RequestTracker tracker;
  tracker.observe(make_event(EventKind::kSend, "a", 50, 0));  // untagged
  EXPECT_EQ(tracker.open(), 0u);
  // Attach mid-request: the entry send for 9 was never seen, so a receive
  // alone must not fabricate a completion start.
  tracker.observe(make_event(EventKind::kSend, "loadgen", 100, 9));
  tracker.observe(
      make_event(EventKind::kReceive, "sink", 300, 9, 4, "in (terminal)"));
  std::vector<Completion> done = tracker.drain();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_FALSE(done[0].complete);  // the deliver record was missing
}

TEST(RequestTrackerTest, OpenTableBoundEvictsOldest) {
  using trace::EventKind;
  RequestTracker tracker(/*max_open=*/2);
  tracker.observe(make_event(EventKind::kSend, "loadgen", 100, 1));
  tracker.observe(make_event(EventKind::kSend, "loadgen", 110, 2));
  tracker.observe(make_event(EventKind::kSend, "loadgen", 120, 3));
  EXPECT_EQ(tracker.open(), 2u);
  EXPECT_EQ(tracker.evicted_open(), 1u);
  // Request 1 was shed: its terminal no longer completes anything.
  tracker.observe(
      make_event(EventKind::kReceive, "sink", 400, 1, 5, "in (terminal)"));
  EXPECT_TRUE(tracker.drain().empty());
}

// --- probe -> monitor over the diurnal workload ------------------------------

struct Plane {
  bench::DiurnalScenario scenario;
  std::unique_ptr<Monitor> monitor;
  std::unique_ptr<Probe> probe;
};

Plane make_plane(std::uint64_t requests, net::SimTime day_us,
                 const std::string& objective =
                     "pipeline-p99 service=pipeline p99<2500us window=60s") {
  Plane p;
  bench::DiurnalSpec spec;
  spec.requests = requests;
  spec.day_us = day_us;
  p.scenario = bench::make_diurnal_pipeline(spec);
  p.scenario.runtime->enable_metrics();
  p.monitor = std::make_unique<Monitor>(p.scenario.runtime->bus(), "slomon",
                                        "sparc");
  p.monitor->add_objective(parse_objective(objective));
  p.probe = std::make_unique<Probe>(p.scenario.runtime->bus(),
                                    p.scenario.runtime->tracer(), "vax",
                                    "pipeline", "slomon");
  return p;
}

void run_day(Plane& p) {
  constexpr std::uint64_t kRounds = 100'000'000'000ULL;
  p.scenario.source->start();
  ASSERT_TRUE(p.scenario.runtime->run_until(
      [&] { return p.scenario.source->done(); }, kRounds));
  p.scenario.runtime->run_for(500'000, kRounds);
}

TEST(ProbeMonitor, StreamsEveryCompletionIntoTheEngine) {
  Plane p = make_plane(800, 20'000'000);
  run_day(p);
  EXPECT_EQ(p.monitor->engine().completions_total(),
            p.scenario.source->sent());
  EXPECT_EQ(p.monitor->malformed_dropped(), 0u);
  EXPECT_GT(p.probe->batches_sent(), 0u);
  // Batching amortizes: far fewer record messages than completions.
  EXPECT_LT(p.probe->batches_sent(), p.scenario.source->sent() / 2);
  auto services = p.monitor->engine().service_status(
      p.scenario.runtime->now());
  ASSERT_EQ(services.size(), 1u);
  EXPECT_EQ(services[0].service, "pipeline");
  EXPECT_FALSE(services[0].hops.empty());
  EXPECT_FALSE(services[0].worst_hop.empty());
  // surgeon_slo_* metrics flowed through obs.
  EXPECT_EQ(p.scenario.runtime->metrics().counter_value(
                "surgeon_slo_completions_total", {{"service", "pipeline"}}),
            p.scenario.source->sent());
}

TEST(ProbeMonitor, ReportIsByteStableAndJsonRendersBothFormats) {
  Plane a = make_plane(500, 10'000'000);
  run_day(a);
  Plane b = make_plane(500, 10'000'000);
  run_day(b);
  EXPECT_EQ(a.monitor->report("json"), b.monitor->report("json"));
  EXPECT_EQ(a.monitor->report("text"), b.monitor->report("text"));
  const std::string json = a.monitor->report("json");
  EXPECT_NE(json.find("\"objectives\":["), std::string::npos);
  EXPECT_NE(json.find("\"worst_hop\":"), std::string::npos);
  // The client query answers through the bus with the same bytes.
  bus::Client query(a.scenario.runtime->bus(), a.monitor->module_name());
  EXPECT_EQ(query.mh_slo("json"), json);
}

// --- monitor replacement -----------------------------------------------------

// An alert subscriber: ordinary bus module whose queue the test drains.
class AlertSink {
 public:
  explicit AlertSink(bus::Bus& bus, const std::string& monitor_module)
      : bus_(&bus), client_(bus, "alertsink") {
    bus::ModuleInfo info;
    info.name = "alertsink";
    info.machine = "vax";
    info.source = kSloSource;
    info.interfaces.push_back(
        bus::InterfaceSpec{"in", bus::IfaceRole::kUse, "", ""});
    bus_->add_module(std::move(info));
    bus_->add_binding(bus::BindingEnd{monitor_module, "alerts"},
                      bus::BindingEnd{"alertsink", "in"});
  }
  /// Drains delivered alert messages into ids(); returns new-alert count.
  std::size_t drain() {
    std::size_t n = 0;
    while (auto msg = client_.try_read("in")) {
      if (!msg->values.empty() && msg->values[0].is_int()) {
        ids_.push_back(static_cast<std::uint64_t>(msg->values[0].as_int()));
      } else {
        ++malformed_;
      }
      ++n;
    }
    return n;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& ids() const noexcept {
    return ids_;
  }
  [[nodiscard]] std::uint64_t malformed() const noexcept { return malformed_; }

 private:
  bus::Bus* bus_;
  bus::Client client_;
  std::vector<std::uint64_t> ids_;
  std::uint64_t malformed_ = 0;
};

// Everything state-derived must survive the swap byte for byte; the query
// timestamp ("at") is the one legitimately time-varying field, since the
// replacement itself advances the virtual clock.
std::string strip_query_time(const std::string& report) {
  const std::size_t comma = report.find(',');
  EXPECT_EQ(report.rfind("{\"at\":", 0), 0u);
  return comma == std::string::npos ? report : report.substr(comma);
}

TEST(MonitorReplacement, ReportByteIdenticalAcrossReplacement) {
  Plane p = make_plane(600, 20'000'000);
  run_day(p);
  p.probe->stop();  // freeze the record stream before the snapshot
  p.scenario.runtime->run_for(500'000);
  const std::string before = strip_query_time(p.monitor->report("json"));
  ReplaceMonitorReport report =
      replace_monitor(p.scenario.runtime->bus(), p.monitor, "sparc",
                      [&] { return p.scenario.runtime->step(); });
  EXPECT_EQ(report.new_instance, "slomon#2");
  EXPECT_GT(report.state_bytes, 0u);
  EXPECT_EQ(p.monitor->module_name(), "slomon#2");
  EXPECT_EQ(strip_query_time(p.monitor->report("json")), before);
  // The query path follows the successor.
  bus::Client follow(p.scenario.runtime->bus(), p.monitor->module_name());
  EXPECT_EQ(strip_query_time(follow.mh_slo("json")), before);
}

// The acceptance bar: replacing the monitor mid-day must neither lose nor
// duplicate an alert. 215 seeds vary the network schedule and a chaos
// fault mix (duplicates, delays, jitter -- the reliable layer dedups and
// resequences; alert ids must stay gap-free and strictly ascending).
TEST(MonitorReplacement, AlertSequenceGapFreeAcross215ChaosSeeds) {
  std::uint64_t total_events = 0;  // fire + clear events across all seeds
  std::uint64_t seeds_with_alerts = 0;
  for (std::uint64_t seed = 1; seed <= 215; ++seed) {
    chaos::FaultInjector faults(seed);  // outlives the bus hook
    bench::DiurnalSpec spec;
    spec.requests = 300;
    spec.day_us = 6'000'000;
    spec.seed = seed;
    bench::DiurnalScenario s = bench::make_diurnal_pipeline(spec, seed);
    app::Runtime& rt = *s.runtime;
    rt.enable_metrics();
    rt.set_instruction_cost_ns(((seed % 3) + 1) * 40'000);

    chaos::LinkFaults mix;
    mix.duplicate = 0.03 * static_cast<double>(seed % 4);
    mix.delay = 0.04 * static_cast<double>(seed % 5);
    mix.jitter_us = 200 + (seed % 7) * 300;
    faults.set_default(mix);
    faults.attach(rt.bus());
    // The duplicate/reorder mix needs the reliable layer (fire-and-forget
    // delivers chaos duplicates twice by design) — same setting the chaos
    // scenarios run under.
    rt.bus().set_delivery({.reliable = true});

    auto monitor = std::make_unique<Monitor>(rt.bus(), "slomon", "sparc");
    // A twitchy objective so alerts actually fire under the midday tail.
    monitor->add_objective(parse_objective(
        "o service=pipeline p99<2100us window=5s fast=1s@1 slow=2s@1"));
    AlertSink sink(rt.bus(), "slomon");
    Probe probe(rt.bus(), rt.tracer(), "vax", "pipeline", "slomon");

    constexpr std::uint64_t kRounds = 100'000'000'000ULL;
    s.source->start();
    const net::SimTime midday = s.source->midday_at();
    bool replaced = false;
    ASSERT_TRUE(rt.run_until(
        [&] {
          sink.drain();
          if (!replaced && rt.now() >= midday) {
            ReplaceMonitorReport rep = replace_monitor(
                rt.bus(), monitor, "sparc", [&] { return rt.step(); });
            EXPECT_EQ(rep.new_instance, "slomon#2") << "seed " << seed;
            replaced = true;
          }
          return s.source->done();
        },
        kRounds)) << "seed " << seed;
    // Run well past quiescence: a firing objective clears once the slow
    // window (2s) slides clean, the monitor's idle tick backs off up to 1s,
    // and the clear still needs bus delivery to the sink. 5s covers all of
    // it, so afterwards the engine's issued count and the sink's received
    // count must agree exactly.
    rt.run_for(5'000'000, kRounds);
    probe.stop();
    sink.drain();

    ASSERT_TRUE(replaced) << "seed " << seed;
    const std::vector<std::uint64_t>& ids = sink.ids();
    // Gap-free and duplicate-free: exactly 1..N in order, and N is exactly
    // what the engine issued — nothing lost, nothing repeated, across the
    // midday monitor replacement.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(ids[i], i + 1) << "seed " << seed << " position " << i;
    }
    EXPECT_EQ(monitor->engine().next_alert_id(), ids.size() + 1)
        << "seed " << seed;
    total_events += ids.size();
    if (!ids.empty()) ++seeds_with_alerts;
  }
  // The chaos mixes are tuned so the twitchy objective trips for most
  // seeds; if these floors regress the test has stopped exercising the
  // fire/clear path and the invariant above is vacuous.
  EXPECT_GT(seeds_with_alerts, 150u);
  EXPECT_GT(total_events, 300u);
}

// --- surgeon_slo_* exporter lines under replacement churn (satellite) --------

// Both the watched filter AND the monitor are replaced mid-day; the
// surgeon_slo_* families must stay consistent through the churn. The
// filtered export is golden-diffed byte for byte. Regenerate with
//   SURGEON_REGEN_GOLDEN=1 ./slo_test
//       --gtest_filter=SloMetrics.ExporterSurvivesReplacementChurnGolden
TEST(SloMetrics, ExporterSurvivesReplacementChurnGolden) {
  Plane p = make_plane(2'000, 60'000'000,
                       "pipeline-p99 service=pipeline p99<2500us window=60s "
                       "fast=10s@4 slow=60s@2");
  app::Runtime& rt = *p.scenario.runtime;
  rt.set_instruction_cost_ns(50'000);
  constexpr std::uint64_t kRounds = 100'000'000'000ULL;
  p.scenario.source->start();
  const net::SimTime midday = p.scenario.source->midday_at();
  const net::SimTime evening =
      p.scenario.source->started_at() + 45'000'000;
  bool replaced = false, monitor_replaced = false;
  ASSERT_TRUE(rt.run_until(
      [&] {
        if (!replaced && rt.now() >= midday) {
          reconfig::ReplaceReport rep = reconfig::replace_module(rt, "filter");
          p.monitor->note_blackout(rep.divulged_at, rep.restored_at);
          replaced = true;
        }
        if (!monitor_replaced && rt.now() >= evening) {
          (void)replace_monitor(rt.bus(), p.monitor, "sparc",
                                [&] { return rt.step(); });
          monitor_replaced = true;
        }
        return p.scenario.source->done();
      },
      kRounds));
  rt.run_for(500'000, kRounds);
  ASSERT_TRUE(replaced);
  ASSERT_TRUE(monitor_replaced);

  // Filter the export to the SLO families: the golden pins names, labels,
  // and (deterministic) values without dragging every vm/bus series along.
  std::istringstream all(obs::to_prometheus(rt.metrics()));
  std::ostringstream slo_lines;
  std::string line;
  while (std::getline(all, line)) {
    if (line.find("surgeon_slo_") != std::string::npos) {
      slo_lines << line << "\n";
    }
  }
  const std::string actual = slo_lines.str();
  const std::string path =
      std::string(SURGEON_GOLDEN_DIR) + "/slo_churn_prometheus.txt";
  if (std::getenv("SURGEON_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "golden file missing: " << path;
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(actual, golden.str());
  // The churn evidence, independent of exact counts: completions,
  // latency quantiles, attainment, burn, and blackout correlation all
  // exported after both replacements.
  EXPECT_NE(actual.find("surgeon_slo_completions_total"), std::string::npos);
  EXPECT_NE(actual.find("surgeon_slo_request_latency_us"),
            std::string::npos);
  EXPECT_NE(actual.find("surgeon_slo_attainment_ppm"), std::string::npos);
  EXPECT_NE(actual.find("surgeon_slo_burn_milli"), std::string::npos);
  EXPECT_NE(actual.find("surgeon_slo_violations_total"), std::string::npos);
  EXPECT_NE(actual.find("surgeon_slo_blackout_violations_total"),
            std::string::npos);
}

}  // namespace
}  // namespace surgeon::slo
