// Tests of the systematic (bounded-exhaustive, DPOR-style) fault-schedule
// explorer: the ISSUE acceptance scenario (2 machines, 1 replacement,
// pinned schedule count, zero violations), the promotion of the eight
// coordinator-crash-boundary scenarios out of recover_test's hand-rolled
// loop, the pruning-regression pins, and cross-validation against a
// 500-seed random sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "chaos/scenario.hpp"
#include "chaos/systematic.hpp"
#include "recover/recovery.hpp"

namespace surgeon::chaos {
namespace {

/// The acceptance scenario: counter app on vax, control plane and the
/// replacement target on sparc -- every replacement byte crosses the wire.
SystematicOptions small_scenario() {
  SystematicOptions options;
  options.app = SampleApp::kCounter;
  options.work_items = 4;
  options.replace_after_outputs = 2;
  options.target_machine = "sparc";
  return options;
}

// ISSUE acceptance: the explorer exhaustively covers the 2-machine /
// 1-replacement scenario; the schedule count is pinned and every explored
// schedule satisfies all six invariants. The space is a pure function of
// the (deterministic) simulator, so the pins are exact, not bounds; a
// change here means the schedule space itself changed and must be
// re-reviewed, not silently re-pinned.
TEST(Systematic, ExhaustsTheSmallScenarioWithZeroViolations) {
  SystematicOptions options = small_scenario();
  options.max_drops = 1;
  const SystematicResult result = explore(options);
  EXPECT_TRUE(result.ok()) << result.failures.size()
                           << " violating schedules, first: "
                           << (result.failures.empty()
                                   ? ""
                                   : result.failures[0].schedule.describe());
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.schedules_explored, 67u);
  EXPECT_EQ(result.wire_points_discovered, 12u);
  EXPECT_EQ(result.crash_boundaries_covered.size(),
            recover::kCrashBoundaries.size());
}

// Depth 2: the combination pruning starts to pay. Every explored schedule
// is an unordered drop SET; the d! - 1 reorderings of each set are pruned
// by construction. These pins are the pruner's regression currency.
TEST(Systematic, DepthTwoPrunesReorderingsOfIndependentDrops) {
  SystematicOptions options = small_scenario();
  options.max_drops = 2;
  const SystematicResult result = explore(options);
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.schedules_explored, 448u);
  EXPECT_EQ(result.schedules_pruned, 381u);
  EXPECT_GT(result.points_disabled, 0u);
}

// The eight coordinator-crash-boundary scenarios that recover_test used to
// hand-roll (BoundarySweep over Range(0, 8)) are now ENUMERATED by the
// explorer from recover::kCrashBoundaries: boundaries 0..3 precede the
// divulge watershed and must roll back, 4..7 follow it and must roll
// forward, and every run converges to the golden output (invariant 4).
TEST(Systematic, BoundariesPromotedFromRecoverTest) {
  SystematicOptions options = small_scenario();
  options.max_drops = 0;  // crash dimension only
  options.record_outcomes = true;
  const SystematicResult result = explore(options);
  EXPECT_TRUE(result.ok());
  // One fault-free schedule plus one per crash boundary.
  ASSERT_EQ(result.schedules_explored,
            1 + recover::kCrashBoundaries.size());
  ASSERT_EQ(result.outcomes.size(), result.schedules_explored);
  std::set<int> boundaries(result.crash_boundaries_covered.begin(),
                           result.crash_boundaries_covered.end());
  for (int b = 0; b < static_cast<int>(recover::kCrashBoundaries.size());
       ++b) {
    EXPECT_TRUE(boundaries.count(b)) << "boundary " << b << " not explored";
  }
  for (const ScheduleOutcome& outcome : result.outcomes) {
    const int b = outcome.schedule.crash_boundary;
    if (b < 0) {
      EXPECT_TRUE(outcome.replaced);
      continue;
    }
    if (b >= 4) {
      EXPECT_TRUE(outcome.replaced) << outcome.schedule.describe();
      EXPECT_TRUE(outcome.recovered_forward) << outcome.schedule.describe();
    } else {
      EXPECT_FALSE(outcome.replaced) << outcome.schedule.describe();
      EXPECT_FALSE(outcome.recovered_forward);
      EXPECT_NE(outcome.abort_reason.find("coordinator crashed"),
                std::string::npos)
          << outcome.abort_reason;
    }
  }
}

// A degenerate schedule (a scheduled drop that never fires) cannot happen
// at depth 1: every candidate point was observed on its parent's wire, and
// the deterministic replay reaches it again.
TEST(Systematic, DepthOneSchedulesAreNeverDegenerate) {
  SystematicOptions options = small_scenario();
  options.max_drops = 1;
  const SystematicResult result = explore(options);
  EXPECT_EQ(result.schedules_degenerate, 0u);
}

TEST(Systematic, TruncationIsReportedNeverSilent) {
  SystematicOptions options = small_scenario();
  options.max_drops = 2;
  options.max_schedules = 5;
  const SystematicResult result = explore(options);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.schedules_explored, 5u);
}

TEST(Systematic, ScheduleDescribeNamesTheCrashBoundary) {
  FaultSchedule s;
  s.crash_boundary = 4;
  s.drops.push_back(net::WirePoint{net::LinkKey{"vax", "sparc"}, 2});
  const std::string text = s.describe();
  EXPECT_NE(text.find("crash=rebind"), std::string::npos) << text;
  EXPECT_NE(text.find("vax->sparc#2"), std::string::npos) << text;
  EXPECT_NE(text.find("kill=none"), std::string::npos) << text;
  s.kill_machine = 1;
  s.kill_at_us = 30'000;
  EXPECT_NE(s.describe().find("kill=m1@30000us"), std::string::npos)
      << s.describe();
}

// --- kv machine-kill schedules ----------------------------------------------

SystematicOptions kv_scenario() {
  SystematicOptions options;
  options.app = SampleApp::kKv;
  options.work_items = 10;
  options.kv_shards = 2;
  options.kv_group_size = 2;
  options.kv_machines = 3;
  options.kv_spares = 1;
  options.explore_crash_boundaries = false;  // a kv run has no coordinator
  return options;
}

std::string first_failure(const SystematicResult& result) {
  if (result.failures.empty()) return "";
  return result.failures[0].schedule.describe() + ": " +
         result.failures[0].violations.front();
}

// Machine kills are their own schedule dimension: every (machine, time)
// rebuild schedule runs exactly once alongside the no-kill baseline, and
// each must hold invariant 7 -- no acked write lost, none stale.
TEST(Systematic, MachineKillDimensionCoversEveryRebuildSchedule) {
  SystematicOptions options = kv_scenario();
  options.max_drops = 0;  // the kill dimension alone
  options.record_outcomes = true;
  for (int m = 0; m < options.kv_machines; ++m) {
    for (net::SimTime at : {net::SimTime{10'000}, net::SimTime{40'000}}) {
      options.machine_kill_points.push_back(MachineKillPoint{m, at});
    }
  }
  const SystematicResult result = explore(options);
  EXPECT_TRUE(result.ok()) << first_failure(result);
  EXPECT_FALSE(result.truncated);
  // One kill-free schedule plus one per kill point.
  EXPECT_EQ(result.schedules_explored,
            1u + options.machine_kill_points.size());
  EXPECT_EQ(result.machine_kills_covered.size(),
            options.machine_kill_points.size());
  // The kills were real: rebuilds actually ran under at least one of them.
  bool any_rebuilt = false;
  for (const ScheduleOutcome& outcome : result.outcomes) {
    if (outcome.schedule.kill_machine >= 0 && outcome.replaced) {
      any_rebuilt = true;
    }
  }
  EXPECT_TRUE(any_rebuilt);
}

// Drops compose with the kill dimension: every enabled 1-drop schedule
// runs under the no-kill baseline AND under the machine kill, so wire loss
// during a rebuild is part of the explored space, not a gap between two
// harnesses.
TEST(Systematic, MachineKillComposesWithDropSchedules) {
  SystematicOptions options = kv_scenario();
  options.work_items = 6;
  options.max_drops = 1;
  options.machine_kill_points.push_back(MachineKillPoint{0, 15'000});
  const SystematicResult result = explore(options);
  EXPECT_TRUE(result.ok()) << first_failure(result);
  EXPECT_FALSE(result.truncated);
  // At minimum: the two drop-free roots plus a 1-drop schedule per wire
  // point of each root's run.
  EXPECT_GT(result.schedules_explored, 2u);
  EXPECT_GT(result.wire_points_discovered, 0u);
  EXPECT_EQ(result.machine_kills_covered.size(), 1u);
}

// --- cross-validation against the random sweeps -----------------------------

/// Union of violated-invariant ids over a 500-seed random sweep of the
/// same application spec (unreliable delivery, lossy links -- a scenario
/// family where violations genuinely occur, so agreement is not vacuous).
std::set<int> random_sweep_ids(int seeds) {
  std::set<int> ids;
  for (int seed = 1; seed <= seeds; ++seed) {
    ScenarioSpec spec;
    spec.seed = static_cast<std::uint64_t>(seed);
    spec.app = SampleApp::kCounter;
    spec.work_items = 4;
    spec.replace_after_outputs = 2;
    spec.target_machine = "sparc";
    spec.delivery.reliable = false;
    spec.faults.drop = 0.05;
    const ScenarioResult r = run_scenario(spec);
    for (int id : violated_invariants(r)) ids.insert(id);
  }
  return ids;
}

/// Union of violated-invariant ids over the systematic exploration of the
/// same spec: unreliable delivery, every 1- and 2-drop schedule.
std::set<int> systematic_ids() {
  SystematicOptions options = small_scenario();
  options.delivery.reliable = false;
  options.explore_crash_boundaries = false;  // match the random family
  options.max_drops = 2;
  const SystematicResult result = explore(options);
  std::set<int> ids;
  for (const ScheduleOutcome& failure : result.failures) {
    ScenarioResult as_result;
    as_result.violations = failure.violations;
    for (int id : violated_invariants(as_result)) ids.insert(id);
  }
  return ids;
}

// ISSUE acceptance: the systematic explorer's verdict agrees with a
// 500-seed random sweep -- every invariant class of violation found by one
// is found by the other. (Unreliable delivery makes message loss
// permanent, so both sides DO find violations; this is not two empty
// sets.)
TEST(CrossValidation, SystematicAgreesWithFiveHundredRandomSeeds) {
  const std::set<int> random_ids = random_sweep_ids(500);
  const std::set<int> sys_ids = systematic_ids();
  EXPECT_FALSE(random_ids.empty())
      << "lossy unreliable sweep found nothing -- cross-validation vacuous";
  EXPECT_EQ(random_ids, sys_ids);
}

}  // namespace
}  // namespace surgeon::chaos
