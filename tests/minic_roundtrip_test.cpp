// MiniC printer/parser round-trip: parse(print(ast)) == ast.
//
// The printer emits minimally-parenthesized source, so the property under
// test is that its precedence logic never drops parentheses the grammar
// needs. The sweep feeds it two corpora: every sample application source,
// and seeded randomly-generated programs (fully parenthesized, so the
// generator itself cannot produce ambiguous input). ASTs are compared
// through a structural s-expression dump that ignores source locations and
// sema annotations.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "app/samples.hpp"
#include "minic/ast.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "support/rng.hpp"

namespace surgeon::minic {
namespace {

// --- structural dump --------------------------------------------------------

std::string dump(const Expr& e);

std::string dump_opt(const ExprPtr& e) { return e ? dump(*e) : "_"; }

std::string dump(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return "(int " + std::to_string(static_cast<const IntLit&>(e).value) +
             ")";
    case ExprKind::kRealLit:
      return "(real " +
             std::to_string(static_cast<const RealLit&>(e).value) + ")";
    case ExprKind::kStrLit:
      return "(str " + static_cast<const StrLit&>(e).value + ")";
    case ExprKind::kNullLit:
      return "(null)";
    case ExprKind::kVar:
      return "(var " + static_cast<const VarExpr&>(e).name + ")";
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      return std::string("(") + (u.op == UnaryOp::kNeg ? "neg " : "not ") +
             dump(*u.operand) + ")";
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return std::string("(") + binary_op_spelling(b.op) + " " +
             dump(*b.lhs) + " " + dump(*b.rhs) + ")";
    }
    case ExprKind::kCall: {
      const auto& c = static_cast<const CallExpr&>(e);
      std::string s = "(call " + c.callee;
      for (const auto& a : c.args) s += " " + dump(*a);
      return s + ")";
    }
    case ExprKind::kCast: {
      const auto& c = static_cast<const CastExpr&>(e);
      return "(cast " + c.target.to_string() + " " + dump(*c.operand) + ")";
    }
    case ExprKind::kAddrOf:
      return "(addr " + dump(*static_cast<const AddrOfExpr&>(e).operand) +
             ")";
    case ExprKind::kDeref:
      return "(deref " + dump(*static_cast<const DerefExpr&>(e).operand) +
             ")";
    case ExprKind::kIndex: {
      const auto& i = static_cast<const IndexExpr&>(e);
      return "(index " + dump(*i.base) + " " + dump(*i.index) + ")";
    }
  }
  return "(?)";
}

std::string dump(const Stmt& s);

std::string dump_opt(const StmtPtr& s) { return s ? dump(*s) : "_"; }

std::string dump(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::kBlock: {
      std::string out = "(block";
      for (const auto& c : static_cast<const BlockStmt&>(s).stmts) {
        out += " " + dump(*c);
      }
      return out + ")";
    }
    case StmtKind::kDecl: {
      const auto& d = static_cast<const DeclStmt&>(s);
      return "(decl " + d.type.to_string() + " " + d.name + " " +
             dump_opt(d.init) + ")";
    }
    case StmtKind::kAssign: {
      const auto& a = static_cast<const AssignStmt&>(s);
      return "(= " + dump(*a.target) + " " + dump(*a.value) + ")";
    }
    case StmtKind::kExpr:
      return "(expr " + dump(*static_cast<const ExprStmt&>(s).expr) + ")";
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(s);
      return "(if " + dump(*i.cond) + " " + dump(*i.then_branch) + " " +
             dump_opt(i.else_branch) + ")";
    }
    case StmtKind::kWhile: {
      const auto& w = static_cast<const WhileStmt&>(s);
      return "(while " + dump(*w.cond) + " " + dump(*w.body) + ")";
    }
    case StmtKind::kFor: {
      const auto& f = static_cast<const ForStmt&>(s);
      return "(for " + dump_opt(f.init) + " " + dump_opt(f.cond) + " " +
             dump_opt(f.step) + " " + dump(*f.body) + ")";
    }
    case StmtKind::kBreak:
      return "(break)";
    case StmtKind::kContinue:
      return "(continue)";
    case StmtKind::kReturn:
      return "(return " + dump_opt(static_cast<const ReturnStmt&>(s).value) +
             ")";
    case StmtKind::kGoto:
      return "(goto " + static_cast<const GotoStmt&>(s).label + ")";
    case StmtKind::kLabeled: {
      const auto& l = static_cast<const LabeledStmt&>(s);
      return "(label " + l.label + " " + dump(*l.inner) + ")";
    }
    case StmtKind::kEmpty:
      return "(empty)";
  }
  return "(?)";
}

std::string dump(const Program& p) {
  std::string out = "(program";
  for (const auto& g : p.globals) {
    out += " (global " + g.type.to_string() + " " + g.name + " " +
           dump_opt(g.init) + ")";
  }
  for (const auto& fn : p.functions) {
    out += " (fn " + fn->return_type.to_string() + " " + fn->name + " (";
    for (const auto& prm : fn->params) {
      out += " " + prm.type.to_string() + " " + prm.name;
    }
    out += " ) " + dump(*fn->body) + ")";
  }
  return out + ")";
}

void expect_roundtrip(const std::string& source) {
  Program first = parse_program(source);
  std::string printed = print_program(first);
  Program second;
  try {
    second = parse_program(printed);
  } catch (const support::ParseError& e) {
    FAIL() << "printed source does not re-parse: " << e.what()
           << "\n--- printed ---\n" << printed;
  }
  EXPECT_EQ(dump(first), dump(second))
      << "--- original ---\n" << source << "--- printed ---\n" << printed;
}

// --- random program generator ----------------------------------------------

/// Emits fully-parenthesized source, so every generated string parses and
/// the printer's job -- dropping exactly the redundant parentheses -- is
/// exercised against every operator pairing.
class Generator {
 public:
  explicit Generator(std::uint64_t seed) : rng_(seed) {}

  std::string program() {
    std::string out;
    int globals = static_cast<int>(rng_.next_below(3));
    for (int i = 0; i < globals; ++i) {
      out += value_type() + " g" + std::to_string(i);
      if (rng_.next_below(2) == 0) out += " = " + literal();
      out += ";\n";
    }
    int functions = 1 + static_cast<int>(rng_.next_below(3));
    for (int i = 0; i < functions; ++i) {
      out += (rng_.next_below(2) == 0 ? std::string("void") : value_type()) +
             " f" + std::to_string(i) + "(";
      int params = static_cast<int>(rng_.next_below(3));
      for (int p = 0; p < params; ++p) {
        if (p != 0) out += ", ";
        out += value_type() + " p" + std::to_string(p);
      }
      out += ")\n" + block(1);
    }
    return out;
  }

  std::string expression() { return expr(0); }

 private:
  std::string value_type() {
    switch (rng_.next_below(4)) {
      case 0: return "int";
      case 1: return "float";
      case 2: return "string";
      default: return "int *";
    }
  }

  std::string literal() {
    switch (rng_.next_below(4)) {
      case 0: return std::to_string(rng_.next_below(1000));
      case 1: return std::to_string(rng_.next_below(16)) + ".5";
      case 2: return "\"s" + std::to_string(rng_.next_below(10)) + "\\n\"";
      default: return "null";
    }
  }

  std::string var() {
    static const char* kNames[] = {"a", "b", "c", "x", "y"};
    return kNames[rng_.next_below(5)];
  }

  std::string expr(int depth) {
    if (depth >= 4) return rng_.next_below(2) == 0 ? literal() : var();
    switch (rng_.next_below(10)) {
      case 0:
        return literal();
      case 1:
        return var();
      case 2: {  // binary, any operator pairing
        static const char* kOps[] = {"+", "-", "*", "/", "%", "==", "!=",
                                     "<", "<=", ">", ">=", "&&", "||"};
        return "(" + expr(depth + 1) + " " + kOps[rng_.next_below(13)] +
               " " + expr(depth + 1) + ")";
      }
      case 3:
        return std::string(rng_.next_below(2) == 0 ? "(-" : "(!") +
               expr(depth + 1) + ")";
      case 4:
        return "(*" + expr(depth + 1) + ")";
      case 5:
        return "(&" + var() + ")";
      case 6: {  // call
        std::string s = "f0(";
        int args = static_cast<int>(rng_.next_below(3));
        for (int i = 0; i < args; ++i) {
          if (i != 0) s += ", ";
          s += expr(depth + 1);
        }
        return s + ")";
      }
      case 7:
        return "((" + value_type() + ")" + expr(depth + 1) + ")";
      case 8:
        return "(" + expr(depth + 1) + ")[" + expr(depth + 1) + "]";
      default:
        return "(" + expr(depth + 1) + ")";
    }
  }

  std::string indent(int depth) {
    return std::string(static_cast<std::size_t>(depth) * 2, ' ');
  }

  std::string block(int depth) {
    std::string out = indent(depth - 1) + "{\n";
    int n = static_cast<int>(rng_.next_below(4)) + 1;
    for (int i = 0; i < n; ++i) out += stmt(depth);
    return out + indent(depth - 1) + "}\n";
  }

  std::string stmt(int depth) {
    if (depth >= 4) return indent(depth) + var() + " = " + expr(2) + ";\n";
    switch (rng_.next_below(10)) {
      case 0:
        return indent(depth) + value_type() + " v" +
               std::to_string(rng_.next_below(4)) + " = " + expr(2) + ";\n";
      case 1:
        return indent(depth) + var() + " = " + expr(1) + ";\n";
      case 2:
        return indent(depth) + "(*" + var() + ") = " + expr(2) + ";\n";
      case 3:
        return indent(depth) + "if (" + expr(2) + ")\n" + block(depth + 1) +
               (rng_.next_below(2) == 0
                    ? indent(depth) + "else\n" + block(depth + 1)
                    : std::string());
      case 4:
        return indent(depth) + "while (" + expr(2) + ")\n" + block(depth + 1);
      case 5:
        return indent(depth) + "for (" + var() + " = " + expr(3) + "; " +
               expr(3) + "; " + var() + " = " + expr(3) + ")\n" +
               block(depth + 1);
      case 6:
        return indent(depth) + "return;\n";
      case 7:
        return indent(depth) + "L" + std::to_string(rng_.next_below(3)) +
               ": ;\n";
      case 8:
        return indent(depth) + "goto L" +
               std::to_string(rng_.next_below(3)) + ";\n";
      default:
        return indent(depth) + expr(1) + ";\n";
    }
  }

  support::SplitMix64 rng_;
};

// --- directed cases ---------------------------------------------------------

// Regression: comparisons are non-associative, so a comparison nested on
// either side of another comparison must keep its parentheses.
TEST(MinicRoundTrip, NestedComparisonsKeepParentheses) {
  for (const char* src :
       {"(a < b) == c", "a == (b < c)", "(a == b) != (c >= d)",
        "((a < b) < c) < d", "!(a < b) == c"}) {
    ExprPtr first = parse_expression(src);
    std::string printed = print_expr(*first);
    ExprPtr second;
    ASSERT_NO_THROW(second = parse_expression(printed))
        << src << " printed as " << printed;
    EXPECT_EQ(dump(*first), dump(*second))
        << src << " printed as " << printed;
  }
}

TEST(MinicRoundTrip, AssociativeOperatorsDropRedundantParentheses) {
  ExprPtr e = parse_expression("(a + b) + c");
  EXPECT_EQ(print_expr(*e), "a + b + c");
  e = parse_expression("a - (b - c)");
  EXPECT_EQ(print_expr(*e), "a - (b - c)");
  e = parse_expression("(a < b) == c");
  EXPECT_EQ(print_expr(*e), "(a < b) == c");
  e = parse_expression("(a * b) + c");
  EXPECT_EQ(print_expr(*e), "a * b + c");
  e = parse_expression("a * (b + c)");
  EXPECT_EQ(print_expr(*e), "a * (b + c)");
}

TEST(MinicRoundTrip, SampleApplicationSources) {
  for (const std::string& src : {
           app::samples::monitor_compute_source(),
           app::samples::monitor_display_source(),
           app::samples::monitor_sensor_source(),
           app::samples::counter_client_source(5),
           app::samples::counter_server_source(),
           app::samples::pipeline_source_source(9),
           app::samples::pipeline_filter_source(),
           app::samples::pipeline_sink_source(),
       }) {
    expect_roundtrip(src);
  }
}

// --- seeded sweeps ----------------------------------------------------------

class ExprSweep : public ::testing::TestWithParam<std::uint64_t> {};
class ProgramSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExprSweep, RoundTrips) {
  Generator gen(GetParam());
  for (int i = 0; i < 20; ++i) {
    std::string src = gen.expression();
    ExprPtr first = parse_expression(src);
    std::string printed = print_expr(*first);
    ExprPtr second;
    try {
      second = parse_expression(printed);
    } catch (const support::ParseError& e) {
      FAIL() << "seed " << GetParam() << ": printed expr does not re-parse: "
             << e.what() << "\n  source:  " << src
             << "\n  printed: " << printed;
    }
    EXPECT_EQ(dump(*first), dump(*second))
        << "seed " << GetParam() << "\n  source:  " << src
        << "\n  printed: " << printed;
  }
}

TEST_P(ProgramSweep, RoundTrips) {
  Generator gen(GetParam());
  expect_roundtrip(gen.program());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprSweep,
                         ::testing::Range<std::uint64_t>(1, 51));
INSTANTIATE_TEST_SUITE_P(Seeds, ProgramSweep,
                         ::testing::Range<std::uint64_t>(1, 101));

}  // namespace
}  // namespace surgeon::minic
