// surgeon::chaos -- fault injection, reliable-delivery semantics, and the
// randomized reconfiguration-under-faults sweeps.
//
// The sweeps at the bottom run 215 seeded replacement scenarios (counter,
// pipeline, monitor, and crash-the-clone mixes) plus the same 215 seeds
// again as kv machine-loss scenarios (kill a replica-group machine under
// link faults, require the acked-write ledger to hold while the
// GroupManager rebuilds -- invariant 7). Every failure message starts with
// the scenario's describe() line, seed first: reconstructing the spec with
// random_scenario(seed) / random_kv_scenario(seed) plus the sweep's forced
// fields replays the run exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "bus/bus.hpp"
#include "cfg/parser.hpp"
#include "chaos/fault.hpp"
#include "chaos/scenario.hpp"
#include "net/arch.hpp"
#include "reconfig/scripts.hpp"

namespace surgeon {
namespace {

// --- FaultInjector ---------------------------------------------------------

bool same_decision(const bus::FaultDecision& x, const bus::FaultDecision& y) {
  return x.drop == y.drop && x.duplicate == y.duplicate &&
         x.extra_delay_us == y.extra_delay_us &&
         x.duplicate_delay_us == y.duplicate_delay_us;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  chaos::LinkFaults faults{.drop = 0.1, .duplicate = 0.1, .delay = 0.2,
                           .jitter_us = 1000};
  chaos::FaultInjector a(42);
  chaos::FaultInjector b(42);
  chaos::FaultInjector c(43);
  a.set_default(faults);
  b.set_default(faults);
  c.set_default(faults);
  bool diverged_from_c = false;
  for (int i = 0; i < 2000; ++i) {
    bus::FaultDecision da = a.decide("vax", "sparc");
    bus::FaultDecision db = b.decide("vax", "sparc");
    ASSERT_TRUE(same_decision(da, db)) << "decision " << i;
    if (!same_decision(da, c.decide("vax", "sparc"))) diverged_from_c = true;
  }
  EXPECT_TRUE(diverged_from_c);
  EXPECT_EQ(a.stats().decisions, 2000u);
  EXPECT_EQ(a.stats().drops, b.stats().drops);
  EXPECT_GT(a.stats().drops, 0u);
  EXPECT_GT(a.stats().duplicates, 0u);
  EXPECT_GT(a.stats().delays, 0u);
}

TEST(FaultInjector, PerLinkOverrideBeatsDefault) {
  chaos::FaultInjector inj(7);
  inj.set_default(chaos::LinkFaults{.drop = 1.0});
  inj.set_link("vax", "vax", chaos::LinkFaults{});  // loopback is perfect
  EXPECT_TRUE(inj.decide("vax", "sparc").drop);
  EXPECT_FALSE(inj.decide("vax", "vax").drop);
}

TEST(FaultInjector, PartitionDropsEverythingUntilHeal) {
  net::Simulator sim;
  sim.add_machine("vax", net::arch_vax());
  sim.add_machine("sparc", net::arch_sparc());
  bus::Bus bus(sim);
  chaos::FaultInjector inj(1);
  inj.add_partition(chaos::Partition{"vax", "sparc", 0, 5'000});
  inj.attach(bus);
  EXPECT_TRUE(inj.decide("vax", "sparc").drop);
  EXPECT_TRUE(inj.decide("sparc", "vax").drop);
  EXPECT_FALSE(inj.decide("vax", "vax").drop);  // partition is pairwise
  sim.schedule_at(6'000, [] {});
  sim.run();
  EXPECT_FALSE(inj.decide("vax", "sparc").drop);  // healed
  EXPECT_EQ(inj.stats().partition_drops, 2u);
}

TEST(FaultInjector, IsolationCutsOneMachineOff) {
  chaos::FaultInjector inj(1);
  inj.isolate("sparc", 0);
  EXPECT_TRUE(inj.decide("vax", "sparc").drop);
  EXPECT_TRUE(inj.decide("sparc", "mips").drop);
  EXPECT_FALSE(inj.decide("vax", "mips").drop);
}

// --- reliable delivery at the bus level ------------------------------------

class ReliableBusTest : public ::testing::Test {
 protected:
  ReliableBusTest() : bus_(sim_) {
    sim_.add_machine("vax", net::arch_vax());
    sim_.add_machine("sparc", net::arch_sparc());
    net::LatencyModel model;
    model.local_us = 10;
    model.remote_us = 1000;
    sim_.set_latency_model(model);
    bus_.set_delivery(bus::DeliveryOptions{.reliable = true});
  }

  bus::ModuleInfo make_module(const std::string& name,
                              const std::string& machine) {
    bus::ModuleInfo info;
    info.name = name;
    info.machine = machine;
    info.interfaces = {
        bus::InterfaceSpec{"in", bus::IfaceRole::kUse, "i", ""},
        bus::InterfaceSpec{"out", bus::IfaceRole::kDefine, "i", ""},
    };
    return info;
  }

  void add_pair() {
    bus_.add_module(make_module("a", "vax"));
    bus_.add_module(make_module("b", "sparc"));
    bus_.add_binding({"a", "out"}, {"b", "in"});
  }

  std::vector<std::int64_t> drain_b() {
    std::vector<std::int64_t> got;
    while (auto msg = bus_.receive("b", "in")) {
      got.push_back(msg->values[0].as_int());
    }
    return got;
  }

  net::Simulator sim_;
  bus::Bus bus_;
};

TEST_F(ReliableBusTest, DropForcesRetransmission) {
  add_pair();
  int copies = 0;
  bus_.set_fault_hook([&copies](const std::string& src, const std::string&) {
    // Drop the first two wire copies leaving vax; the third gets through.
    if (src == "vax" && ++copies <= 2) return bus::FaultDecision{.drop = true};
    return bus::FaultDecision{};
  });
  bus_.send("a", "out", {ser::Value(std::int64_t{5})});
  sim_.run();
  EXPECT_EQ(drain_b(), (std::vector<std::int64_t>{5}));
  const bus::ReliableStats& rs = bus_.reliable_stats();
  EXPECT_EQ(rs.chaos_drops, 2u);
  EXPECT_GE(rs.retransmits, 2u);
  EXPECT_GE(rs.acks_delivered, 1u);
  EXPECT_EQ(bus_.unacked_total(), 0u);  // acked after the surviving copy
}

TEST_F(ReliableBusTest, DuplicatesAreDiscardedOnReceive) {
  add_pair();
  bus_.set_fault_hook([](const std::string& src, const std::string&) {
    if (src == "vax") {
      return bus::FaultDecision{.duplicate = true, .duplicate_delay_us = 50};
    }
    return bus::FaultDecision{};
  });
  for (std::int64_t i = 1; i <= 3; ++i) {
    bus_.send("a", "out", {ser::Value(i)});
  }
  sim_.run();
  EXPECT_EQ(drain_b(), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_GE(bus_.reliable_stats().dup_discards, 3u);
  EXPECT_EQ(bus_.unacked_total(), 0u);
}

TEST_F(ReliableBusTest, ReorderedCopiesAreBufferedAndFlushedInOrder) {
  add_pair();
  bool first = true;
  bus_.set_fault_hook([&first](const std::string& src, const std::string&) {
    if (src == "vax" && first) {
      first = false;  // hold the first message back past the second
      return bus::FaultDecision{.extra_delay_us = 5'000};
    }
    return bus::FaultDecision{};
  });
  bus_.send("a", "out", {ser::Value(std::int64_t{1})});
  bus_.send("a", "out", {ser::Value(std::int64_t{2})});
  sim_.run();
  EXPECT_EQ(drain_b(), (std::vector<std::int64_t>{1, 2}));
  EXPECT_GE(bus_.reliable_stats().ooo_buffered, 1u);
  EXPECT_EQ(bus_.ooo_total(), 0u);  // flushed once the gap filled
}

TEST_F(ReliableBusTest, GivesUpAfterMaxAttempts) {
  bus_.set_delivery(bus::DeliveryOptions{.reliable = true, .max_attempts = 3});
  add_pair();
  bus_.set_fault_hook([](const std::string& src, const std::string&) {
    return bus::FaultDecision{.drop = src == "vax"};
  });
  bus_.send("a", "out", {ser::Value(std::int64_t{9})});
  sim_.run();
  EXPECT_EQ(drain_b(), (std::vector<std::int64_t>{}));
  EXPECT_EQ(bus_.reliable_stats().gave_up, 1u);
  EXPECT_EQ(bus_.unacked_total(), 0u);  // abandoned, not leaked
}

TEST_F(ReliableBusTest, FireAndForgetLosesDroppedMessages) {
  bus_.set_delivery(bus::DeliveryOptions{});  // the pre-chaos default
  add_pair();
  bus_.set_fault_hook([](const std::string& src, const std::string&) {
    return bus::FaultDecision{.drop = src == "vax"};
  });
  bus_.send("a", "out", {ser::Value(std::int64_t{5})});
  sim_.run();
  // No retry layer: the message is simply gone. This is the baseline the
  // reliable mode exists to fix.
  EXPECT_EQ(drain_b(), (std::vector<std::int64_t>{}));
  EXPECT_EQ(bus_.reliable_stats().retransmits, 0u);
}

// --- crash injection at the runtime level ----------------------------------

class CrashTest : public ::testing::Test {
 protected:
  CrashTest() : rt_(3) {
    rt_.add_machine("vax", net::arch_vax());
    rt_.add_machine("sparc", net::arch_sparc());
    cfg::ConfigFile config =
        cfg::parse_config(app::samples::counter_config_text());
    rt_.load_application(config, "counter", [](const cfg::ModuleSpec& spec) {
      return spec.name == "client" ? app::samples::counter_client_source(6)
                                   : app::samples::counter_server_source();
    });
  }

  app::Runtime rt_;
};

TEST_F(CrashTest, CrashModuleStopsTheProcessButKeepsTheRegistration) {
  ASSERT_TRUE(rt_.run_until(
      [this] { return !rt_.machine_of("client")->output().empty(); },
      1'000'000));
  rt_.crash_module("server", "test crash");
  EXPECT_TRUE(rt_.module_crashed("server"));
  EXPECT_FALSE(rt_.module_running("server"));
  // POLYLITH semantics: the process died, the bus registration did not.
  EXPECT_TRUE(rt_.bus().has_module("server"));
  EXPECT_THROW(rt_.crash_module("nosuch"), support::BusError);
}

TEST_F(CrashTest, CrashAfterFiresOnTheInstructionBudget) {
  rt_.crash_after("server", 0);  // dies at its next scheduling point
  rt_.run_until([this] { return rt_.module_crashed("server"); }, 1'000'000);
  EXPECT_TRUE(rt_.module_crashed("server"));
}

TEST_F(CrashTest, RestartAfterCrashRunsAFreshProcess) {
  rt_.crash_module("server");
  ASSERT_TRUE(rt_.module_crashed("server"));
  rt_.restart_module("server");
  EXPECT_FALSE(rt_.module_crashed("server"));
  EXPECT_TRUE(rt_.module_running("server"));
}

TEST_F(CrashTest, ScheduledRestartReturnsOnTheVirtualClock) {
  rt_.crash_after("server", 0, /*restart_after_us=*/50'000);
  rt_.run_until([this] { return rt_.module_crashed("server"); }, 1'000'000);
  net::SimTime crashed_at = rt_.now();
  rt_.run_until([this] { return rt_.module_running("server"); }, 1'000'000);
  EXPECT_TRUE(rt_.module_running("server"));
  EXPECT_GE(rt_.now(), crashed_at + 50'000);
}

// --- directed scenarios ----------------------------------------------------

TEST(ChaosScenario, ScenariosAreReproducibleFromTheirSeed) {
  chaos::ScenarioSpec spec = chaos::random_scenario(12345);
  chaos::ScenarioResult first = chaos::run_scenario(spec);
  chaos::ScenarioResult second = chaos::run_scenario(spec);
  ASSERT_TRUE(first.ok()) << first.failure;
  EXPECT_EQ(first.output, second.output);
  EXPECT_EQ(first.replaced, second.replaced);
  EXPECT_EQ(first.attempts, second.attempts);
  EXPECT_EQ(first.rstats.retransmits, second.rstats.retransmits);
  EXPECT_EQ(first.fstats.drops, second.fstats.drops);
}

// ISSUE acceptance: Figure 5 completes under 10% drop plus a mid-replacement
// crash of the clone -- the script's retry path installs a second clone from
// the same state capture.
TEST(ChaosScenario, ReplacementSurvivesTenPercentDropAndCloneCrash) {
  chaos::ScenarioSpec spec;
  spec.seed = 77;
  spec.app = chaos::SampleApp::kCounter;
  spec.work_items = 10;
  spec.faults = chaos::LinkFaults{.drop = 0.10, .jitter_us = 2'000};
  spec.crash_clone = true;
  spec.replace_after_outputs = 2;
  spec.target_machine = "sparc";
  chaos::ScenarioResult r = chaos::run_scenario(spec);
  EXPECT_TRUE(r.ok()) << r.failure << "\n  replay: " << spec.describe();
  EXPECT_TRUE(r.replaced) << r.abort_reason;
  EXPECT_GE(r.attempts, 2);  // the crash consumed the first attempt
  EXPECT_EQ(r.output, r.golden);
}

// A partition that never heals stops the control plane cold: the script must
// abort and roll back, and the application must keep serving on the old
// instance with output identical to the fault-free run.
TEST(ChaosScenario, AbortOnDeadControlPlaneLeavesApplicationServing) {
  chaos::ScenarioSpec spec;
  spec.seed = 5;
  spec.app = chaos::SampleApp::kCounter;
  spec.work_items = 8;
  spec.partitions.push_back(chaos::Partition{"vax", "sparc", 0});
  spec.divulge_timeout_us = 2'000'000;
  chaos::ScenarioResult r = chaos::run_scenario(spec);
  EXPECT_TRUE(r.ok()) << r.failure << "\n  replay: " << spec.describe();
  EXPECT_FALSE(r.replaced);
  EXPECT_FALSE(r.abort_reason.empty());
  EXPECT_EQ(r.output, r.golden);  // the abort was invisible to clients
}

// --- kv machine-loss scenarios ----------------------------------------------

// Acceptance: a replica-group machine dies mid-workload, the GroupManager
// rebuilds onto a spare, and the client never notices -- no acked write
// lost, no stale read, output equal to the kill-free golden run.
TEST(ChaosScenario, KvMachineKillHealsWithLedgerIntact) {
  chaos::ScenarioSpec spec;
  spec.seed = 31;
  spec.app = chaos::SampleApp::kKv;
  spec.work_items = 40;
  spec.kv_shards = 3;
  spec.kv_group_size = 2;
  spec.kv_machines = 3;
  spec.kv_spares = 1;
  spec.kv_kill_machine = 0;
  spec.kv_kill_at_us = 20'000;
  chaos::ScenarioResult r = chaos::run_scenario(spec);
  EXPECT_TRUE(r.ok()) << r.failure << "\n  replay: " << spec.describe();
  EXPECT_TRUE(r.replaced);  // redundancy was actually rebuilt
  EXPECT_EQ(r.output, r.golden);
  EXPECT_GT(r.hb_events, 0u);  // invariant 5 ran, not skipped
}

// The failing-seed artifact line must say which machine died and when.
TEST(ChaosScenario, KvDescribeNamesTheKilledMachine) {
  chaos::ScenarioSpec spec = chaos::random_kv_scenario(9);
  const std::string line = spec.describe();
  EXPECT_NE(line.find("app=kv"), std::string::npos) << line;
  EXPECT_NE(line.find("kill=m" + std::to_string(spec.kv_kill_machine) + "@"),
            std::string::npos)
      << line;
}

TEST(ChaosScenario, KvScenariosAreReproducibleFromTheirSeed) {
  chaos::ScenarioSpec spec = chaos::random_kv_scenario(4242);
  chaos::ScenarioResult first = chaos::run_scenario(spec);
  chaos::ScenarioResult second = chaos::run_scenario(spec);
  ASSERT_TRUE(first.ok()) << first.failure << "\n  replay: " << spec.describe();
  EXPECT_EQ(first.output, second.output);
  EXPECT_EQ(first.replaced, second.replaced);
  EXPECT_EQ(first.fstats.drops, second.fstats.drops);
}

// --- randomized sweeps (215 seeded scenarios) -------------------------------

class CounterSweep : public ::testing::TestWithParam<std::uint64_t> {};
class PipelineSweep : public ::testing::TestWithParam<std::uint64_t> {};
class MonitorSweep : public ::testing::TestWithParam<std::uint64_t> {};
class CrashSweep : public ::testing::TestWithParam<std::uint64_t> {};
class KvSweep : public ::testing::TestWithParam<std::uint64_t> {};

void run_sweep_case(chaos::ScenarioSpec spec) {
  chaos::ScenarioResult r = chaos::run_scenario(spec);
  ASSERT_TRUE(r.ok()) << r.failure << "\n  replay: " << spec.describe();
  // Every scenario either completed the replacement or aborted cleanly with
  // a reason; either way the app finished and all four invariants held.
  EXPECT_TRUE(r.replaced || !r.abort_reason.empty());
}

TEST_P(CounterSweep, Invariants) {
  chaos::ScenarioSpec spec = chaos::random_scenario(GetParam());
  spec.app = chaos::SampleApp::kCounter;
  run_sweep_case(spec);
}

TEST_P(PipelineSweep, Invariants) {
  chaos::ScenarioSpec spec = chaos::random_scenario(GetParam());
  spec.app = chaos::SampleApp::kPipeline;
  run_sweep_case(spec);
}

TEST_P(MonitorSweep, Invariants) {
  chaos::ScenarioSpec spec = chaos::random_scenario(GetParam());
  spec.app = chaos::SampleApp::kMonitor;
  run_sweep_case(spec);
}

TEST_P(CrashSweep, Invariants) {
  chaos::ScenarioSpec spec = chaos::random_scenario(GetParam());
  spec.crash_clone = true;
  run_sweep_case(spec);
}

// The machine-loss analogue of run_sweep_case: a kv scenario has no abort
// path -- the service must finish and every invariant (7 included) must
// hold whether or not the kill landed mid-workload.
TEST_P(KvSweep, Invariant7AcrossMachineLoss) {
  chaos::ScenarioSpec spec = chaos::random_kv_scenario(GetParam());
  chaos::ScenarioResult r = chaos::run_scenario(spec);
  ASSERT_TRUE(r.ok()) << r.failure << "\n  replay: " << spec.describe();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterSweep,
                         ::testing::Range<std::uint64_t>(1, 101));
INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSweep,
                         ::testing::Range<std::uint64_t>(101, 151));
INSTANTIATE_TEST_SUITE_P(Seeds, MonitorSweep,
                         ::testing::Range<std::uint64_t>(151, 191));
INSTANTIATE_TEST_SUITE_P(Seeds, CrashSweep,
                         ::testing::Range<std::uint64_t>(191, 216));
INSTANTIATE_TEST_SUITE_P(Seeds, KvSweep,
                         ::testing::Range<std::uint64_t>(1, 216));

}  // namespace
}  // namespace surgeon
