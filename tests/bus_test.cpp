#include <gtest/gtest.h>

#include "bus/bus.hpp"
#include "bus/client.hpp"

namespace surgeon::bus {
namespace {

using support::BusError;

class BusTest : public ::testing::Test {
 protected:
  BusTest() : bus_(sim_) {
    sim_.add_machine("vax", net::arch_vax());
    sim_.add_machine("sparc", net::arch_sparc());
    net::LatencyModel model;
    model.local_us = 10;
    model.remote_us = 1000;
    sim_.set_latency_model(model);
  }

  ModuleInfo make_module(const std::string& name, const std::string& machine) {
    ModuleInfo info;
    info.name = name;
    info.machine = machine;
    info.interfaces = {
        InterfaceSpec{"in", IfaceRole::kUse, "i", ""},
        InterfaceSpec{"out", IfaceRole::kDefine, "i", ""},
    };
    return info;
  }

  void add_pair() {
    bus_.add_module(make_module("a", "vax"));
    bus_.add_module(make_module("b", "sparc"));
    bus_.add_binding({"a", "out"}, {"b", "in"});
  }

  net::Simulator sim_;
  Bus bus_;
};

TEST_F(BusTest, RegisterAndQueryModules) {
  bus_.add_module(make_module("a", "vax"));
  EXPECT_TRUE(bus_.has_module("a"));
  EXPECT_EQ(bus_.module_info("a").machine, "vax");
  EXPECT_EQ(bus_.interface_names("a"),
            (std::vector<std::string>{"in", "out"}));
  EXPECT_THROW(bus_.add_module(make_module("a", "vax")), BusError);
  EXPECT_THROW(bus_.add_module(make_module("x", "nosuch")), BusError);
  EXPECT_THROW((void)bus_.module_info("zz"), BusError);
}

TEST_F(BusTest, DuplicateInterfaceRejected) {
  ModuleInfo info = make_module("dup", "vax");
  info.interfaces.push_back(info.interfaces.front());
  EXPECT_THROW(bus_.add_module(std::move(info)), BusError);
}

TEST_F(BusTest, SendDeliversAfterLatency) {
  add_pair();
  bus_.send("a", "out", {ser::Value(std::int64_t{5})});
  EXPECT_FALSE(bus_.has_message("b", "in"));  // still in flight
  sim_.run();
  EXPECT_EQ(sim_.now(), 1000u);  // cross-machine latency
  ASSERT_TRUE(bus_.has_message("b", "in"));
  auto msg = bus_.receive("b", "in");
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->values[0].as_int(), 5);
  EXPECT_EQ(bus_.source_of(*msg), (BindingEnd{"a", "out"}));
  EXPECT_FALSE(bus_.has_message("b", "in"));
}

TEST_F(BusTest, UnboundSendIsCountedAndDropped) {
  bus_.add_module(make_module("a", "vax"));
  bus_.send("a", "out", {ser::Value(std::int64_t{1})});
  sim_.run();
  EXPECT_EQ(bus_.stats().messages_dropped_unbound, 1u);
  EXPECT_EQ(bus_.stats().messages_delivered, 0u);
}

TEST_F(BusTest, RoleDirectionEnforced) {
  add_pair();
  EXPECT_THROW(bus_.send("b", "in", {}), BusError);       // use can't send
  EXPECT_THROW((void)bus_.receive("a", "out"), BusError); // define can't recv
}

TEST_F(BusTest, MessageOrderPreservedPerSender) {
  add_pair();
  for (int i = 0; i < 10; ++i) {
    bus_.send("a", "out", {ser::Value(std::int64_t{i})});
  }
  sim_.run();
  for (int i = 0; i < 10; ++i) {
    auto msg = bus_.receive("b", "in");
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->values[0].as_int(), i);
  }
}

TEST_F(BusTest, FanOutToMultiplePeers) {
  bus_.add_module(make_module("a", "vax"));
  bus_.add_module(make_module("b", "vax"));
  bus_.add_module(make_module("c", "sparc"));
  bus_.add_binding({"a", "out"}, {"b", "in"});
  bus_.add_binding({"a", "out"}, {"c", "in"});
  bus_.send("a", "out", {ser::Value(std::int64_t{9})});
  sim_.run();
  EXPECT_TRUE(bus_.has_message("b", "in"));
  EXPECT_TRUE(bus_.has_message("c", "in"));
}

TEST_F(BusTest, BindingValidation) {
  add_pair();
  // duplicate (including flipped) rejected
  EXPECT_THROW(bus_.add_binding({"b", "in"}, {"a", "out"}), BusError);
  // unknown interface rejected
  EXPECT_THROW(bus_.add_binding({"a", "nope"}, {"b", "in"}), BusError);
  // delete works, then double delete rejected
  bus_.del_binding({"a", "out"}, {"b", "in"});
  EXPECT_THROW(bus_.del_binding({"a", "out"}, {"b", "in"}), BusError);
}

TEST_F(BusTest, BoundPeersReflectsTable) {
  add_pair();
  auto peers = bus_.bound_peers({"a", "out"});
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0], (BindingEnd{"b", "in"}));
  EXPECT_TRUE(bus_.bound_peers({"a", "in"}).empty());
}

TEST_F(BusTest, RebindIsAtomicOnFailure) {
  add_pair();
  BindEditBatch batch;
  batch.add(BindEdit{BindEdit::Op::kDel, {"a", "out"}, {"b", "in"}});
  batch.add(BindEdit{BindEdit::Op::kAdd, {"a", "nosuch"}, {"b", "in"}});
  EXPECT_THROW(bus_.rebind(batch), BusError);
  // The delete must have been rolled back.
  EXPECT_EQ(bus_.bound_peers({"a", "out"}).size(), 1u);
}

TEST_F(BusTest, QueueCaptureMovesMessages) {
  add_pair();
  bus_.add_module(make_module("b2", "sparc"));
  bus_.send("a", "out", {ser::Value(std::int64_t{1})});
  bus_.send("a", "out", {ser::Value(std::int64_t{2})});
  sim_.run();
  ASSERT_EQ(bus_.queue_depth("b", "in"), 2u);
  BindEditBatch batch;
  batch.add(BindEdit{BindEdit::Op::kCaptureQueue, {"b", "in"}, {"b2", "in"}});
  batch.add(BindEdit{BindEdit::Op::kRemoveQueue, {"b", "in"}, {}});
  bus_.rebind(batch);
  EXPECT_EQ(bus_.queue_depth("b", "in"), 0u);
  EXPECT_EQ(bus_.queue_depth("b2", "in"), 2u);
  EXPECT_EQ(bus_.receive("b2", "in")->values[0].as_int(), 1);
}

TEST_F(BusTest, RemoveModuleDropsBindingsAndInFlight) {
  add_pair();
  bus_.send("a", "out", {ser::Value(std::int64_t{7})});
  bus_.remove_module("b");  // while the message is in flight
  sim_.run();
  EXPECT_FALSE(bus_.has_module("b"));
  EXPECT_TRUE(bus_.bound_peers({"a", "out"}).empty());
  EXPECT_EQ(bus_.stats().messages_dropped_unbound, 1u);
  // A recreated module with the same name must not receive stale traffic.
  bus_.send("a", "out", {ser::Value(std::int64_t{8})});
  bus_.add_module(make_module("b", "vax"));
  sim_.run();
  EXPECT_FALSE(bus_.has_message("b", "in"));
}

TEST_F(BusTest, SignalDeliveredAsynchronously) {
  add_pair();
  bus_.signal_reconfig("a");
  EXPECT_FALSE(bus_.take_pending_signal("a"));  // not delivered yet
  sim_.run();
  EXPECT_TRUE(bus_.take_pending_signal("a"));
  EXPECT_FALSE(bus_.take_pending_signal("a"));  // one-shot
  EXPECT_EQ(bus_.stats().signals_delivered, 1u);
}

TEST_F(BusTest, StateMailboxes) {
  add_pair();
  std::vector<std::uint8_t> bytes = {1, 2, 3};
  EXPECT_FALSE(bus_.has_divulged_state("a"));
  bus_.post_divulged_state("a", bytes);
  EXPECT_TRUE(bus_.has_divulged_state("a"));
  EXPECT_THROW(bus_.post_divulged_state("a", bytes), BusError);
  EXPECT_EQ(bus_.take_divulged_state("a"), bytes);
  EXPECT_THROW((void)bus_.take_divulged_state("a"), BusError);

  bus_.deliver_state("vax", "b", bytes);
  EXPECT_FALSE(bus_.has_incoming_state("b"));  // in transit
  sim_.run();
  ASSERT_TRUE(bus_.has_incoming_state("b"));
  EXPECT_EQ(*bus_.take_incoming_state("b"), bytes);
  EXPECT_FALSE(bus_.take_incoming_state("b").has_value());
}

TEST_F(BusTest, WakeCallbackFires) {
  add_pair();
  std::vector<std::string> woken;
  bus_.set_wake_callback([&](const std::string& m) { woken.push_back(m); });
  bus_.send("a", "out", {ser::Value(std::int64_t{1})});
  bus_.signal_reconfig("a");
  sim_.run();
  EXPECT_EQ(woken.size(), 2u);
}

TEST_F(BusTest, ClientFacade) {
  add_pair();
  Client client(bus_, "a");
  EXPECT_EQ(client.module_name(), "a");
  EXPECT_EQ(client.status(), "new");
  EXPECT_EQ(client.machine(), "vax");
  client.write("out", {ser::Value(std::int64_t{11})});
  sim_.run();
  Client receiver(bus_, "b");
  EXPECT_TRUE(receiver.query_ifmsgs("in"));
  auto msg = receiver.try_read("in");
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->values[0].as_int(), 11);

  ser::StateBuffer state;
  state.push_frame(ser::StateFrame{{ser::Value(std::int64_t{5})}});
  client.encode_state(state);
  auto bytes = bus_.take_divulged_state("a");
  bus_.deliver_state("vax", "b", std::move(bytes));
  sim_.run();
  auto decoded = receiver.decode_state();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->frame_count(), 1u);
}

TEST_F(BusTest, TraceRecordsTheFullEventStory) {
  std::vector<TraceEvent> events;
  bus_.set_trace([&](const TraceEvent& ev) { events.push_back(ev); });
  add_pair();
  bus_.send("a", "out", {ser::Value(std::int64_t{1})});
  bus_.signal_reconfig("a");
  sim_.run();
  bus_.post_divulged_state("a", {1, 2, 3});
  bus_.deliver_state("vax", "b", bus_.take_divulged_state("a"));
  sim_.run();
  bus_.remove_module("b");

  std::vector<TraceEvent::Kind> kinds;
  for (const auto& ev : events) kinds.push_back(ev.kind);
  EXPECT_EQ(kinds,
            (std::vector<TraceEvent::Kind>{
                TraceEvent::Kind::kModuleAdded,   // a
                TraceEvent::Kind::kModuleAdded,   // b
                TraceEvent::Kind::kRebind,        // the binding
                TraceEvent::Kind::kSend,          // a.out at t=0
                TraceEvent::Kind::kSignal,        // a at t=10 (local)
                TraceEvent::Kind::kDeliver,       // b.in at t=1000 (remote)
                TraceEvent::Kind::kStateDivulged, // a, 3 bytes
                TraceEvent::Kind::kStateDelivered,// b
                TraceEvent::Kind::kModuleRemoved, // b
            }));
  // Timestamps are the virtual times of the events.
  EXPECT_EQ(events[3].at, 0u);       // send happens immediately
  EXPECT_EQ(events[5].at, 1000u);    // cross-machine delivery latency
  EXPECT_NE(events[6].detail.find("3 bytes"), std::string::npos);
  EXPECT_NE(events[0].detail.find("machine=vax"), std::string::npos);
  // Human-readable rendering.
  EXPECT_NE(events[5].to_string().find("deliver b (in)"), std::string::npos)
      << events[5].to_string();
}

TEST_F(BusTest, TraceDisabledByDefaultAndDetachable) {
  add_pair();
  std::size_t count = 0;
  bus_.set_trace([&](const TraceEvent&) { ++count; });
  bus_.send("a", "out", {ser::Value(std::int64_t{1})});
  sim_.run();
  EXPECT_GT(count, 0u);
  std::size_t at_detach = count;
  bus_.set_trace(nullptr);
  bus_.send("a", "out", {ser::Value(std::int64_t{2})});
  sim_.run();
  EXPECT_EQ(count, at_detach);
}

TEST_F(BusTest, StatsTrackStateBytes) {
  add_pair();
  bus_.post_divulged_state("a", std::vector<std::uint8_t>(100, 0));
  EXPECT_EQ(bus_.stats().state_transfers, 1u);
  EXPECT_EQ(bus_.stats().state_bytes_moved, 100u);
}

TEST_F(BusTest, EndpointSlabRecyclesSlotsWithoutLeaks) {
  add_pair();
  const std::size_t slots = bus_.endpoint_slab_size();
  EXPECT_EQ(slots, 4u);  // two modules x two interfaces
  // Park a message in b's queue, then retire b with it still queued.
  bus_.send("a", "out", {ser::Value(std::int64_t{1})});
  sim_.run();
  ASSERT_EQ(bus_.queue_depth("b", "in"), 1u);
  bus_.remove_module("b");
  EXPECT_EQ(bus_.endpoint_slab_size(), slots);  // slots retired, not dropped
  // The re-added tenant recycles the freed slots and must start clean: no
  // inherited queue contents, and the slab must not have grown.
  bus_.add_module(make_module("b", "sparc"));
  EXPECT_EQ(bus_.endpoint_slab_size(), slots);
  EXPECT_EQ(bus_.queue_depth("b", "in"), 0u);
  EXPECT_FALSE(bus_.has_message("b", "in"));
  // A third module needs fresh slots again.
  bus_.add_module(make_module("c", "vax"));
  EXPECT_EQ(bus_.endpoint_slab_size(), slots + 2);
}

TEST_F(BusTest, EndpointRefsGoStaleOnRemoval) {
  add_pair();
  const EndpointRef out = bus_.resolve_endpoint("a", "out");
  const EndpointRef in = bus_.resolve_endpoint("b", "in");
  EXPECT_TRUE(bus_.endpoint_current(out));
  bus_.send(out, {ser::Value(std::int64_t{3})});
  sim_.run();
  EXPECT_TRUE(bus_.has_message(in));
  EXPECT_EQ(bus_.receive(in)->values[0].as_int(), 3);
  bus_.remove_module("b");
  bus_.add_module(make_module("b", "sparc"));
  // The recycled slot has a new generation: the old handle must not reach
  // the new tenant, and every ref-based entry point must reject it.
  EXPECT_FALSE(bus_.endpoint_current(in));
  EXPECT_THROW((void)bus_.has_message(in), BusError);
  EXPECT_THROW((void)bus_.receive(in), BusError);
  EXPECT_THROW((void)bus_.queue_depth(in), BusError);
  EXPECT_THROW(bus_.send(in, {}), BusError);
  EXPECT_NE(bus_.resolve_endpoint("b", "in"), in);
}

TEST_F(BusTest, ClientPortCacheReresolvesAfterReplacement) {
  add_pair();
  Client sender(bus_, "a");
  sender.write("out", {ser::Value(std::int64_t{1})});
  sim_.run();
  EXPECT_EQ(bus_.queue_depth("b", "in"), 1u);
  // Replace the sender under the same name (clone promotion does exactly
  // this): the client's cached handle goes stale and must re-resolve.
  bus_.remove_module("a");
  bus_.add_module(make_module("a", "vax"));
  bus_.add_binding({"a", "out"}, {"b", "in"});
  sender.write("out", {ser::Value(std::int64_t{2})});
  sim_.run();
  EXPECT_EQ(bus_.queue_depth("b", "in"), 2u);
}

TEST_F(BusTest, ReplacedModuleStartsAFreshReliableStream) {
  DeliveryOptions opts;
  opts.reliable = true;
  bus_.set_delivery(opts);
  add_pair();
  for (int i = 0; i < 3; ++i) {
    bus_.send("a", "out", {ser::Value(std::int64_t{i})});
  }
  sim_.run();
  // Replace the sender. Its stream died with it; the new instance's sends
  // restart at seq 0 under a NEW stream key (the generation-stamped ref of
  // its recycled endpoint), so the receiver must not mistake them for
  // duplicates of the predecessor's seq 0..2.
  bus_.remove_module("a");
  bus_.add_module(make_module("a", "vax"));
  bus_.add_binding({"a", "out"}, {"b", "in"});
  for (int i = 3; i < 6; ++i) {
    bus_.send("a", "out", {ser::Value(std::int64_t{i})});
  }
  sim_.run();
  EXPECT_EQ(bus_.reliable_stats().dup_discards, 0u);
  EXPECT_EQ(bus_.stats().messages_delivered, 6u);
  for (int i = 0; i < 6; ++i) {
    auto msg = bus_.receive("b", "in");
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->values[0].as_int(), i);
  }
  EXPECT_EQ(bus_.unacked_total(), 0u);
}

TEST_F(BusTest, AppliedControlHistoryStaysBounded) {
  DeliveryOptions opts;
  opts.reliable = true;
  bus_.set_delivery(opts);
  add_pair();
  const std::size_t rounds = Bus::kAppliedControlWindow + 50;
  for (std::size_t i = 0; i < rounds; ++i) {
    bus_.signal_reconfig("a");
    sim_.run();
    EXPECT_TRUE(bus_.take_pending_signal("a"));
    EXPECT_LE(bus_.applied_control_size("a"), Bus::kAppliedControlWindow);
  }
  // Every transfer was applied exactly once: the sliding window trimmed the
  // dedup history without ever re-applying or double-counting a delivery.
  EXPECT_EQ(bus_.stats().signals_delivered, rounds);
  EXPECT_EQ(bus_.applied_control_size("a"), Bus::kAppliedControlWindow);
  EXPECT_EQ(bus_.pending_control_total(), 0u);
}

}  // namespace
}  // namespace surgeon::bus
