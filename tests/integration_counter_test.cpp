// Exact state-fidelity integration tests on the deterministic counter app:
// the client's observed replies must be bit-identical whether or not the
// server is replaced/migrated mid-run, because the server's entire process
// state (global accumulator + AR stack mid-recursion) moves with it.
#include <gtest/gtest.h>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "reconfig/scripts.hpp"

namespace surgeon {
namespace {

using app::Runtime;

std::unique_ptr<Runtime> make_counter(int requests) {
  auto rt = std::make_unique<Runtime>(3);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  rt->load_application(config, "counter",
                       [&](const cfg::ModuleSpec& spec) {
                         if (spec.name == "client") {
                           return app::samples::counter_client_source(
                               requests);
                         }
                         return app::samples::counter_server_source();
                       });
  return rt;
}

std::vector<std::string> run_plain(int requests) {
  auto rt = make_counter(requests);
  EXPECT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
  return rt->machine_of("client")->output();
}

TEST(Counter, BaselineCompletesWithExpectedTotals) {
  auto output = run_plain(5);
  ASSERT_EQ(output.size(), 6u);
  // total after request j = sum_{i<=j} i(i+1)/2 running accumulation:
  // replies: 1, 4, 10, 20, 35.
  EXPECT_EQ(output[0], "reply 1 1");
  EXPECT_EQ(output[1], "reply 2 4");
  EXPECT_EQ(output[2], "reply 3 10");
  EXPECT_EQ(output[3], "reply 4 20");
  EXPECT_EQ(output[4], "reply 5 35");
  EXPECT_EQ(output[5], "client-done");
}

TEST(Counter, ReplacementPreservesExactOutputs) {
  const int requests = 12;
  auto reference = run_plain(requests);

  auto rt = make_counter(requests);
  // Let a few requests through, then replace the server mid-run.
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 4; },
      10'000'000));
  auto report = reconfig::replace_module(*rt, "server");
  EXPECT_GT(report.state_frames, 0u);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
  EXPECT_EQ(rt->machine_of("client")->output(), reference);
}

TEST(Counter, CrossMachineMigrationPreservesExactOutputs) {
  const int requests = 10;
  auto reference = run_plain(requests);

  auto rt = make_counter(requests);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 3; },
      10'000'000));
  auto report = reconfig::move_module(*rt, "server", "sparc");
  EXPECT_EQ(rt->bus().module_info(report.new_instance).machine, "sparc");
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
  EXPECT_EQ(rt->machine_of("client")->output(), reference);
}

TEST(Counter, ChainedReplacementsPreserveExactOutputs) {
  const int requests = 15;
  auto reference = run_plain(requests);

  auto rt = make_counter(requests);
  std::string server = "server";
  for (std::size_t after : {3u, 6u, 9u}) {
    ASSERT_TRUE(rt->run_until(
        [&] { return rt->machine_of("client")->output().size() >= after; },
        10'000'000));
    auto report = reconfig::replace_module(
        *rt, server,
        reconfig::ReplaceOptions{
            server == "server" ? "sparc" : "vax", nullptr, 1'000'000,
            10'000, true});
    server = report.new_instance;
  }
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
  EXPECT_EQ(rt->machine_of("client")->output(), reference);
}

TEST(Counter, UpdateToCompatibleV2ChangesBehaviourButKeepsState) {
  // Software maintenance: v2 replies with the total TIMES TEN after the
  // update, but continues from v1's accumulated state. The reconfiguration
  // graph shape and captured layouts are identical, so v1 frames install
  // cleanly in v2 code.
  const int requests = 8;
  auto rt = make_counter(requests);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 4; },
      10'000'000));

  // v2: same shape as counter_server_source, different reply statement.
  const std::string v2_src = R"(
int total = 0;

void bump(int k, int *out)
{
  if (k <= 0) { return; }
  bump(k - 1, out);
RP:
  total = total + k;
  *out = total * 10;
}

void main()
{
  int k;
  int result;
  while (1) {
    mh_read("req", "i", &k);
    bump(k, &result);
    mh_write("req", "i", result);
  }
}
)";
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  minic::Program v2 = minic::parse_program(v2_src);
  minic::analyze(v2);
  xform::prepare_module(v2, config.find_module("server")->reconfig_points);
  auto v2_prog = std::make_shared<const vm::CompiledProgram>(vm::compile(v2));

  auto report = reconfig::update_module(*rt, "server", v2_prog);
  (void)report;
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
  const auto& output = rt->machine_of("client")->output();
  ASSERT_EQ(output.size(), static_cast<std::size_t>(requests) + 1);
  // Pre-update replies follow v1 (total), post-update v2 (total * 10), and
  // the totals themselves continue seamlessly: reply j ~ T(j) or 10*T(j)
  // where T(j) = sum_{i<=j} i(i+1)/2.
  auto triangular_sum = [](int j) {
    long long t = 0;
    for (int i = 1; i <= j; ++i) t += 1LL * i * (i + 1) / 2;
    return t;
  };
  int v2_replies = 0;
  for (int j = 1; j <= requests; ++j) {
    const std::string& line = output[static_cast<std::size_t>(j - 1)];
    long long value = std::stoll(line.substr(line.rfind(' ') + 1));
    long long v1_expect = triangular_sum(j);
    if (value == v1_expect) continue;
    EXPECT_EQ(value, v1_expect * 10) << "request " << j;
    ++v2_replies;
  }
  EXPECT_GT(v2_replies, 0) << "update never took effect";
}

TEST(Counter, ReplicationInstallsSameStateTwice) {
  const int requests = 10;
  auto rt = make_counter(requests);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 3; },
      10'000'000));
  auto report = reconfig::replicate_module(*rt, "server", "sparc");
  ASSERT_TRUE(rt->bus().has_module(report.primary.new_instance));
  ASSERT_TRUE(rt->bus().has_module(report.replica_instance));
  EXPECT_EQ(rt->bus().module_info(report.replica_instance).machine, "sparc");
  // Both clones decoded the same state buffer.
  EXPECT_EQ(rt->machine_of(report.primary.new_instance)->decode_count(), 1u);
  EXPECT_EQ(rt->machine_of(report.replica_instance)->decode_count(), 1u);
  // The primary continues serving the client to completion.
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
}

TEST(Counter, LivenessModeFullApplicationFidelity) {
  // The liveness-refined transformation (per-edge frames, peek-based
  // restore) drives the full application with exact output fidelity too.
  const int requests = 10;
  auto reference = run_plain(requests);

  auto rt = std::make_unique<Runtime>(3);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  xform::XformOptions xopts;
  xopts.use_liveness = true;
  rt->load_application(config, "counter",
                       [&](const cfg::ModuleSpec& spec) {
                         if (spec.name == "client") {
                           return app::samples::counter_client_source(
                               requests);
                         }
                         return app::samples::counter_server_source();
                       },
                       xopts);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 4; },
      10'000'000));
  (void)reconfig::move_module(*rt, "server", "sparc");
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
  EXPECT_EQ(rt->machine_of("client")->output(), reference);
}

TEST(Counter, OptimizedBuildFullApplicationFidelity) {
  // The optimizer (the machine's "optimizing compiler") composes with the
  // transformation in the full application.
  const int requests = 10;
  auto reference = run_plain(requests);

  auto rt = std::make_unique<Runtime>(3);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  rt->load_application(config, "counter",
                       [&](const cfg::ModuleSpec& spec) {
                         if (spec.name == "client") {
                           return app::samples::counter_client_source(
                               requests);
                         }
                         return app::samples::counter_server_source();
                       },
                       {}, /*optimize=*/true);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 4; },
      10'000'000));
  (void)reconfig::replace_module(*rt, "server", {});
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
  EXPECT_EQ(rt->machine_of("client")->output(), reference);
}

TEST(Counter, ReplaceBeforeAnyTraffic) {
  // Edge case: reconfigure before the first request. The server is parked
  // in mh_read; the signal is delivered, and the capture happens when the
  // first request drives execution through RP.
  const int requests = 6;
  auto reference = run_plain(requests);
  auto rt = make_counter(requests);
  auto report = reconfig::replace_module(*rt, "server");
  EXPECT_GE(report.state_frames, 1u);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
  EXPECT_EQ(rt->machine_of("client")->output(), reference);
}

}  // namespace
}  // namespace surgeon
