// surgeon::replicate -- consistent-hash placement, machine-level failure
// detection, the sharded KV workload, and self-healing group rebuild.
//
// The KillDuringRebuildSweep at the bottom is the 200-seed robustness
// gate: kill a machine mid-workload (and, at some seeds, a second machine
// while the first rebuild is in flight), then require the client ledger to
// hold -- no acknowledged write lost, no stale value resurfacing.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "app/runtime.hpp"
#include "net/arch.hpp"
#include "profile/telemetry.hpp"
#include "recover/detector.hpp"
#include "replicate/kv.hpp"
#include "replicate/manager.hpp"
#include "replicate/placement.hpp"
#include "replicate/rebuild.hpp"

namespace surgeon {
namespace {

using recover::MachineDetector;
using recover::MachineDetectorOptions;
using recover::MachineHealth;
using replicate::GroupManager;
using replicate::HashRing;
using replicate::KvOptions;
using replicate::KvService;
using replicate::ManagerOptions;
using replicate::RingOptions;

// --- placement ---------------------------------------------------------------

TEST(Placement, SameSeedSameRing) {
  RingOptions opts;
  opts.seed = 42;
  HashRing a(opts);
  HashRing b(opts);
  for (const char* m : {"m0", "m1", "m2", "m3"}) {
    a.add_machine(m);
    b.add_machine(m);
  }
  for (int g = 0; g < 64; ++g) {
    const std::string key = replicate::kv_group_key(g);
    EXPECT_EQ(a.place(key, 3), b.place(key, 3)) << key;
  }
}

TEST(Placement, DifferentSeedsDiffer) {
  HashRing a(RingOptions{64, 1});
  HashRing b(RingOptions{64, 2});
  for (const char* m : {"m0", "m1", "m2", "m3"}) {
    a.add_machine(m);
    b.add_machine(m);
  }
  int differing = 0;
  for (int g = 0; g < 64; ++g) {
    const std::string key = replicate::kv_group_key(g);
    if (a.place(key, 2) != b.place(key, 2)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(Placement, DistinctMachinesAndInsertionOrderIrrelevant) {
  HashRing fwd(RingOptions{64, 7});
  HashRing rev(RingOptions{64, 7});
  const std::vector<std::string> machines = {"m0", "m1", "m2", "m3", "m4"};
  for (const auto& m : machines) fwd.add_machine(m);
  for (auto it = machines.rbegin(); it != machines.rend(); ++it) {
    rev.add_machine(*it);
  }
  for (int g = 0; g < 32; ++g) {
    const std::string key = replicate::kv_group_key(g);
    const auto placed = fwd.place(key, 3);
    ASSERT_EQ(placed.size(), 3u);
    EXPECT_EQ(std::set<std::string>(placed.begin(), placed.end()).size(), 3u);
    EXPECT_EQ(placed, rev.place(key, 3));
  }
}

TEST(Placement, RemovalOnlyMovesAffectedGroups) {
  HashRing ring(RingOptions{64, 9});
  for (const char* m : {"m0", "m1", "m2", "m3"}) ring.add_machine(m);
  std::vector<std::vector<std::string>> before;
  for (int g = 0; g < 48; ++g) {
    before.push_back(ring.place(replicate::kv_group_key(g), 2));
  }
  ring.remove_machine("m2");
  for (int g = 0; g < 48; ++g) {
    const auto after = ring.place(replicate::kv_group_key(g), 2);
    const bool touched = std::find(before[g].begin(), before[g].end(),
                                   "m2") != before[g].end();
    if (!touched) {
      // Consistent hashing's whole point: unaffected groups do not move.
      EXPECT_EQ(after, before[g]) << replicate::kv_group_key(g);
    } else {
      EXPECT_EQ(std::find(after.begin(), after.end(), "m2"), after.end());
    }
  }
}

TEST(Placement, ShortRingReturnsWhatExists) {
  HashRing ring;
  EXPECT_TRUE(ring.place("k", 3).empty());
  ring.add_machine("only");
  EXPECT_EQ(ring.place("k", 3), std::vector<std::string>{"only"});
}

// --- machine detector --------------------------------------------------------

TEST(MachineDetectorTest, SuspectThenConfirmTransitions) {
  MachineDetectorOptions opts;
  opts.suspicion_timeout_us = 50'000;
  opts.confirm_timeout_us = 120'000;
  MachineDetector det(opts);
  det.beat("a", "m0", 1'000);
  det.beat("b", "m0", 2'000);
  EXPECT_EQ(det.health("m0", 10'000), MachineHealth::kAlive);
  // Silence is measured from the machine's most recent beat across ALL its
  // modules: module a going quiet alone never suspects the machine.
  det.beat("b", "m0", 60'000);
  EXPECT_EQ(det.health("m0", 100'000), MachineHealth::kAlive);
  EXPECT_EQ(det.health("m0", 60'000 + 50'001), MachineHealth::kSuspect);
  EXPECT_EQ(det.suspects(60'000 + 50'001), std::vector<std::string>{"m0"});
  EXPECT_TRUE(det.confirmed(60'000 + 50'001).empty());
  EXPECT_EQ(det.health("m0", 60'000 + 120'001), MachineHealth::kConfirmed);
  EXPECT_EQ(det.confirmed(60'000 + 120'001), std::vector<std::string>{"m0"});
}

TEST(MachineDetectorTest, UntrackedMachinesReadAlive) {
  MachineDetector det;
  EXPECT_EQ(det.health("ghost", 1'000'000), MachineHealth::kAlive);
  EXPECT_TRUE(det.suspects(1'000'000).empty());
}

TEST(MachineDetectorTest, MigrationReattributesTheModule) {
  MachineDetector det;
  det.beat("mod", "m0", 1'000);
  det.beat("mod", "m1", 2'000);
  // The old host lost its only voucher and is no longer tracked at all --
  // a stale beat must not keep a dead machine looking alive, and an empty
  // record must not make a healthy machine look silent.
  EXPECT_EQ(det.tracked_machines(), 1u);
  EXPECT_EQ(det.modules_on("m1"), std::vector<std::string>{"mod"});
  EXPECT_TRUE(det.modules_on("m0").empty());
}

TEST(MachineDetectorTest, ForgettingTheMachineDropsItsModules) {
  MachineDetector det;
  det.beat("a", "m0", 1'000);
  det.beat("b", "m0", 1'000);
  det.beat("c", "m1", 1'000);
  det.forget_machine("m0");
  EXPECT_EQ(det.tracked_machines(), 1u);
  EXPECT_EQ(det.machine_names(), std::vector<std::string>{"m1"});
  // a's beats start from scratch after the forget.
  det.beat("a", "m0", 500'000);
  EXPECT_EQ(det.health("m0", 500'000), MachineHealth::kAlive);
}

// --- KV workload -------------------------------------------------------------

struct KvFixture {
  app::Runtime rt;
  KvOptions options;

  explicit KvFixture(std::uint64_t seed, std::size_t shards,
                     std::size_t group_size,
                     std::vector<std::string> machines,
                     std::vector<std::string> spares = {}) {
    options.seed = seed;
    options.shards = shards;
    options.group_size = group_size;
    options.machines = std::move(machines);
    for (const auto& m : options.machines) {
      rt.add_machine(m, net::arch_vax());
    }
    for (const auto& m : spares) rt.add_machine(m, net::arch_vax());
    rt.add_machine(options.control_machine, net::arch_vax());
  }
};

ManagerOptions fast_manager_options() {
  ManagerOptions m;
  m.heartbeat_interval_us = 5'000;
  m.sweep_interval_us = 20'000;
  m.detector.suspicion_timeout_us = 30'000;
  m.detector.confirm_timeout_us = 60'000;
  return m;
}

/// Every group currently has `group_size` members, all running, on
/// distinct live machines, none on `forbidden`.
void expect_redundant(KvService& service, const std::string& forbidden) {
  app::Runtime& rt = service.runtime();
  for (std::size_t g = 0; g < service.options().shards; ++g) {
    const auto members = service.router().members(g);
    ASSERT_EQ(members.size(), service.options().group_size)
        << "group " << g;
    std::set<std::string> hosts;
    for (const auto& m : members) {
      EXPECT_TRUE(rt.module_running(m)) << m;
      const std::string host = rt.bus().module_info(m).machine;
      EXPECT_NE(host, forbidden) << m;
      hosts.insert(host);
    }
    EXPECT_EQ(hosts.size(), members.size()) << "group " << g;
  }
}

TEST(Kv, FaultFreeRunAcksEverythingConsistently) {
  KvFixture f(11, 3, 2, {"m0", "m1", "m2"});
  KvService service(f.rt, f.options);
  service.launch(30);
  ASSERT_TRUE(service.run_to_completion(10'000'000, 50'000'000));
  const auto& client = service.client();
  EXPECT_TRUE(client.ledger_violations().empty());
  EXPECT_EQ(service.router().stats().stale_gets, 0u);
  // Read-back equals the ledger for every written key; unwritten keys are 0.
  for (const auto& [key, value] : client.readback()) {
    const auto it = client.acked_writes().find(key);
    EXPECT_EQ(value, it == client.acked_writes().end() ? 0 : it->second)
        << "key " << key;
  }
  EXPECT_EQ(client.readback().size(),
            f.options.shards * replicate::kSlotsPerShard);
}

TEST(Kv, ReportIsDeterministicAcrossRuns) {
  std::vector<std::string> first;
  for (int run = 0; run < 2; ++run) {
    KvFixture f(7, 2, 2, {"m0", "m1"});
    KvService service(f.rt, f.options);
    service.launch(20);
    ASSERT_TRUE(service.run_to_completion(10'000'000, 50'000'000));
    const auto report = service.client().report();
    if (run == 0) {
      first = report;
    } else {
      EXPECT_EQ(report, first);
    }
  }
}

TEST(Kv, PlacementUsesRingAndDistinctMachines) {
  KvFixture f(3, 6, 3, {"m0", "m1", "m2", "m3"});
  KvService service(f.rt, f.options);
  HashRing expected(RingOptions{f.options.vnodes, f.options.seed});
  for (const auto& m : f.options.machines) expected.add_machine(m);
  for (std::size_t g = 0; g < 6; ++g) {
    EXPECT_EQ(service.placements()[g],
              expected.place(replicate::kv_group_key(g), 3));
  }
}

// --- rebuild -----------------------------------------------------------------

TEST(Rebuild, MachineLossHealsOntoSpareWhileServing) {
  KvFixture f(21, 4, 2, {"m0", "m1", "m2"}, {"sp0"});
  KvService service(f.rt, f.options);
  service.launch(60);
  ManagerOptions mopts = fast_manager_options();
  mopts.spares = {"sp0"};
  GroupManager manager(service, mopts);
  manager.start();

  // Let some traffic through, then lose a machine under load.
  (void)f.rt.run_for(30'000, 50'000'000);
  const auto killed = f.rt.crash_machine("m0");
  EXPECT_FALSE(killed.empty());

  ASSERT_TRUE(service.run_to_completion(30'000'000, 200'000'000));
  manager.stop();
  EXPECT_TRUE(service.client().ledger_violations().empty())
      << service.client().ledger_violations().front();
  EXPECT_EQ(service.router().stats().stale_gets, 0u);
  EXPECT_GE(manager.stats().machines_rebuilt, 1u);
  EXPECT_EQ(manager.stats().data_loss_groups, 0u);
  expect_redundant(service, "m0");
}

TEST(Rebuild, DirectDriveWithoutHeartbeats) {
  KvFixture f(5, 3, 2, {"m0", "m1", "m2"}, {"sp0"});
  KvService service(f.rt, f.options);
  service.launch(200);  // long script: still mid-run at the kill
  ManagerOptions mopts;
  mopts.spares = {"sp0"};
  GroupManager manager(service, mopts);

  (void)f.rt.run_for(20'000, 50'000'000);
  (void)f.rt.crash_machine("m1");
  EXPECT_TRUE(manager.rebuild_machine("m1"));
  expect_redundant(service, "m1");
  // Rebuilt groups keep serving: run a bit more and require progress.
  const auto acked_before = service.client().stats().acked;
  (void)f.rt.run_for(50'000, 50'000'000);
  EXPECT_GT(service.client().stats().acked, acked_before);
  EXPECT_TRUE(service.client().ledger_violations().empty());
}

TEST(Rebuild, RebalanceAfterJoinRespectsPlacement) {
  KvFixture f(13, 6, 2, {"m0", "m1"}, {"m2"});
  KvService service(f.rt, f.options);
  service.launch(10);
  ASSERT_TRUE(service.run_to_completion(10'000'000, 50'000'000));

  ManagerOptions mopts;
  GroupManager manager(service, mopts);
  const std::size_t moves = manager.rebalance("m2");
  // With two machines hosting all six 2-groups, a third machine must take
  // over some placements.
  EXPECT_GT(moves, 0u);
  for (std::size_t g = 0; g < 6; ++g) {
    const auto placement = service.ring().place(replicate::kv_group_key(g), 2);
    std::set<std::string> hosts;
    for (const auto& m : service.router().members(g)) {
      const std::string host = f.rt.bus().module_info(m).machine;
      EXPECT_NE(std::find(placement.begin(), placement.end(), host),
                placement.end())
          << "group " << g << " member " << m << " on " << host;
      hosts.insert(host);
    }
    EXPECT_EQ(hosts.size(), 2u) << "group " << g;
  }
}

// The operator-facing view: GroupManager publishes surgeon_replica_role
// gauges, the telemetry plane streams them to the collector, and mh_top's
// table renders a ROLE column naming each member primary or follower.
TEST(Rebuild, MhTopTableShowsReplicaRoles) {
  KvFixture f(17, 2, 2, {"m0", "m1", "m2"});
  f.rt.enable_metrics();
  KvService service(f.rt, f.options);
  service.launch(30);
  GroupManager manager(service, fast_manager_options());
  manager.start();

  auto collector = std::make_unique<profile::Collector>(
      f.rt.bus(), "collector", f.options.control_machine);
  std::vector<std::unique_ptr<profile::Reporter>> reporters;
  for (const auto& m : f.options.machines) {
    reporters.push_back(std::make_unique<profile::Reporter>(
        f.rt.bus(), f.rt.metrics(), m, "collector"));
  }

  ASSERT_TRUE(service.run_to_completion(10'000'000, 50'000'000));
  (void)f.rt.run_for(500'000, 50'000'000);  // reporter flush intervals
  manager.stop();

  EXPECT_GT(collector->deltas_applied(), 0u);
  const std::string table = collector->top("table");
  EXPECT_NE(table.find("ROLE"), std::string::npos);
  EXPECT_NE(table.find("primary"), std::string::npos);
  EXPECT_NE(table.find("follower"), std::string::npos);
  // Non-replicated series render "-", never a bogus role.
  EXPECT_NE(table.find("-"), std::string::npos);
}

// --- the 200-seed kill-during-rebuild sweep ---------------------------------

TEST(KillDuringRebuildSweep, LedgerHoldsAcrossTwoHundredSeeds) {
  int double_kills = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    KvFixture f(seed, 3, 3, {"m0", "m1", "m2", "m3"}, {"sp0", "sp1"});
    KvService service(f.rt, f.options);
    service.launch(24);
    ManagerOptions mopts = fast_manager_options();
    mopts.spares = {"sp0", "sp1"};
    GroupManager manager(service, mopts);
    manager.start();

    // First kill lands mid-workload at a seed-dependent time; at every
    // third seed a second machine dies while the first rebuild is likely
    // in flight (group_size 3 tolerates two overlapping losses).
    const net::SimTime first_kill = 10'000 + (seed % 7) * 5'000;
    (void)f.rt.run_for(first_kill, 50'000'000);
    const std::string victim = "m" + std::to_string(seed % 4);
    (void)f.rt.crash_machine(victim);
    std::string second;
    if (seed % 3 == 0) {
      const net::SimTime gap = 40'000 + (seed % 5) * 20'000;
      (void)f.rt.run_for(gap, 50'000'000);
      second = "m" + std::to_string((seed + 1 + seed / 4) % 4);
      if (second != victim && !f.rt.machine_dead(second)) {
        (void)f.rt.crash_machine(second);
        ++double_kills;
      }
    }
    const bool done = service.run_to_completion(60'000'000, 400'000'000);
    manager.stop();
    const std::string tag = "seed=" + std::to_string(seed) + " victim=" +
                            victim +
                            (second.empty() ? "" : " second=" + second);
    ASSERT_TRUE(done) << tag << ": client never finished";
    ASSERT_TRUE(service.client().ledger_violations().empty())
        << tag << ": " << service.client().ledger_violations().front();
    ASSERT_EQ(service.router().stats().stale_gets, 0u) << tag;
    ASSERT_EQ(manager.stats().data_loss_groups, 0u) << tag;
  }
  EXPECT_GT(double_kills, 30);
}

}  // namespace
}  // namespace surgeon
