#include <gtest/gtest.h>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "baseline/checkpoint.hpp"
#include "baseline/migration_models.hpp"
#include "baseline/procedure_update.hpp"
#include "baseline/quiescence.hpp"
#include "cfg/parser.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "reconfig/scripts.hpp"
#include "vm/compiler.hpp"
#include "xform/transform.hpp"

namespace surgeon::baseline {
namespace {

using app::Runtime;

std::unique_ptr<Runtime> make_counter(int requests) {
  auto rt = std::make_unique<Runtime>(11);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  rt->load_application(config, "counter",
                       [&](const cfg::ModuleSpec& spec) {
                         if (spec.name == "client") {
                           return app::samples::counter_client_source(
                               requests);
                         }
                         return app::samples::counter_server_source();
                       });
  return rt;
}

TEST(Quiescence, ReplacesIdleModuleButLosesState) {
  auto rt = make_counter(10);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 4; },
      10'000'000));
  auto report = quiescent_replace(*rt, "server", {});
  ASSERT_TRUE(report.quiesced);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
  const auto& output = rt->machine_of("client")->output();
  // The defining limitation of module-level atomicity: the accumulator
  // reset, so post-replacement totals restart from zero and CANNOT match
  // an uninterrupted run.
  auto reference_rt = make_counter(10);
  ASSERT_TRUE(reference_rt->run_until(
      [&] { return reference_rt->module_finished("client"); }, 10'000'000));
  EXPECT_NE(output, reference_rt->machine_of("client")->output());
}

TEST(Quiescence, TimesOutWhenModuleNeverQuiesces) {
  // A server that never returns to its top-level wait: quiescence-based
  // replacement cannot proceed (the paper's "main procedure changed ->
  // update cannot complete until the program terminates" pathology).
  auto rt = std::make_unique<Runtime>(11);
  rt->add_machine("vax", net::arch_vax());
  cfg::ConfigFile config = cfg::parse_config(R"(
module busy { source = "./busy.mc" :: }
application app { instance busy on "vax" :: }
)");
  rt->load_application(config, "app", [](const cfg::ModuleSpec&) {
    return std::string(R"(
void spin(int n) {
  while (1) { sleep(1); }
}
void main() { spin(0); }
)");
  });
  QuiescentReplaceOptions options;
  options.quiesce_timeout_us = 5'000'000;
  auto report = quiescent_replace(*rt, "busy", options);
  EXPECT_FALSE(report.quiesced);
  EXPECT_TRUE(rt->bus().has_module("busy"));  // nothing changed
}

TEST(Quiescence, ParticipatingReplacementSucceedsWhereQuiescenceFails) {
  // Head-to-head on the same shape of module: sits in an infinite recursive
  // service loop, so it never quiesces -- but it has a reconfiguration
  // point, so the participating script succeeds.
  auto rt = std::make_unique<Runtime>(11);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config = cfg::parse_config(R"(
module looper {
  source = "./looper.mc" ::
  reconfiguration point = {RP} ::
}
application app { instance looper on "vax" :: }
)");
  rt->load_application(config, "app", [](const cfg::ModuleSpec&) {
    return std::string(R"(
int ticks = 0;
void loop_forever() {
  while (1) {
RP:
    ticks = ticks + 1;
    sleep(1);
  }
}
void main() { loop_forever(); }
)");
  });
  rt->run_for(5'000'000);
  // Quiescence-based replacement times out (stack depth is always 2).
  QuiescentReplaceOptions qopts;
  qopts.quiesce_timeout_us = 3'000'000;
  auto qreport = quiescent_replace(*rt, "looper", qopts);
  EXPECT_FALSE(qreport.quiesced);
  // Participating replacement succeeds and carries the tick count.
  auto report = reconfig::move_module(*rt, "looper", "sparc");
  rt->run_for(3'000'000);
  rt->check_faults();
  auto ticks = std::get<std::int64_t>(
      rt->machine_of(report.new_instance)->global("ticks"));
  EXPECT_GE(ticks, 5);  // continued counting from the moved state
}

TEST(Checkpoint, PeriodicSnapshotsAccumulateCost) {
  auto prog = vm::compile_source(R"(
int g = 0;
void main() {
  int i;
  i = 0;
  while (i < 100000) { g = g + 1; i = i + 1; }
}
)");
  vm::Machine m(prog, net::arch_vax());
  CheckpointRunner runner(m, 10'000);
  auto state = runner.run(100'000);
  EXPECT_EQ(state, vm::RunState::kRunnable);
  EXPECT_EQ(runner.stats().checkpoints_taken, 10u);
  EXPECT_GT(runner.stats().last_checkpoint_bytes, 0u);
  EXPECT_EQ(runner.stats().total_checkpoint_bytes,
            runner.stats().last_checkpoint_bytes * 10);
}

TEST(Checkpoint, RollbackLosesWorkSinceLastCheckpoint) {
  auto prog = vm::compile_source(R"(
int g = 0;
void main() {
  int i;
  i = 0;
  while (i < 1000000) { g = g + 1; i = i + 1; }
}
)");
  vm::Machine m(prog, net::arch_vax());
  CheckpointRunner runner(m, 5'000);
  (void)runner.run(12'345);
  auto g_now = std::get<std::int64_t>(m.global("g"));
  EXPECT_GT(runner.stats().work_at_risk, 0u);
  runner.rollback();
  auto g_rolled = std::get<std::int64_t>(m.global("g"));
  EXPECT_LT(g_rolled, g_now);  // progress was lost -- the paper's objection
  EXPECT_EQ(runner.stats().work_at_risk, 0u);
}

TEST(Checkpoint, RollbackBeforeAnyCheckpointThrows) {
  auto prog = vm::compile_source("void main() { }");
  vm::Machine m(prog, net::arch_vax());
  CheckpointRunner runner(m, 1000);
  EXPECT_THROW(runner.rollback(), support::VmError);
}

// --- procedure-level updating (Frieder-Segal, ref [4]) ----------------------

/// v1: leaf() doubles; main loops calling mid() -> leaf() forever.
constexpr const char* kProcV1 = R"(
int out = 0;
int leaf(int x) { return x * 2; }
int mid(int x) { return leaf(x) + 1; }
void main() {
  int i;
  i = 0;
  while (1) {
    out = mid(i);
    i = i + 1;
    sleep(1);
  }
}
)";

/// v2: leaf() triples and mid() adds 2 -- leaf and mid changed, main not.
constexpr const char* kProcV2 = R"(
int out = 0;
int leaf(int x) { return x * 3; }
int mid(int x) { return leaf(x) + 2; }
void main() {
  int i;
  i = 0;
  while (1) {
    out = mid(i);
    i = i + 1;
    sleep(1);
  }
}
)";

TEST(ProcedureUpdate, LeafChangesLandBottomUp) {
  auto old_prog = vm::compile_source(kProcV1);
  auto new_prog =
      std::make_shared<const vm::CompiledProgram>(vm::compile_source(kProcV2));
  vm::Machine m(old_prog, net::arch_vax());
  ProcedureUpdater updater(m, old_prog, new_prog);
  EXPECT_EQ(updater.remaining(),
            (std::set<std::string>{"leaf", "mid"}));  // main unchanged

  // Drive the module; attempt swaps between slices. Both procedures are
  // inactive whenever the module sleeps, so the update lands quickly.
  std::size_t slices = 0;
  while (!updater.complete() && slices < 1000) {
    (void)m.step(200);
    (void)updater.step();
    ++slices;
  }
  EXPECT_TRUE(updater.complete());
  EXPECT_EQ(updater.swapped_count(), 2u);

  // The running module now computes with v2: out = 3i + 2, so consecutive
  // iterations differ by 3 (v1's 2i + 1 differs by 2).
  auto wait_for_change = [&] {
    auto before = std::get<std::int64_t>(m.global("out"));
    for (int s = 0; s < 100; ++s) {
      (void)m.step(100);
      auto now = std::get<std::int64_t>(m.global("out"));
      if (now != before) return now;
    }
    return before;
  };
  auto out1 = wait_for_change();
  auto out2 = wait_for_change();
  EXPECT_EQ(out2 - out1, 3) << "module is not running v2 code";
}

TEST(ProcedureUpdate, BottomUpOrderingIsEnforced) {
  auto old_prog = vm::compile_source(kProcV1);
  auto new_prog =
      std::make_shared<const vm::CompiledProgram>(vm::compile_source(kProcV2));
  vm::Machine m(old_prog, net::arch_vax());
  ProcedureUpdater updater(m, old_prog, new_prog);
  // Before anything is swapped, mid is blocked by the ordering (it calls
  // leaf, which is still pending); leaf is not.
  auto blocked = updater.blocked_by_ordering();
  EXPECT_TRUE(blocked.contains("mid"));
  EXPECT_FALSE(blocked.contains("leaf"));
}

TEST(ProcedureUpdate, MainChangesNeverLandWhileRunning) {
  // The paper: "when the main procedure has changed, the update cannot
  // complete until the program terminates."
  const char* v2_main_changed = R"(
int out = 0;
int leaf(int x) { return x * 2; }
int mid(int x) { return leaf(x) + 1; }
void main() {
  int i;
  i = 1000;
  while (1) {
    out = mid(i);
    i = i + 1;
    sleep(1);
  }
}
)";
  auto old_prog = vm::compile_source(kProcV1);
  auto new_prog = std::make_shared<const vm::CompiledProgram>(
      vm::compile_source(v2_main_changed));
  vm::Machine m(old_prog, net::arch_vax());
  ProcedureUpdater updater(m, old_prog, new_prog);
  EXPECT_EQ(updater.remaining(), (std::set<std::string>{"main"}));
  for (int round = 0; round < 200; ++round) {
    (void)m.step(100);
    (void)updater.step();
  }
  EXPECT_FALSE(updater.complete());
  EXPECT_TRUE(updater.blocked_by_activity().contains("main"));
}

TEST(ProcedureUpdate, RejectsShapeChanges) {
  const char* v2_new_local = R"(
int out = 0;
int leaf(int x) { int extra; extra = 1; return x * 2 + extra; }
int mid(int x) { return leaf(x) + 1; }
void main() {
  int i;
  i = 0;
  while (1) { out = mid(i); i = i + 1; sleep(1); }
}
)";
  auto old_prog = vm::compile_source(kProcV1);
  auto donor = vm::compile_source(v2_new_local);
  vm::Machine m(old_prog, net::arch_vax());
  (void)m.step(50);  // park somewhere with leaf inactive
  while (m.function_active(old_prog.function_index("leaf"))) {
    (void)m.step(10);
  }
  EXPECT_THROW(m.replace_function(donor, "leaf"), support::VmError);
}

TEST(ProcedureUpdate, RejectsAddedProcedures) {
  const char* v2_added = R"(
int out = 0;
int helper(int x) { return x; }
int leaf(int x) { return helper(x) * 2; }
int mid(int x) { return leaf(x) + 1; }
void main() {
  int i;
  i = 0;
  while (1) { out = mid(i); i = i + 1; sleep(1); }
}
)";
  auto old_prog = vm::compile_source(kProcV1);
  auto new_prog = std::make_shared<const vm::CompiledProgram>(
      vm::compile_source(v2_added));
  vm::Machine m(old_prog, net::arch_vax());
  EXPECT_THROW(ProcedureUpdater(m, old_prog, new_prog), support::VmError);
}

TEST(ProcedureUpdate, ActiveFunctionRefusesReplacement) {
  auto old_prog = vm::compile_source(kProcV1);
  auto donor = vm::compile_source(kProcV2);
  vm::Machine m(old_prog, net::arch_vax());
  // Step until main is the only frame but active (always true for main).
  (void)m.step(20);
  EXPECT_TRUE(m.function_active(old_prog.function_index("main")));
  EXPECT_THROW(m.replace_function(donor, "main"), support::VmError);
}

TEST(MigrationModels, TheimerHayesScalesWithStackAndProgram) {
  auto prog = vm::compile_source(R"(
void f() { }
void main() { f(); }
)");
  MigrationCostModel model;
  auto shallow = theimer_hayes_preparation_us(model, prog, 2);
  auto deep = theimer_hayes_preparation_us(model, prog, 50);
  EXPECT_GT(deep, shallow);
  EXPECT_GE(shallow, model.generate_base_us + model.compile_base_us);
}

TEST(MigrationModels, PreparationCostMeasuresCodeGrowth) {
  const std::string src = R"(
void work(int n, int *out) {
  if (n <= 0) { return; }
  work(n - 1, out);
RP:
  *out = *out + n;
}
void main() {
  int r;
  r = 0;
  work(5, &r);
  print(r);
}
)";
  minic::Program original = minic::parse_program(src);
  minic::analyze(original);
  auto original_prog = vm::compile(original);

  minic::Program transformed = minic::parse_program(src);
  minic::analyze(transformed);
  xform::prepare_module(transformed,
                        {cfg::ReconfigPointSpec{"RP", {}, {}}});
  auto transformed_prog = vm::compile(transformed);

  auto cost = preparation_cost(original_prog, transformed_prog);
  EXPECT_GT(cost.transformed_insns, cost.original_insns);
  EXPECT_GT(cost.growth_factor(), 1.0);
  EXPECT_LT(cost.growth_factor(), 5.0);  // growth is bounded and modest
}

}  // namespace
}  // namespace surgeon::baseline
