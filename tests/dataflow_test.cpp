#include <gtest/gtest.h>

#include "dataflow/liveness.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"

namespace surgeon::dataflow {
namespace {

minic::Program parsed(std::string_view src) {
  minic::Program p = minic::parse_program(src);
  minic::analyze(p);
  return p;
}

/// Finds the statement carrying `label` in `fn` (the labeled statement).
const minic::Stmt* find_labeled(const minic::Function& fn,
                                const std::string& label) {
  struct Search {
    const std::string* label;
    const minic::Stmt* found = nullptr;
    void walk(const minic::Stmt& s) {
      using minic::StmtKind;
      switch (s.kind) {
        case StmtKind::kLabeled: {
          const auto& l = static_cast<const minic::LabeledStmt&>(s);
          if (l.label == *label) found = &s;
          walk(*l.inner);
          return;
        }
        case StmtKind::kBlock:
          for (const auto& c :
               static_cast<const minic::BlockStmt&>(s).stmts) {
            walk(*c);
          }
          return;
        case StmtKind::kIf: {
          const auto& i = static_cast<const minic::IfStmt&>(s);
          walk(*i.then_branch);
          if (i.else_branch) walk(*i.else_branch);
          return;
        }
        case StmtKind::kWhile:
          walk(*static_cast<const minic::WhileStmt&>(s).body);
          return;
        case StmtKind::kFor:
          walk(*static_cast<const minic::ForStmt&>(s).body);
          return;
        default:
          return;
      }
    }
  };
  Search search{&label, nullptr};
  search.walk(*fn.body);
  return search.found;
}

TEST(Liveness, StraightLineDeadAfterLastUse) {
  minic::Program p = parsed(R"(
void main() {
  int a; int b; int c;
  a = 1;
A:
  b = a + 1;
B:
  c = b + 1;
C:
  print(c);
}
)");
  Liveness lv = Liveness::analyze(*p.functions[0]);
  const auto& fn = *p.functions[0];
  auto at_a = lv.live_before(find_labeled(fn, "A"));
  EXPECT_TRUE(at_a.contains("a"));
  EXPECT_FALSE(at_a.contains("b"));
  auto at_b = lv.live_before(find_labeled(fn, "B"));
  EXPECT_FALSE(at_b.contains("a")) << lv.dump();
  EXPECT_TRUE(at_b.contains("b"));
  auto at_c = lv.live_before(find_labeled(fn, "C"));
  EXPECT_EQ(at_c, (std::set<std::string>{"c"}));
}

TEST(Liveness, LoopKeepsCarriedVariableLive) {
  minic::Program p = parsed(R"(
void main() {
  int i; int sum; int scratch;
  i = 0; sum = 0;
  while (i < 10) {
    scratch = i * 2;
L:
    sum = sum + scratch;
    i = i + 1;
  }
  print(sum);
}
)");
  Liveness lv = Liveness::analyze(*p.functions[0]);
  auto at_l = lv.live_before(find_labeled(*p.functions[0], "L"));
  EXPECT_TRUE(at_l.contains("i"));        // loop-carried
  EXPECT_TRUE(at_l.contains("sum"));
  EXPECT_TRUE(at_l.contains("scratch"));  // used right after L
}

TEST(Liveness, BranchesMergeConservatively) {
  minic::Program p = parsed(R"(
void main() {
  int a; int b; int which;
  a = 1; b = 2; which = 0;
L:
  if (which > 0) { print(a); } else { print(b); }
}
)");
  Liveness lv = Liveness::analyze(*p.functions[0]);
  auto at_l = lv.live_before(find_labeled(*p.functions[0], "L"));
  EXPECT_TRUE(at_l.contains("a"));
  EXPECT_TRUE(at_l.contains("b"));
  EXPECT_TRUE(at_l.contains("which"));
}

TEST(Liveness, GotoEdgesFollowed) {
  minic::Program p = parsed(R"(
void main() {
  int x; int y;
  x = 1; y = 2;
L:
  print(y);
  goto DONE;
  print(x);
DONE:
  ;
}
)");
  Liveness lv = Liveness::analyze(*p.functions[0]);
  auto at_l = lv.live_before(find_labeled(*p.functions[0], "L"));
  EXPECT_TRUE(at_l.contains("y"));
  // x's only use is unreachable, but the backward analysis still sees it
  // below L in fallthrough order... the goto cuts the edge, so x is dead.
  EXPECT_FALSE(at_l.contains("x")) << lv.dump();
}

TEST(Liveness, AddressTakenPinsVariable) {
  // response's address is passed to a user function: the callee may read
  // or write it through the pointer at any time, so it must stay live.
  minic::Program p = parsed(R"(
void fill(float *out) { *out = 1.0; }
void main() {
  float response; int unused;
  unused = 3;
L:
  fill(&response);
  print(response);
}
)");
  Liveness lv = Liveness::analyze(*p.functions[1]);
  auto at_l = lv.live_before(find_labeled(*p.functions[1], "L"));
  EXPECT_TRUE(at_l.contains("response"));
  EXPECT_FALSE(at_l.contains("unused"));
  EXPECT_TRUE(lv.address_taken().contains("response"));
}

TEST(Liveness, MhReadTargetsAreDefsNotEscapes) {
  minic::Program p = parsed(R"(
void main() {
  int v;
L:
  mh_read("in", "i", &v);
  print(v);
  mh_read("in", "i", &v);
  print(v);
}
)");
  Liveness lv = Liveness::analyze(*p.functions[0]);
  // Before L, v has no value worth capturing: the read overwrites it.
  auto at_l = lv.live_before(find_labeled(*p.functions[0], "L"));
  EXPECT_FALSE(at_l.contains("v")) << lv.dump();
}

TEST(Liveness, DerefUsesThePointer) {
  minic::Program p = parsed(R"(
void f(float *rp) {
L:
  *rp = *rp + 1.0;
}
void main() { float x; x = 0.0; f(&x); }
)");
  Liveness lv = Liveness::analyze(*p.functions[0]);
  auto at_l = lv.live_before(find_labeled(*p.functions[0], "L"));
  EXPECT_TRUE(at_l.contains("rp"));
}

TEST(Liveness, MonitorComputeTemperIsDeadAtR) {
  // The Figure 4 transformation captures {num, n, *rp} at R and omits the
  // local `temper`; liveness derives the same conclusion automatically.
  minic::Program p = parsed(R"(
void compute(int num, int n, float *rp) {
  int temper;
  if (n <= 0) { *rp = 0.0; return; }
  compute(num, n - 1, rp);
R:
  mh_read("sensor", "i", &temper);
  *rp = *rp + (float)temper / (float)num;
}
void main() {
  float response;
  compute(3, 3, &response);
  print(response);
}
)");
  Liveness lv = Liveness::analyze(*p.functions[0]);
  auto at_r = lv.live_before(find_labeled(*p.functions[0], "R"));
  EXPECT_FALSE(at_r.contains("temper")) << lv.dump();
  EXPECT_TRUE(at_r.contains("num"));
  EXPECT_TRUE(at_r.contains("rp"));
}

TEST(Liveness, ForLoopCarriesInductionVariable) {
  minic::Program p = parsed(R"(
void main() {
  int sum; int dead;
  sum = 0; dead = 9;
  for (int i = 0; i < 10; i = i + 1) {
L:
    sum = sum + i;
  }
  print(sum);
}
)");
  Liveness lv = Liveness::analyze(*p.functions[0]);
  auto at_l = lv.live_before(find_labeled(*p.functions[0], "L"));
  EXPECT_TRUE(at_l.contains("i"));    // used in body + step + cond
  EXPECT_TRUE(at_l.contains("sum"));
  EXPECT_FALSE(at_l.contains("dead")) << lv.dump();
}

TEST(Liveness, BreakEdgeKeepsPostLoopUsesAlive) {
  minic::Program p = parsed(R"(
void main() {
  int found; int probe;
  found = 0; probe = 42;
  for (int i = 0; i < 100; i = i + 1) {
    found = i;
L:
    if (i == 7) { break; }
  }
  print(found, probe);
}
)");
  Liveness lv = Liveness::analyze(*p.functions[0]);
  auto at_l = lv.live_before(find_labeled(*p.functions[0], "L"));
  // `probe` is only used after the loop; it must stay live through the
  // break edge (and through the loop in general).
  EXPECT_TRUE(at_l.contains("probe")) << lv.dump();
  EXPECT_TRUE(at_l.contains("found"));
}

TEST(Liveness, ContinueEdgeFlowsThroughStep) {
  minic::Program p = parsed(R"(
void main() {
  int sum;
  sum = 0;
  for (int i = 0; i < 10; i = i + 2) {
L:
    if (i == 4) { continue; }
    sum = sum + i;
  }
  print(sum);
}
)");
  Liveness lv = Liveness::analyze(*p.functions[0]);
  auto at_l = lv.live_before(find_labeled(*p.functions[0], "L"));
  EXPECT_TRUE(at_l.contains("i"));  // continue reaches the step (uses i)
}

TEST(Liveness, UnknownStatementFallsBackToAllVars) {
  minic::Program p = parsed("void main() { int a; int b; a = 1; b = 2; }");
  Liveness lv = Liveness::analyze(*p.functions[0]);
  auto all = lv.live_before(nullptr);
  EXPECT_EQ(all, (std::set<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace surgeon::dataflow
