// Unit tests of the reconfiguration script engine (Figure 5): error paths,
// option handling, report contents, and script composition details that the
// end-to-end integration tests do not isolate.
#include <gtest/gtest.h>

#include <algorithm>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "reconfig/scripts.hpp"

namespace surgeon::reconfig {
namespace {

using app::Runtime;

std::unique_ptr<Runtime> make_counter(int requests = 20) {
  auto rt = std::make_unique<Runtime>(2);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  rt->load_application(config, "counter",
                       [&](const cfg::ModuleSpec& spec) {
                         if (spec.name == "client") {
                           return app::samples::counter_client_source(
                               requests);
                         }
                         return app::samples::counter_server_source();
                       });
  return rt;
}

TEST(Script, UnknownModuleThrows) {
  auto rt = make_counter();
  EXPECT_THROW(replace_module(*rt, "ghost", {}), ScriptError);
  EXPECT_THROW(replicate_module(*rt, "ghost", "sparc"), ScriptError);
}

TEST(Script, NonParticipatingModuleTimesOut) {
  // The client has no reconfiguration points: it never divulges, and the
  // script reports that clearly instead of hanging.
  auto rt = make_counter();
  ReplaceOptions options;
  options.max_rounds = 30'000;
  try {
    (void)replace_module(*rt, "client", options);
    FAIL() << "expected ScriptError";
  } catch (const ScriptError& e) {
    EXPECT_NE(std::string(e.what()).find("never divulged"),
              std::string::npos);
  }
}

TEST(Script, TimeoutDefaultsAreFinite) {
  // Regression: both script timeouts used to default to "wait forever",
  // so a non-participating module on a never-idle application wedged the
  // coordinator until the scheduling budget ran out. The defaults are now
  // finite virtual durations; 0 explicitly requests the old behavior.
  ReplaceOptions defaults;
  EXPECT_GT(defaults.divulge_timeout_us, 0u);
  EXPECT_GT(defaults.restore_timeout_us, 0u);
}

std::unique_ptr<Runtime> make_monitor() {
  // The monitor never goes idle (the sensor free-runs), so divulge waits
  // end only through the timeout -- the case the finite defaults exist for.
  auto rt = std::make_unique<Runtime>(3);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::monitor_config_text());
  rt->load_application(config, "monitor", app::samples::monitor_source_of);
  return rt;
}

TEST(Script, DivulgeTimeoutBoundsNeverIdleApplications) {
  auto rt = make_monitor();
  ReplaceOptions options;
  options.divulge_timeout_us = 50'000;  // display has no reconfig points
  try {
    (void)replace_module(*rt, "display", options);
    FAIL() << "expected ScriptError";
  } catch (const ScriptError& e) {
    EXPECT_NE(std::string(e.what()).find("never divulged"),
              std::string::npos);
    // The error names the Figure 5 step and the module instance.
    EXPECT_NE(std::string(e.what()).find("replace_module[objstate_move]"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("'display'"), std::string::npos);
  }
  EXPECT_GE(rt->now(), 50'000u);  // the wait ended at the virtual deadline
  // The rollback left the application serving on the old instance.
  EXPECT_TRUE(rt->bus().has_module("display"));
  EXPECT_FALSE(rt->bus().has_module("display@2"));
}

TEST(Script, ZeroDivulgeTimeoutWaitsUntilTheRoundBudget) {
  auto rt = make_monitor();
  ReplaceOptions options;
  options.divulge_timeout_us = 0;  // documented: wait forever
  options.max_rounds = 30'000;     // ...bounded only by the round budget
  EXPECT_THROW((void)replace_module(*rt, "display", options), ScriptError);
}

TEST(Script, UnknownTargetMachineLeavesSystemIntact) {
  auto rt = make_counter();
  rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 2; },
      10'000'000);
  EXPECT_THROW(move_module(*rt, "server", "atlantis"), support::BusError);
  // The failed script left no half-born clone and the app still works.
  EXPECT_TRUE(rt->bus().has_module("server"));
  EXPECT_EQ(rt->bus().module_names().size(), 2u);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
}

TEST(Script, ReportAccountsForEverything) {
  auto rt = make_counter();
  rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 2; },
      10'000'000);
  auto report = replace_module(*rt, "server", {});
  EXPECT_EQ(report.old_instance, "server");
  EXPECT_EQ(report.new_instance, "server@2");
  EXPECT_LE(report.requested_at, report.divulged_at);
  EXPECT_LE(report.divulged_at, report.rebound_at);
  EXPECT_LE(report.rebound_at, report.completed_at);
  EXPECT_GT(report.state_bytes, 0u);
  EXPECT_GT(report.state_frames, 0u);
  EXPECT_EQ(report.total_delay(),
            report.completed_at - report.requested_at);
}

TEST(Script, CloneKeepsInterfaceSpecs) {
  auto rt = make_counter();
  rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 1; },
      10'000'000);
  auto report = replace_module(*rt, "server", {});
  const auto& info = rt->bus().module_info(report.new_instance);
  ASSERT_EQ(info.interfaces.size(), 1u);
  EXPECT_EQ(info.interfaces[0].name, "req");
  EXPECT_EQ(info.interfaces[0].role, bus::IfaceRole::kServer);
  EXPECT_EQ(info.status, "clone");
}

TEST(Script, ZeroDrainStillWorksWhenQuiescent) {
  // With drain disabled (the paper's original script), a replacement in a
  // quiet moment is still lossless.
  auto rt = make_counter();
  rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 2; },
      10'000'000);
  ReplaceOptions options;
  options.drain_us = 0;
  auto report = replace_module(*rt, "server", options);
  (void)report;
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
}

TEST(Script, NoWaitForRestoreReturnsEarlier) {
  auto rt = make_counter();
  rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 2; },
      10'000'000);
  ReplaceOptions options;
  options.wait_for_restore = false;
  options.drain_us = 0;
  auto report = replace_module(*rt, "server", options);
  // The script returned right after the rebind; the clone may still be
  // restoring, but the application completes regardless.
  EXPECT_EQ(report.completed_at, report.rebound_at);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
}

TEST(Script, IncompatibleReplacementProgramFailsLoudly) {
  // v2 declares a different captured layout (an extra local in bump and a
  // changed format): the old state cannot install, the clone faults, and
  // the script surfaces it as a ScriptError instead of limping on.
  auto rt = make_counter();
  rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 2; },
      10'000'000);
  const char* incompatible = R"(
int total = 0;
int extra_global = 0;

void bump(int k, int *out)
{
  int extra;
  if (k <= 0) { return; }
  bump(k - 1, out);
RP:
  extra = k;
  total = total + extra;
  *out = total;
}

void main()
{
  int k;
  int result;
  while (1) {
    mh_read("req", "i", &k);
    bump(k, &result);
    mh_write("req", "i", result);
  }
}
)";
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  minic::Program v2 = minic::parse_program(incompatible);
  minic::analyze(v2);
  xform::prepare_module(v2, config.find_module("server")->reconfig_points);
  auto v2_prog = std::make_shared<const vm::CompiledProgram>(vm::compile(v2));
  EXPECT_THROW((void)update_module(*rt, "server", v2_prog), ScriptError);
}

TEST(Script, ModuleWithoutImageRejected) {
  auto rt = make_counter();
  // A module registered directly with the bus (no Runtime image) cannot be
  // cloned by the script.
  bus::ModuleInfo info;
  info.name = "alien";
  info.machine = "vax";
  rt->bus().add_module(info);
  EXPECT_THROW(replace_module(*rt, "alien", {}), ScriptError);
}

TEST(Script, StepSpansCoverFigureFiveInOrder) {
  // With metrics enabled, one replacement run produces a span per Figure 5
  // step, in script order, with non-decreasing virtual timestamps, plus
  // the drain-window span nested inside "del".
  auto rt = make_counter();
  rt->enable_metrics();
  rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 2; },
      10'000'000);
  (void)replace_module(*rt, "server", {});

  std::vector<obs::SpanRecord> steps;
  for (const auto& span : rt->metrics().spans()) {
    if (span.scope == "server" && span.name != kStepDrain) {
      steps.push_back(span);
    }
  }
  ASSERT_EQ(steps.size(), kFigure5Steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i].name, kFigure5Steps[i]) << "step " << i;
    EXPECT_LE(steps[i].begin_us, steps[i].end_us);
    if (i != 0) {
      EXPECT_LE(steps[i - 1].begin_us, steps[i].begin_us);
      EXPECT_GE(steps[i].seq, steps[i - 1].seq);
    }
  }
  // All steps up to "del" complete before the next one opens ("del"
  // contains the drain window, so only its begin is ordered).
  for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
    EXPECT_LE(steps[i].end_us, steps[i + 1].begin_us);
  }
  // The drain window is there, nested inside "del".
  const auto& spans = rt->metrics().spans();
  auto drain = std::find_if(spans.begin(), spans.end(), [](const auto& s) {
    return s.name == kStepDrain;
  });
  ASSERT_NE(drain, spans.end());
  EXPECT_GE(drain->begin_us, steps.back().begin_us);
  // Each step landed in the per-step duration histogram.
  for (const char* step : kFigure5Steps) {
    EXPECT_EQ(rt->metrics()
                  .histogram("surgeon_reconfig_step_us", {{"step", step}})
                  .count(),
              1u)
        << step;
  }
}

TEST(Script, SpansCorrelateWithTraceEvents) {
  // Span timestamps and TraceEvent timestamps share the virtual clock: the
  // rebind trace event falls inside the rebind span.
  auto rt = make_counter();
  rt->enable_metrics();
  rt->enable_tracing();
  rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 2; },
      10'000'000);
  (void)replace_module(*rt, "server", {});
  const auto& spans = rt->metrics().spans();
  auto rebind = std::find_if(spans.begin(), spans.end(), [](const auto& s) {
    return s.name == kStepRebind && s.scope == "server";
  });
  ASSERT_NE(rebind, spans.end());
  bool found = false;
  for (const auto& ev : rt->trace()) {
    if (ev.kind == bus::TraceEvent::Kind::kRebind &&
        ev.at >= rebind->begin_us && ev.at <= rebind->end_us) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Script, ReplicationReportsBothClones) {
  auto rt = make_counter();
  rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 2; },
      10'000'000);
  auto report = replicate_module(*rt, "server", "sparc",
                                 /*bind_replica=*/false);
  EXPECT_NE(report.primary.new_instance, report.replica_instance);
  // With bind_replica=false the replica exists, holds the state, but has
  // no bindings: the client only talks to the primary.
  EXPECT_TRUE(
      rt->bus().bound_peers({report.replica_instance, "req"}).empty());
  EXPECT_FALSE(
      rt->bus().bound_peers({report.primary.new_instance, "req"}).empty());
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
}

}  // namespace
}  // namespace surgeon::reconfig
