// Behavioural tests of the transformation: run a transformed module, signal
// it mid-execution, collect the divulged abstract state, install it in a
// fresh machine (of a different architecture), and verify that execution
// resumes at the reconfiguration point with identical results.
//
// These tests run the machines standalone (no bus) so they isolate the
// capture/restore mechanism itself; the integration tests add the bus.
#include <gtest/gtest.h>

#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "minic/sema.hpp"
#include "vm/compiler.hpp"
#include "vm/machine.hpp"
#include "xform/transform.hpp"

namespace surgeon::xform {
namespace {

using cfg::ReconfigPointSpec;
using vm::Machine;
using vm::RunState;

std::shared_ptr<vm::CompiledProgram> transform_and_compile(
    const std::string& src, const std::vector<ReconfigPointSpec>& points,
    const XformOptions& options = {}) {
  minic::Program prog = minic::parse_program(src);
  minic::analyze(prog);
  prepare_module(prog, points, options);
  return std::make_shared<vm::CompiledProgram>(vm::compile(prog));
}

void run_to_end(Machine& m, std::uint64_t budget = 100'000'000) {
  while (m.state() != RunState::kDone && m.state() != RunState::kFault &&
         budget > 0) {
    auto r = m.step(budget);
    budget -= std::min<std::uint64_t>(budget, r.instructions);
    if (r.state == RunState::kBlockedRead ||
        r.state == RunState::kBlockedDecode) {
      break;  // nothing will unblock a standalone machine
    }
  }
}

/// A self-contained compute-style program: `rounds` rounds, each summing
/// squares via recursion with a reconfiguration point in the recursion.
std::string worker_source(int rounds, int depth) {
  return R"(
int acc = 0;

void work(int n, int *out) {
  if (n <= 0) { *out = acc; return; }
  work(n - 1, out);
RP:
  acc = acc + n * n;
  *out = acc;
}

void main() {
  int r;
  int round;
  round = 0;
  while (round < )" +
         std::to_string(rounds) + R"() {
    work()" +
         std::to_string(depth) + R"(, &r);
    print(round, r);
    round = round + 1;
  }
  print("final", acc);
}
)";
}

const std::vector<ReconfigPointSpec> kWorkerPoints = {
    ReconfigPointSpec{"RP", {}, {}}};

/// Expected output of the untransformed worker (the transformation must
/// never change observable behaviour).
std::vector<std::string> reference_output(int rounds, int depth) {
  minic::Program prog = minic::parse_program(worker_source(rounds, depth));
  minic::analyze(prog);
  auto compiled = vm::compile(prog);
  Machine m(compiled, net::arch_vax());
  run_to_end(m);
  EXPECT_EQ(m.state(), RunState::kDone) << m.fault_message();
  return m.output();
}

TEST(XformExec, TransformedProgramBehavesIdenticallyWithoutSignal) {
  auto prog = transform_and_compile(worker_source(5, 4), kWorkerPoints);
  Machine m(*prog, net::arch_vax());
  run_to_end(m);
  ASSERT_EQ(m.state(), RunState::kDone) << m.fault_message();
  EXPECT_EQ(m.output(), reference_output(5, 4));
}

TEST(XformExec, CaptureProducesOneFramePerActivationRecord) {
  auto prog = transform_and_compile(worker_source(50, 6), kWorkerPoints);
  Machine m(*prog, net::arch_vax());
  (void)m.step(200);
  m.raise_signal();
  run_to_end(m);
  ASSERT_EQ(m.state(), RunState::kDone) << m.fault_message();
  ASSERT_TRUE(m.last_encoded_state().has_value());
  const auto& state = *m.last_encoded_state();
  // Frames: one per AR on the stack at the reconfiguration point (main +
  // work frames) plus the data-area frame for the global `acc`.
  EXPECT_GE(state.frame_count(), 3u);
  // The LAST frame pushed is the data-area frame (exactly one value: acc).
  EXPECT_EQ(state.frames().back().values.size(), 1u);
}

/// The signature migration scenario: interrupt mid-recursion, install the
/// state in a machine of the opposite byte order, and compare the combined
/// output against an uninterrupted run.
void check_migration(int rounds, int depth, std::uint64_t signal_after,
                     const XformOptions& options = {}) {
  auto prog = transform_and_compile(worker_source(rounds, depth),
                                    kWorkerPoints, options);
  Machine old_machine(*prog, net::arch_vax());
  (void)old_machine.step(signal_after);
  old_machine.raise_signal();
  run_to_end(old_machine);
  ASSERT_EQ(old_machine.state(), RunState::kDone)
      << old_machine.fault_message();
  if (!old_machine.last_encoded_state().has_value()) {
    // The program completed before the signal landed; there is nothing to
    // migrate and the output must already match.
    EXPECT_EQ(old_machine.output(), reference_output(rounds, depth));
    return;
  }

  Machine clone(*prog, net::arch_sparc());
  clone.set_standalone_status("clone");
  clone.inject_incoming_state(*old_machine.last_encoded_state());
  run_to_end(clone);
  ASSERT_EQ(clone.state(), RunState::kDone) << clone.fault_message();

  std::vector<std::string> combined = old_machine.output();
  combined.insert(combined.end(), clone.output().begin(),
                  clone.output().end());
  EXPECT_EQ(combined, reference_output(rounds, depth))
      << "divergence when signalled after " << signal_after
      << " instructions";
}

TEST(XformExec, MigrationMidRecursionPreservesBehaviour) {
  check_migration(6, 5, 300);
}

TEST(XformExec, MigrationNearStartPreservesBehaviour) {
  check_migration(6, 5, 10);
}

TEST(XformExec, MigrationWithLivenessModePreservesBehaviour) {
  XformOptions options;
  options.use_liveness = true;
  check_migration(6, 5, 300, options);
}

class SignalTimingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SignalTimingSweep, AnyInterruptPointIsSafe) {
  // Property: no matter when the signal lands, the migrated execution is
  // indistinguishable from an uninterrupted one.
  check_migration(4, 3, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Timing, SignalTimingSweep,
                         ::testing::Values(1, 5, 17, 40, 77, 123, 200, 350,
                                           500, 800));

class RecursionDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(RecursionDepthSweep, DeepStacksRoundTrip) {
  check_migration(2, GetParam(), 150);
}

INSTANTIATE_TEST_SUITE_P(Depths, RecursionDepthSweep,
                         ::testing::Values(1, 2, 8, 32, 128));

TEST(XformExec, SecondMigrationOfACloneWorks) {
  // The clone reinstalls the signal handler at its reconfiguration point,
  // so it can itself be reconfigured. Chain two migrations.
  auto prog = transform_and_compile(worker_source(8, 4), kWorkerPoints);
  Machine first(*prog, net::arch_vax());
  (void)first.step(200);
  first.raise_signal();
  run_to_end(first);
  ASSERT_EQ(first.state(), RunState::kDone) << first.fault_message();

  Machine second(*prog, net::arch_sparc());
  second.set_standalone_status("clone");
  second.inject_incoming_state(*first.last_encoded_state());
  (void)second.step(400);
  second.raise_signal();
  run_to_end(second);
  ASSERT_EQ(second.state(), RunState::kDone) << second.fault_message();
  ASSERT_TRUE(second.last_encoded_state().has_value());

  Machine third(*prog, net::arch_vax());
  third.set_standalone_status("clone");
  third.inject_incoming_state(*second.last_encoded_state());
  run_to_end(third);
  ASSERT_EQ(third.state(), RunState::kDone) << third.fault_message();

  std::vector<std::string> combined = first.output();
  combined.insert(combined.end(), second.output().begin(),
                  second.output().end());
  combined.insert(combined.end(), third.output().begin(),
                  third.output().end());
  EXPECT_EQ(combined, reference_output(8, 4));
}

TEST(XformExec, HeapStateSurvivesMigration) {
  const std::string src = R"(
int* cells;

void fill(int n) {
  if (n <= 0) { return; }
  fill(n - 1);
RP:
  cells[n - 1] = n * 10;
}

void main() {
  int i;
  cells = mh_alloc_int(6);
  fill(6);
  i = 0;
  while (i < 6) {
    print(cells[i]);
    i = i + 1;
  }
}
)";
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"RP", {}, {}}};
  auto prog = transform_and_compile(src, points);

  Machine old_machine(*prog, net::arch_vax());
  (void)old_machine.step(60);
  old_machine.raise_signal();
  run_to_end(old_machine);
  ASSERT_EQ(old_machine.state(), RunState::kDone)
      << old_machine.fault_message();
  ASSERT_TRUE(old_machine.last_encoded_state().has_value());
  // The heap object rides in the abstract state (pointer global `cells`).
  EXPECT_EQ(old_machine.last_encoded_state()->heap().size(), 1u);

  Machine clone(*prog, net::arch_sparc());
  clone.set_standalone_status("clone");
  clone.inject_incoming_state(*old_machine.last_encoded_state());
  run_to_end(clone);
  ASSERT_EQ(clone.state(), RunState::kDone) << clone.fault_message();
  EXPECT_EQ(clone.output(),
            (std::vector<std::string>{"10", "20", "30", "40", "50", "60"}));
}

TEST(XformExec, ForLoopsWithBreakContinueMigrate) {
  // A module written in idiomatic C89 style (for loops, break/continue)
  // with the reconfiguration point inside a for body: the transformation
  // and the goto-into-loop restore path compose with the new control flow.
  const std::string src = R"(
int acc = 0;

void scan(int limit, int *out) {
  for (int i = 1; i <= limit; i = i + 1) {
    if (i % 4 == 0) { continue; }
RP:
    acc = acc + i;
    if (acc > 90) { break; }
  }
  *out = acc;
}

void main() {
  int r;
  for (int round = 0; round < 8; round = round + 1) {
    scan(7, &r);
    print(round, r);
  }
  print("final", acc);
}
)";
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"RP", {}, {}}};
  auto prog = transform_and_compile(src, points);

  // Reference: untransformed behaviour.
  minic::Program plain = minic::parse_program(src);
  minic::analyze(plain);
  auto plain_prog = vm::compile(plain);
  Machine ref(plain_prog, net::arch_vax());
  run_to_end(ref);
  ASSERT_EQ(ref.state(), RunState::kDone) << ref.fault_message();

  for (std::uint64_t when : {10u, 60u, 120u, 200u, 300u}) {
    Machine m(*prog, net::arch_vax());
    (void)m.step(when);
    m.raise_signal();
    run_to_end(m);
    ASSERT_EQ(m.state(), RunState::kDone) << m.fault_message();
    std::vector<std::string> combined = m.output();
    if (m.last_encoded_state().has_value()) {
      Machine clone(*prog, net::arch_mips());
      clone.set_standalone_status("clone");
      clone.inject_incoming_state(*m.last_encoded_state());
      run_to_end(clone);
      ASSERT_EQ(clone.state(), RunState::kDone) << clone.fault_message();
      combined.insert(combined.end(), clone.output().begin(),
                      clone.output().end());
    }
    EXPECT_EQ(combined, ref.output()) << "signal at " << when;
  }
}

TEST(XformExec, HeapStringsSurviveMigration) {
  const std::string src = R"(
string* log;
int next = 0;

void record(int n) {
  if (n <= 0) { return; }
  record(n - 1);
RP:
  log[next] = "entry-" + mh_getstatus();
  next = next + 1;
}

void main() {
  int i;
  log = mh_alloc_str(8);
  record(4);
  record(4);
  i = 0;
  while (i < next) {
    print(log[i]);
    i = i + 1;
  }
}
)";
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"RP", {}, {}}};
  auto prog = transform_and_compile(src, points);
  Machine old_machine(*prog, net::arch_vax());
  (void)old_machine.step(120);
  old_machine.raise_signal();
  run_to_end(old_machine);
  ASSERT_EQ(old_machine.state(), RunState::kDone)
      << old_machine.fault_message();
  ASSERT_TRUE(old_machine.last_encoded_state().has_value());

  Machine clone(*prog, net::arch_sparc());
  clone.set_standalone_status("clone");
  clone.inject_incoming_state(*old_machine.last_encoded_state());
  run_to_end(clone);
  ASSERT_EQ(clone.state(), RunState::kDone) << clone.fault_message();
  // Entries recorded before the move say "entry-new", after say
  // "entry-clone"; all eight survive, in order, in the migrated heap.
  ASSERT_EQ(clone.output().size(), 8u);
  bool saw_new = false, saw_clone = false;
  for (const auto& line : clone.output()) {
    if (line == "entry-new") saw_new = true;
    if (line == "entry-clone") saw_clone = true;
  }
  EXPECT_TRUE(saw_new);
  EXPECT_TRUE(saw_clone);
}

TEST(XformExec, SignalDuringRestoreIsHonoredAfterwards) {
  // A second reconfiguration request lands while the clone is still
  // rebuilding its stack: the handler is not yet installed, the bus holds
  // the signal, and the clone divulges at its next reconfiguration point
  // after the restore completes. (Standalone: raise before stepping.)
  auto prog = transform_and_compile(worker_source(6, 4), kWorkerPoints);
  Machine first(*prog, net::arch_vax());
  (void)first.step(200);
  first.raise_signal();
  run_to_end(first);
  ASSERT_EQ(first.state(), RunState::kDone) << first.fault_message();
  ASSERT_TRUE(first.last_encoded_state().has_value());

  Machine clone(*prog, net::arch_sparc());
  clone.set_standalone_status("clone");
  clone.inject_incoming_state(*first.last_encoded_state());
  clone.raise_signal();  // arrives "during" restore
  run_to_end(clone);
  ASSERT_EQ(clone.state(), RunState::kDone) << clone.fault_message();
  ASSERT_TRUE(clone.last_encoded_state().has_value())
      << "the early signal was lost";

  Machine third(*prog, net::arch_vax());
  third.set_standalone_status("clone");
  third.inject_incoming_state(*clone.last_encoded_state());
  run_to_end(third);
  ASSERT_EQ(third.state(), RunState::kDone) << third.fault_message();

  std::vector<std::string> combined = first.output();
  combined.insert(combined.end(), clone.output().begin(),
                  clone.output().end());
  combined.insert(combined.end(), third.output().begin(),
                  third.output().end());
  EXPECT_EQ(combined, reference_output(6, 4));
}

TEST(XformExec, DummyArgumentsPreventRestoreTimeFaults) {
  // At capture time b has become 0: repeating the original call `work(a /
  // b, ...)` during restoration would divide by zero. The transformer's
  // dummy argument makes restoration safe, and the callee's own restored
  // parameters make the dummy invisible.
  const std::string src = R"(
void work(int q, int n, int *out) {
  if (n <= 0) { return; }
  work(q, n - 1, out);
RP:
  *out = *out + q + n;
}

void main() {
  int a; int b; int r;
  a = 6; b = 2; r = 0;
  work(a / b, 4, &r);
  b = 0;
  work(3, 2, &r);
  print(r);
}
)";
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"RP", {}, {}}};
  auto prog = transform_and_compile(src, points);

  // Reference: untransformed behaviour.
  minic::Program plain = minic::parse_program(src);
  minic::analyze(plain);
  auto plain_prog = vm::compile(plain);
  Machine ref(plain_prog, net::arch_vax());
  run_to_end(ref);
  ASSERT_EQ(ref.state(), RunState::kDone);

  // Find a signal timing that interrupts the FIRST work() call (while b is
  // still 2) but captures after b:=0 has... actually the dangerous window
  // is capture during the SECOND call, when b==0 and main's restore would
  // re-evaluate a / b. Sweep timings; all must succeed.
  for (std::uint64_t when : {40u, 60u, 80u, 100u, 120u, 140u}) {
    Machine m(*prog, net::arch_vax());
    (void)m.step(when);
    m.raise_signal();
    run_to_end(m);
    ASSERT_EQ(m.state(), RunState::kDone) << m.fault_message();
    if (!m.last_encoded_state().has_value()) continue;  // finished first
    Machine clone(*prog, net::arch_sparc());
    clone.set_standalone_status("clone");
    clone.inject_incoming_state(*m.last_encoded_state());
    run_to_end(clone);
    ASSERT_EQ(clone.state(), RunState::kDone)
        << "restore faulted (signal at " << when
        << "): " << clone.fault_message();
    std::vector<std::string> combined = m.output();
    combined.insert(combined.end(), clone.output().begin(),
                    clone.output().end());
    EXPECT_EQ(combined, ref.output());
  }
}

TEST(XformExec, MultipleReconfigPointsBothWork) {
  const std::string src = R"(
int phase = 0;

void stage1(int n, int *out) {
  if (n <= 0) { return; }
  stage1(n - 1, out);
R1:
  *out = *out + n;
}

void stage2(int n, int *out) {
  if (n <= 0) { return; }
  stage2(n - 1, out);
R2:
  *out = *out + n * 100;
}

void main() {
  int r;
  r = 0;
  phase = 1;
  stage1(4, &r);
  phase = 2;
  stage2(4, &r);
  print(r, phase);
}
)";
  std::vector<ReconfigPointSpec> points = {ReconfigPointSpec{"R1", {}, {}},
                                           ReconfigPointSpec{"R2", {}, {}}};
  auto prog = transform_and_compile(src, points);

  minic::Program plain = minic::parse_program(src);
  minic::analyze(plain);
  auto plain_prog = vm::compile(plain);
  Machine ref(plain_prog, net::arch_vax());
  run_to_end(ref);

  // Signal early (captures at R1) and late (captures at R2).
  for (std::uint64_t when : {20u, 150u}) {
    Machine m(*prog, net::arch_vax());
    (void)m.step(when);
    m.raise_signal();
    run_to_end(m);
    ASSERT_EQ(m.state(), RunState::kDone) << m.fault_message();
    ASSERT_TRUE(m.last_encoded_state().has_value());
    Machine clone(*prog, net::arch_sparc());
    clone.set_standalone_status("clone");
    clone.inject_incoming_state(*m.last_encoded_state());
    run_to_end(clone);
    ASSERT_EQ(clone.state(), RunState::kDone) << clone.fault_message();
    std::vector<std::string> combined = m.output();
    combined.insert(combined.end(), clone.output().begin(),
                    clone.output().end());
    EXPECT_EQ(combined, ref.output()) << "signal at " << when;
  }
}

TEST(XformExec, StateBytesAreIdenticalRegardlessOfSourceArch) {
  // The abstract state is machine-independent: capturing the same logical
  // state on unlike architectures yields byte-identical buffers.
  auto prog = transform_and_compile(worker_source(4, 3), kWorkerPoints);
  auto capture_on = [&](net::Arch arch) {
    Machine m(*prog, arch);
    (void)m.step(100);
    m.raise_signal();
    run_to_end(m);
    EXPECT_EQ(m.state(), RunState::kDone) << m.fault_message();
    return m.last_encoded_state()->encode();
  };
  EXPECT_EQ(capture_on(net::arch_vax()), capture_on(net::arch_sparc()));
}

}  // namespace
}  // namespace surgeon::xform
