#include <gtest/gtest.h>

#include "serialize/state.hpp"
#include "serialize/value.hpp"
#include "support/rng.hpp"

namespace surgeon::ser {
namespace {

using support::ByteOrder;
using support::ByteReader;
using support::ByteWriter;
using support::ValueKind;
using support::VmError;

TEST(Value, KindsAndAccessors) {
  EXPECT_EQ(Value(std::int64_t{3}).kind(), ValueKind::kInt);
  EXPECT_EQ(Value(2.5).kind(), ValueKind::kReal);
  EXPECT_EQ(Value(std::string("x")).kind(), ValueKind::kString);
  EXPECT_EQ(Value(AbstractPointer{1, 2}).kind(), ValueKind::kPointer);
  EXPECT_EQ(Value(std::int64_t{3}).as_int(), 3);
  EXPECT_THROW((void)Value(std::int64_t{3}).as_string(), VmError);
  EXPECT_DOUBLE_EQ(Value(std::int64_t{3}).to_real(), 3.0);
}

TEST(Value, DefaultPerKind) {
  EXPECT_EQ(default_value(ValueKind::kInt).as_int(), 0);
  EXPECT_DOUBLE_EQ(default_value(ValueKind::kReal).as_real(), 0.0);
  EXPECT_EQ(default_value(ValueKind::kString).as_string(), "");
  EXPECT_TRUE(default_value(ValueKind::kPointer).as_pointer().is_null());
}

TEST(Value, EncodeDecodeRoundTrip) {
  std::vector<Value> values = {
      Value(std::int64_t{-7}), Value(6.25), Value(std::string("héllo")),
      Value(AbstractPointer{42, 3}), Value(std::int64_t{1} << 60)};
  ByteWriter w(ByteOrder::kBig);
  encode_values(w, values);
  ByteReader r(w.bytes(), ByteOrder::kBig);
  EXPECT_EQ(decode_values(r), values);
  EXPECT_TRUE(r.at_end());
}

TEST(Value, DecodeRejectsBadTag) {
  ByteWriter w(ByteOrder::kBig);
  w.put_u8(200);  // not a valid kind
  ByteReader r(w.bytes(), ByteOrder::kBig);
  EXPECT_THROW((void)decode_value(r), VmError);
}

TEST(StateBuffer, LifoFrameOrder) {
  // Capture pushes top-of-stack first; restore pops bottom-most first.
  StateBuffer sb;
  sb.push_frame(StateFrame{{Value(std::int64_t{1})}});   // innermost AR
  sb.push_frame(StateFrame{{Value(std::int64_t{2})}});
  sb.push_frame(StateFrame{{Value(std::int64_t{3})}});   // main's AR
  EXPECT_EQ(sb.frame_count(), 3u);
  EXPECT_EQ(sb.pop_frame().values[0].as_int(), 3);  // main restores first
  EXPECT_EQ(sb.pop_frame().values[0].as_int(), 2);
  EXPECT_EQ(sb.pop_frame().values[0].as_int(), 1);
  EXPECT_TRUE(sb.empty());
}

TEST(StateBuffer, PopEmptyThrows) {
  StateBuffer sb;
  EXPECT_THROW((void)sb.pop_frame(), VmError);
}

TEST(StateBuffer, EncodeDecodeWithHeap) {
  StateBuffer sb;
  sb.push_frame(StateFrame{{Value(std::int64_t{4}), Value(1.5)}});
  sb.push_frame(StateFrame{{Value(std::string("top"))}});
  sb.put_heap_object(9, {Value(std::int64_t{1}), Value(AbstractPointer{9, 0})});
  auto bytes = sb.encode();
  StateBuffer back = StateBuffer::decode(bytes);
  EXPECT_EQ(back, sb);
  EXPECT_EQ(back.heap().at(9).size(), 2u);
}

TEST(StateBuffer, DecodeRejectsGarbage) {
  std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5};
  EXPECT_THROW((void)StateBuffer::decode(garbage), VmError);
}

TEST(StateBuffer, DecodeRejectsTrailingBytes) {
  StateBuffer sb;
  sb.push_frame(StateFrame{{Value(std::int64_t{1})}});
  auto bytes = sb.encode();
  bytes.push_back(0);
  EXPECT_THROW((void)StateBuffer::decode(bytes), VmError);
}

TEST(StateBuffer, ValueCount) {
  StateBuffer sb;
  sb.push_frame(StateFrame{{Value(std::int64_t{1}), Value(std::int64_t{2})}});
  sb.push_frame(StateFrame{{Value(std::int64_t{3})}});
  EXPECT_EQ(sb.value_count(), 3u);
}

TEST(StateBuffer, FuzzedBytesNeverCrashTheDecoder) {
  // Single-byte corruptions of a valid buffer, truncations, and random
  // garbage: decode must either succeed or throw VmError -- never crash,
  // hang, or allocate absurdly.
  StateBuffer sb;
  sb.push_frame(StateFrame{{Value(std::int64_t{1}), Value(2.5),
                            Value(std::string("abc")),
                            Value(AbstractPointer{3, 1})}});
  sb.put_heap_object(3, {Value(std::int64_t{9})});
  auto valid = sb.encode();

  auto try_decode = [](const std::vector<std::uint8_t>& bytes) {
    try {
      auto decoded = StateBuffer::decode(bytes);
      (void)decoded;
    } catch (const support::VmError&) {
      // expected for corrupt input
    }
  };

  for (std::size_t i = 0; i < valid.size(); ++i) {
    auto mutated = valid;
    mutated[i] ^= 0xff;
    try_decode(mutated);
    try_decode({valid.begin(),
                valid.begin() + static_cast<std::ptrdiff_t>(i)});
  }
  support::SplitMix64 rng(7);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> garbage(rng.next_below(64));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    try_decode(garbage);
  }
}

TEST(StateBuffer, WireFormatIsByteOrderIndependent) {
  // The encoded bytes are identical no matter which host produced them:
  // network order is baked into encode(). A little-endian and a big-endian
  // host exchanging this buffer agree on its contents by construction.
  StateBuffer sb;
  sb.push_frame(StateFrame{{Value(std::int64_t{0x0102030405060708}),
                            Value(2.0), Value(std::string("abc"))}});
  auto bytes1 = sb.encode();
  auto bytes2 = StateBuffer::decode(bytes1).encode();
  EXPECT_EQ(bytes1, bytes2);
}

}  // namespace
}  // namespace surgeon::ser
