// Unit and integration tests of surgeon::trace: the flight recorder's
// clocks and ring, causal-context propagation through the bus (including
// the reliable layer's retransmissions and deduplication), the DAG
// assembler/exporters, the mh_trace client query, and the online
// happens-before checker -- both that a clean replacement passes it and
// that a deliberately corrupted journal is flagged.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "bus/bus.hpp"
#include "bus/client.hpp"
#include "cfg/parser.hpp"
#include "obs/metrics.hpp"
#include "reconfig/scripts.hpp"
#include "trace/assemble.hpp"
#include "trace/checker.hpp"
#include "trace/recorder.hpp"

namespace surgeon::trace {
namespace {

// ---------------------------------------------------------------- recorder

TEST(Recorder, DisabledRecordsNothing) {
  Recorder rec;
  TraceContext ctx = rec.record(EventKind::kSend, "vax", "a", "x");
  EXPECT_FALSE(ctx.valid());
  EXPECT_EQ(rec.total_events(), 0u);
  EXPECT_TRUE(rec.machines().empty());
}

TEST(Recorder, ProgramOrderParentsChainPerModule) {
  Recorder rec;
  rec.set_enabled(true);
  TraceContext a1 = rec.record(EventKind::kSend, "vax", "a", "1");
  TraceContext b1 = rec.record(EventKind::kSend, "vax", "b", "1");
  TraceContext a2 = rec.record(EventKind::kSend, "vax", "a", "2");
  const auto& journal = rec.journal("vax");
  ASSERT_EQ(journal.size(), 3u);
  EXPECT_EQ(journal[0].parent, 0u);           // a's first event
  EXPECT_EQ(journal[1].parent, 0u);           // b's first event
  EXPECT_EQ(journal[2].parent, a1.event);     // a's second chains to a1
  EXPECT_LT(a1.event, b1.event);
  EXPECT_LT(b1.event, a2.event);
}

TEST(Recorder, LamportMergesCauseAcrossMachines) {
  Recorder rec;
  rec.set_enabled(true);
  // Tick vax's clock ahead, then carry its context to sparc: the deliver
  // must land strictly after the send even though sparc's own clock is 0.
  TraceContext c;
  for (int i = 0; i < 5; ++i) c = rec.record(EventKind::kSend, "vax", "a", "");
  EXPECT_EQ(c.lamport, 5u);
  TraceContext d = rec.record(EventKind::kDeliver, "sparc", "b", "", c);
  EXPECT_EQ(d.lamport, 6u);
  EXPECT_EQ(rec.journal("sparc").front().cause, c.event);
}

TEST(Recorder, LamportMergesProgramOrderParentAcrossMachines) {
  Recorder rec;
  rec.set_enabled(true);
  // A module's events can land in different journals (a control-plane
  // event is recorded where the script runs). The parent edge must
  // advance the clock too, or the second event would sort before the
  // first.
  TraceContext first;
  for (int i = 0; i < 4; ++i) {
    first = rec.record(EventKind::kDeliver, "vax", "server", "");
  }
  TraceContext second =
      rec.record(EventKind::kSignal, "sparc", "server", "requested");
  EXPECT_EQ(rec.journal("sparc").front().parent, first.event);
  EXPECT_GT(second.lamport, first.lamport);
}

TEST(Recorder, RingEvictsOldestAndCountsDrops) {
  Recorder rec;
  rec.set_enabled(true);
  rec.set_capacity(4);
  std::size_t observed = 0;
  rec.set_observer([&observed](const Event&) { ++observed; });
  for (int i = 0; i < 10; ++i) {
    rec.record(EventKind::kSend, "vax", "a", std::to_string(i));
  }
  EXPECT_EQ(rec.journal("vax").size(), 4u);
  EXPECT_EQ(rec.journal("vax").front().detail, "6");
  EXPECT_EQ(rec.dropped("vax"), 6u);
  EXPECT_EQ(observed, 10u);  // the observer saw every event pre-eviction
  EXPECT_EQ(rec.total_events(), 10u);
}

TEST(Recorder, TraceIdInheritedFromScopeAndFromCause) {
  Recorder rec;
  rec.set_enabled(true);
  std::uint64_t id = rec.begin_trace("replace:server");
  EXPECT_EQ(rec.trace_name(id), "replace:server");
  TraceContext inside = rec.record(EventKind::kSignal, "vax", "a", "");
  EXPECT_EQ(inside.trace_id, id);
  rec.end_trace();
  // After the scope closes, a caused event still rides the cause's trace;
  // an uncaused one belongs to no trace.
  TraceContext caused = rec.record(EventKind::kDeliver, "vax", "b", "",
                                   inside);
  TraceContext uncaused = rec.record(EventKind::kSend, "vax", "c", "");
  EXPECT_EQ(caused.trace_id, id);
  EXPECT_EQ(uncaused.trace_id, 0u);
}

// --------------------------------------------- propagation through the bus

class TracedBusTest : public ::testing::Test {
 protected:
  TracedBusTest() : bus_(sim_) {
    sim_.add_machine("vax", net::arch_vax());
    sim_.add_machine("sparc", net::arch_sparc());
    net::LatencyModel model;
    model.local_us = 10;
    model.remote_us = 1000;
    sim_.set_latency_model(model);
    rec_.set_clock([this] { return sim_.now(); });
    rec_.set_enabled(true);
    bus_.set_tracer(&rec_);
    metrics_.set_enabled(true);
    bus_.set_metrics(&metrics_);
  }

  bus::ModuleInfo make_module(const std::string& name,
                              const std::string& machine) {
    bus::ModuleInfo info;
    info.name = name;
    info.machine = machine;
    info.interfaces = {
        bus::InterfaceSpec{"in", bus::IfaceRole::kUse, "i", ""},
        bus::InterfaceSpec{"out", bus::IfaceRole::kDefine, "i", ""},
    };
    return info;
  }

  void add_pair() {
    bus_.add_module(make_module("a", "vax"));
    bus_.add_module(make_module("b", "sparc"));
    bus_.add_binding({"a", "out"}, {"b", "in"});
  }

  std::vector<Event> events_of(const std::string& machine, EventKind kind) {
    std::vector<Event> out;
    for (const Event& ev : rec_.journal(machine)) {
      if (ev.kind == kind) out.push_back(ev);
    }
    return out;
  }

  std::uint64_t counter(const char* name) {
    return metrics_.counter(name, {{"kind", "message"}}).value();
  }

  net::Simulator sim_;
  bus::Bus bus_;
  Recorder rec_;
  obs::MetricsRegistry metrics_;
};

TEST_F(TracedBusTest, FireAndForgetDeliveryChainsToSend) {
  add_pair();
  bus_.send("a", "out", {ser::Value(std::int64_t{5})});
  sim_.run();
  auto sends = events_of("vax", EventKind::kSend);
  auto delivers = events_of("sparc", EventKind::kDeliver);
  ASSERT_EQ(sends.size(), 1u);
  ASSERT_EQ(delivers.size(), 1u);
  EXPECT_EQ(delivers[0].cause, sends[0].id);
  EXPECT_GT(delivers[0].lamport, sends[0].lamport);
  Dag dag = assemble(rec_);
  EXPECT_TRUE(dag.happens_before(sends[0].id, delivers[0].id));
  EXPECT_FALSE(dag.happens_before(delivers[0].id, sends[0].id));
}

TEST_F(TracedBusTest, ContextSurvivesRetransmission) {
  bus_.set_delivery(bus::DeliveryOptions{.reliable = true});
  add_pair();
  int copies = 0;
  bus_.set_fault_hook([&copies](const std::string& src, const std::string&) {
    if (src == "vax" && ++copies <= 2) return bus::FaultDecision{.drop = true};
    return bus::FaultDecision{};
  });
  bus_.send("a", "out", {ser::Value(std::int64_t{7})});
  sim_.run();
  ASSERT_TRUE(bus_.receive("b", "in").has_value());
  auto sends = events_of("vax", EventKind::kSend);
  auto retransmits = events_of("vax", EventKind::kRetransmit);
  auto delivers = events_of("sparc", EventKind::kDeliver);
  ASSERT_EQ(sends.size(), 1u);
  ASSERT_GE(retransmits.size(), 2u);
  ASSERT_EQ(delivers.size(), 1u);
  // Every retry chains to the original send; the delivery chains to the
  // transmission that actually arrived.
  for (const Event& rt : retransmits) EXPECT_EQ(rt.cause, sends[0].id);
  EXPECT_EQ(delivers[0].cause, retransmits.back().id);
  Dag dag = assemble(rec_);
  EXPECT_TRUE(dag.happens_before(sends[0].id, delivers[0].id));
  EXPECT_GE(counter("surgeon_bus_transmissions_total"), 3u);
}

TEST_F(TracedBusTest, ContextSurvivesDuplicateDiscard) {
  bus_.set_delivery(bus::DeliveryOptions{.reliable = true});
  add_pair();
  bus_.set_fault_hook([](const std::string& src, const std::string&) {
    if (src == "vax") {
      return bus::FaultDecision{.duplicate = true, .duplicate_delay_us = 50};
    }
    return bus::FaultDecision{};
  });
  bus_.send("a", "out", {ser::Value(std::int64_t{9})});
  sim_.run();
  ASSERT_TRUE(bus_.receive("b", "in").has_value());
  ASSERT_FALSE(bus_.receive("b", "in").has_value());  // deduplicated
  auto sends = events_of("vax", EventKind::kSend);
  auto delivers = events_of("sparc", EventKind::kDeliver);
  auto discards = events_of("sparc", EventKind::kDupDiscard);
  ASSERT_EQ(sends.size(), 1u);
  ASSERT_EQ(delivers.size(), 1u);
  ASSERT_GE(discards.size(), 1u);
  // The discarded copy carried the same causal header as the applied one.
  EXPECT_EQ(discards[0].cause, sends[0].id);
  EXPECT_GE(counter("surgeon_bus_dup_injected_total"), 1u);
}

TEST_F(TracedBusTest, OutOfOrderBufferingIsCounted) {
  bus_.set_delivery(bus::DeliveryOptions{.reliable = true});
  add_pair();
  int data_copies = 0;
  bus_.set_fault_hook(
      [&data_copies](const std::string& src, const std::string&) {
        // Delay only the first wire copy leaving vax, so seq 2 overtakes
        // seq 1 and must be buffered for re-sequencing at the receiver.
        if (src == "vax" && ++data_copies == 1) {
          return bus::FaultDecision{.extra_delay_us = 5'000};
        }
        return bus::FaultDecision{};
      });
  bus_.send("a", "out", {ser::Value(std::int64_t{1})});
  bus_.send("a", "out", {ser::Value(std::int64_t{2})});
  sim_.run();
  EXPECT_EQ(bus_.receive("b", "in")->values[0].as_int(), 1);
  EXPECT_EQ(bus_.receive("b", "in")->values[0].as_int(), 2);
  EXPECT_GE(counter("surgeon_bus_ooo_buffered_total"), 1u);
  EXPECT_GE(counter("surgeon_bus_transmissions_total"), 2u);
  // The labeled reliable-layer internals surface through mh_stats.
  bus::Client client(bus_, "b");
  std::string stats = client.mh_stats("prometheus");
  EXPECT_NE(stats.find("surgeon_bus_ooo_buffered_total"), std::string::npos);
  EXPECT_NE(stats.find("surgeon_bus_transmissions_total"), std::string::npos);
}

// Ring eviction must never fail request assembly: a request whose early
// records were evicted assembles into a partial trace with a completeness
// fraction < 1, while requests whose full chain survived stay complete.
TEST_F(TracedBusTest, RequestAssemblySurvivesRingEviction) {
  rec_.set_capacity(4);  // tiny ring: sparc holds 4 of its 6 records
  add_pair();
  bus_.set_request_entry("a", "out");
  bus_.set_request_terminal("b", "in");
  // Move off t=0: a started_at of 0 is the assembler's "entry send was
  // evicted" sentinel, and these sends must be distinguishable from that.
  sim_.schedule_after(500, [] {});
  sim_.run();
  for (int i = 0; i < 3; ++i) {
    bus_.send("a", "out", {ser::Value(std::int64_t{i})});
  }
  sim_.run();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(bus_.receive("b", "in").has_value());
  }
  // vax keeps its 3 sends; sparc journaled deliver 1-3 then receive 1-3,
  // so the 4-slot ring evicted request 1's and 2's delivers: their
  // surviving receives now carry dangling cause references.
  Dag dag = assemble(rec_);
  std::vector<RequestTrace> requests = assemble_requests(dag);
  ASSERT_EQ(requests.size(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    const RequestTrace& rt = requests[r];
    EXPECT_EQ(rt.request, r + 1) << "request " << r + 1;
    EXPECT_TRUE(rt.completed) << "request " << r + 1;   // terminal receive
    EXPECT_FALSE(rt.complete) << "request " << r + 1;   // ...but holes
    EXPECT_LT(rt.completeness, 1.0) << "request " << r + 1;
    ASSERT_FALSE(rt.hops.empty()) << "request " << r + 1;
    EXPECT_TRUE(rt.hops.back().partial) << "request " << r + 1;
  }
  // The survivor assembles end to end: every causal reference resolved,
  // latency derived from both ends.
  const RequestTrace& intact = requests[2];
  EXPECT_EQ(intact.request, 3u);
  EXPECT_TRUE(intact.completed);
  EXPECT_TRUE(intact.complete);
  EXPECT_DOUBLE_EQ(intact.completeness, 1.0);
  EXPECT_EQ(intact.latency_us, intact.completed_at - intact.started_at);
  ASSERT_FALSE(intact.hops.empty());
  for (const RequestHop& hop : intact.hops) {
    EXPECT_FALSE(hop.partial);
  }
  // The export stays well-formed in the presence of partial traces.
  const std::string json = requests_to_json(requests);
  EXPECT_NE(json.find("\"complete\":false"), std::string::npos);
  EXPECT_NE(json.find("\"complete\":true"), std::string::npos);
}

// ------------------------------------------------- replacement integration

std::unique_ptr<app::Runtime> make_counter(int requests = 20) {
  auto rt = std::make_unique<app::Runtime>(7);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  rt->load_application(config, "counter",
                       [&](const cfg::ModuleSpec& spec) {
                         if (spec.name == "client") {
                           return app::samples::counter_client_source(
                               requests);
                         }
                         return app::samples::counter_server_source();
                       });
  return rt;
}

TEST(Replacement, CloneInheritsCapturedQueueContexts) {
  auto rt = make_counter();
  rt->enable_causal_tracing();
  rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 2; },
      10'000'000);
  reconfig::ReplaceReport report =
      reconfig::replace_module(*rt, "server", {});
  EXPECT_GT(report.trace_id, 0u);
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();

  Dag dag = assemble(rt->tracer());
  const Event* divulge = nullptr;
  const Event* rebind = nullptr;
  const Event* capture = nullptr;
  const Event* first_clone_deliver = nullptr;
  for (const Event& ev : dag.events) {
    if (ev.kind == EventKind::kDivulge && divulge == nullptr) divulge = &ev;
    if (ev.kind == EventKind::kRebind && rebind == nullptr) rebind = &ev;
    if (ev.kind == EventKind::kCapture && capture == nullptr) capture = &ev;
    if (ev.kind == EventKind::kDeliver &&
        ev.module == report.new_instance && first_clone_deliver == nullptr) {
      first_clone_deliver = &ev;
    }
  }
  ASSERT_NE(divulge, nullptr);
  ASSERT_NE(rebind, nullptr);
  ASSERT_NE(capture, nullptr);
  ASSERT_NE(first_clone_deliver, nullptr);
  // Figure 5 order, causally: divulge -> rebind -> queue capture, and the
  // clone's first delivery happens after the rebind that bound it.
  EXPECT_TRUE(dag.happens_before(divulge->id, rebind->id));
  EXPECT_TRUE(dag.happens_before(rebind->id, capture->id));
  EXPECT_TRUE(dag.happens_before(rebind->id, first_clone_deliver->id));
  // The replacement's events are grouped under the report's trace id.
  EXPECT_EQ(rebind->trace_id, report.trace_id);
}

TEST(Replacement, CleanRunPassesTheOnlineChecker) {
  auto rt = make_counter();
  HbChecker checker;
  rt->tracer().set_observer(
      [&checker](const Event& ev) { checker.observe(ev); });
  rt->enable_causal_tracing();
  rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 2; },
      10'000'000);
  (void)reconfig::replace_module(*rt, "server", {});
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("client"); }, 10'000'000));
  rt->check_faults();
  EXPECT_GT(checker.observed(), 0u);
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
}

TEST(Replacement, MhTraceExportsTheMachineJournal) {
  auto rt = make_counter();
  rt->enable_causal_tracing();
  rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 2; },
      10'000'000);
  bus::Client client(rt->bus(), "server");
  EXPECT_THROW((void)client.mh_trace("xml"), support::BusError);
  std::string json = client.mh_trace("json");
  EXPECT_NE(json.find("\"kind\":\"deliver\""), std::string::npos);
  EXPECT_NE(json.find("\"lamport\""), std::string::npos);
  std::string text = client.mh_trace("text");
  EXPECT_NE(text.find("deliver"), std::string::npos);
  // Draining empties the journal; a second drain sees nothing new.
  std::string drained = client.mh_trace("json", /*drain=*/true);
  EXPECT_NE(drained.find("\"kind\""), std::string::npos);
  EXPECT_EQ(client.mh_trace("json").find("\"kind\""), std::string::npos);
}

TEST(Replacement, ChromeTraceAndTimelineExports) {
  auto rt = make_counter();
  rt->enable_causal_tracing();
  rt->run_until(
      [&] { return rt->machine_of("client")->output().size() >= 2; },
      10'000'000);
  reconfig::ReplaceReport report =
      reconfig::replace_module(*rt, "server", {});
  Dag dag = assemble(rt->tracer());
  std::string chrome = to_chrome_trace(dag, report.trace_id);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("process_name"), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"s\""), std::string::npos);  // flow edges
  EXPECT_NE(chrome.find("rebind"), std::string::npos);
  std::string timeline = to_timeline(dag, report.trace_id);
  EXPECT_NE(timeline.find("divulge"), std::string::npos);
  EXPECT_NE(timeline.find("rebind"), std::string::npos);
  // Filtering works: the full timeline has steady-state traffic the
  // replacement-only view omits.
  EXPECT_GT(to_timeline(dag).size(), timeline.size());
}

// ------------------------------------------------------- directed checker

Event make_event(EventId id, EventKind kind, const std::string& machine,
                 const std::string& module, std::uint64_t lamport,
                 net::SimTime at, EventId parent = 0, EventId cause = 0,
                 std::string detail = "") {
  Event ev;
  ev.id = id;
  ev.parent = parent;
  ev.cause = cause;
  ev.trace_id = 1;
  ev.lamport = lamport;
  ev.at = at;
  ev.kind = kind;
  ev.machine = machine;
  ev.module = module;
  ev.detail = std::move(detail);
  return ev;
}

bool any_violation_mentions(const HbChecker& checker, const char* tag) {
  return std::any_of(checker.violations().begin(),
                     checker.violations().end(),
                     [tag](const std::string& v) {
                       return v.find(tag) != std::string::npos;
                     });
}

TEST(HbCheckerDirected, ReorderedJournalIsFlagged) {
  // A journal whose Lamport clocks run backwards on one machine: exactly
  // what a buggy merge (or a tampered export) would produce.
  HbChecker checker;
  checker.observe(
      make_event(1, EventKind::kSend, "vax", "a", /*lamport=*/5, 100));
  checker.observe(
      make_event(2, EventKind::kSend, "vax", "a", /*lamport=*/3, 200, 1));
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(any_violation_mentions(checker, "I6"));
  EXPECT_TRUE(any_violation_mentions(checker, "I5"));
}

TEST(HbCheckerDirected, TimeTravelIsFlagged) {
  HbChecker checker;
  checker.observe(make_event(1, EventKind::kSend, "vax", "a", 1, 500));
  checker.observe(make_event(2, EventKind::kSend, "vax", "a", 2, 400, 1));
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(any_violation_mentions(checker, "I6"));
}

TEST(HbCheckerDirected, RebindWithoutQuiescenceIsFlagged) {
  // A clone rebind whose cause is a plain send, not the divulge: the
  // Figure 5 protocol rebinds only after the old module divulged.
  HbChecker checker;
  checker.observe(make_event(1, EventKind::kModuleAdded, "sparc", "x@2", 1,
                             0, 0, 0, "machine=sparc status=clone"));
  checker.observe(make_event(2, EventKind::kSend, "vax", "y", 1, 10));
  checker.observe(make_event(3, EventKind::kRebind, "bus", "x", 2, 20, 0, 2,
                             "edits=2 modules=x,x@2"));
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(any_violation_mentions(checker, "I1"));
}

TEST(HbCheckerDirected, StateDeliveryWithoutDivulgeIsFlagged) {
  HbChecker checker;
  checker.observe(
      make_event(1, EventKind::kStateDeliver, "sparc", "x@2", 1, 10));
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(any_violation_mentions(checker, "I3"));
}

TEST(HbCheckerDirected, DeliveryToRetiredModuleIsFlagged) {
  HbChecker checker;
  checker.observe(make_event(1, EventKind::kDivulge, "vax", "x", 1, 10));
  checker.observe(make_event(2, EventKind::kRebind, "bus", "x", 2, 20, 0, 1,
                             "edits=2 modules=x,x@2"));
  checker.observe(
      make_event(3, EventKind::kDeliver, "vax", "x", 3, 30, 0, 0, "in"));
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(any_violation_mentions(checker, "I2"));
}

TEST(HbCheckerDirected, CleanSyntheticJournalPasses) {
  HbChecker checker;
  checker.observe(make_event(1, EventKind::kSend, "vax", "a", 1, 10));
  checker.observe(
      make_event(2, EventKind::kDeliver, "sparc", "b", 2, 1010, 0, 1, "in"));
  checker.observe(make_event(3, EventKind::kSend, "sparc", "b", 3, 1020, 2));
  EXPECT_TRUE(checker.ok());
  EXPECT_EQ(checker.observed(), 3u);
}

}  // namespace
}  // namespace surgeon::trace
