// Unit tests for surgeon::verify: the primitives' pre/postconditions, the
// static plan checker over every shipped script, the seeded broken plan
// (rebind before divulge -> invariant 3), the golden-pinned plan_check
// diagnostics, and the journal-boundary conformance that ties each plan to
// the real script it models.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "reconfig/scripts.hpp"
#include "replicate/kv.hpp"
#include "replicate/rebuild.hpp"
#include "verify/checker.hpp"
#include "verify/plan.hpp"

namespace surgeon::verify {
namespace {

AbsState at_divulged() {
  AbsState s;
  s.old_life = OldLife::kPassive;
  s.clone = CloneLife::kRegistered;
  s.divulged = true;
  s.state_durable = true;
  s.txn_open = true;
  return s;
}

bool violates(const std::vector<PreViolation>& v, int invariant) {
  for (const PreViolation& pv : v) {
    if (pv.invariant == invariant) return true;
  }
  return false;
}

// --- primitive preconditions ------------------------------------------------

TEST(Primitives, InitialStateSatisfiesEveryInvariant) {
  const AbsState s;
  for (int inv : {1, 2, 3, 4, 6, 7}) {
    EXPECT_TRUE(invariant_holds(inv, s)) << "invariant " << inv;
  }
}

TEST(Primitives, EveryPrimHasAName) {
  for (Prim p : kAllPrims) {
    EXPECT_STRNE(prim_name(p), "?");
  }
}

TEST(Primitives, RegisterCloneRejectsASecondClone) {
  AbsState s;
  EXPECT_TRUE(precondition(Prim::kRegisterClone, s).empty());
  s.clone = CloneLife::kRegistered;
  EXPECT_TRUE(violates(precondition(Prim::kRegisterClone, s), 6));
}

TEST(Primitives, DivulgeRequiresQuiescenceAndSingleCapture) {
  AbsState s;  // still active
  EXPECT_TRUE(violates(precondition(Prim::kDivulge, s), 3));
  s.old_life = OldLife::kPassive;
  EXPECT_TRUE(precondition(Prim::kDivulge, s).empty());
  s.divulged = true;
  EXPECT_TRUE(violates(precondition(Prim::kDivulge, s), 2));
}

TEST(Primitives, RebindRequiresTheWatershed) {
  AbsState s;
  s.clone = CloneLife::kRegistered;
  EXPECT_TRUE(violates(precondition(Prim::kRebind, s), 3));
  AbsState d = at_divulged();
  EXPECT_TRUE(precondition(Prim::kRebind, d).empty());
  d.clone = CloneLife::kAbsent;
  EXPECT_TRUE(violates(precondition(Prim::kRebind, d), 1));
}

TEST(Primitives, StartCloneRejectsTwoLiveInstances) {
  AbsState s;
  s.clone = CloneLife::kRegistered;
  EXPECT_TRUE(violates(precondition(Prim::kStartClone, s), 6));
  s.old_life = OldLife::kPassive;
  EXPECT_TRUE(precondition(Prim::kStartClone, s).empty());
}

TEST(Primitives, RemoveOldGuardsContinuity) {
  AbsState s;  // active, bound to old, nothing captured
  auto v = precondition(Prim::kRemoveOld, s);
  EXPECT_TRUE(violates(v, 4));  // removing a serving instance
  EXPECT_TRUE(violates(v, 1));  // bindings still on it
  EXPECT_TRUE(violates(v, 2));  // state never captured
  AbsState d = at_divulged();
  d.bound_to_old = false;
  d.bound_to_new = true;
  d.streams = StreamOwner::kNew;
  d.clone = CloneLife::kStarted;
  d.state_delivered = true;
  EXPECT_TRUE(precondition(Prim::kRemoveOld, d).empty());
}

TEST(Primitives, AbortRollbackOnlyBeforeTheWatershed) {
  AbsState s;
  s.clone = CloneLife::kRegistered;
  s.txn_open = true;
  EXPECT_TRUE(precondition(Prim::kAbortRollback, s).empty());
  EXPECT_TRUE(violates(precondition(Prim::kAbortRollback, at_divulged()), 2));
}

TEST(Primitives, CommitRequiresTheFinishedConfiguration) {
  AbsState s = at_divulged();
  auto v = precondition(Prim::kCommit, s);
  EXPECT_TRUE(violates(v, 6));  // old still present
  EXPECT_TRUE(violates(v, 4));  // clone not restored
  EXPECT_TRUE(violates(v, 1));  // bindings not moved
  s.old_life = OldLife::kRemoved;
  s.clone = CloneLife::kRestored;
  s.bound_to_old = false;
  s.bound_to_new = true;
  s.state_delivered = true;
  EXPECT_TRUE(precondition(Prim::kCommit, s).empty());
}

TEST(Primitives, RestartFromWalNeedsTheDurableWatershed) {
  AbsState s = at_divulged();
  EXPECT_TRUE(precondition(Prim::kRestartFromWal, s).empty());
  s.state_durable = false;  // unjournaled divulge cannot roll forward
  EXPECT_TRUE(violates(precondition(Prim::kRestartFromWal, s), 2));
}

TEST(Primitives, AdoptDeadBindingsNeedsTheDivulgedCaptureInTheHeir) {
  AbsState s = at_divulged();
  s.machine_lost = true;
  s.replica = CloneLife::kRegistered;
  EXPECT_TRUE(violates(precondition(Prim::kAdoptDeadBindings, s), 7));
  s.replica_has_state = true;
  EXPECT_TRUE(precondition(Prim::kAdoptDeadBindings, s).empty());
  s.divulged = false;  // adoption before the watershed loses acked writes
  EXPECT_TRUE(violates(precondition(Prim::kAdoptDeadBindings, s), 7));
}

TEST(Primitives, RetireDeadOnlyAfterAdoption) {
  AbsState s;
  s.machine_lost = true;
  EXPECT_TRUE(violates(precondition(Prim::kRetireDead, s), 7));
  s.dead_adopted = true;
  EXPECT_TRUE(precondition(Prim::kRetireDead, s).empty());
}

TEST(Primitives, Invariant7TracksTheAdoptionWatershed) {
  AbsState s;
  s.machine_lost = true;
  EXPECT_TRUE(invariant_holds(7, s));  // loss alone violates nothing
  s.dead_adopted = true;               // ...but adopting without the state does
  EXPECT_FALSE(invariant_holds(7, s));
  s.divulged = true;
  s.replica_has_state = true;
  EXPECT_TRUE(invariant_holds(7, s));
  s.dead_adopted = false;
  s.dead_retired = true;  // retired without an heir: queued acks dropped
  EXPECT_FALSE(invariant_holds(7, s));
}

// --- primitive postconditions -----------------------------------------------

TEST(Primitives, ApplyTransformsTheAbstractState) {
  AbsState s;
  apply(Prim::kBeginTxn, s, /*journaled=*/true);
  EXPECT_TRUE(s.txn_open);
  apply(Prim::kRegisterClone, s, true);
  EXPECT_EQ(s.clone, CloneLife::kRegistered);
  apply(Prim::kPassivate, s, true);
  EXPECT_EQ(s.old_life, OldLife::kPassive);
  apply(Prim::kDivulge, s, true);
  EXPECT_TRUE(s.divulged);
  EXPECT_TRUE(s.state_durable);  // journaled: the watershed is durable
  apply(Prim::kRebind, s, true);
  EXPECT_FALSE(s.bound_to_old);
  EXPECT_TRUE(s.bound_to_new);
  EXPECT_EQ(s.streams, StreamOwner::kNew);
}

TEST(Primitives, UnjournaledDivulgeIsNotDurable) {
  AbsState s;
  s.old_life = OldLife::kPassive;
  apply(Prim::kDivulge, s, /*journaled=*/false);
  EXPECT_TRUE(s.divulged);
  EXPECT_FALSE(s.state_durable);
}

TEST(Primitives, CloneCrashLosesTheMailboxCopyAndRetryRestoresIt) {
  AbsState s = at_divulged();
  s.clone = CloneLife::kStarted;
  s.state_delivered = true;
  s.bound_to_old = false;
  s.bound_to_new = true;
  apply(Prim::kCloneCrashed, s, true);
  EXPECT_EQ(s.clone, CloneLife::kCrashed);
  EXPECT_FALSE(s.state_delivered);
  EXPECT_TRUE(precondition(Prim::kRetrySwap, s).empty());
  apply(Prim::kRetrySwap, s, true);
  EXPECT_EQ(s.clone, CloneLife::kStarted);
  EXPECT_TRUE(s.state_delivered);
}

TEST(Primitives, AbortRestoresThePreScriptConfiguration) {
  AbsState s;
  s.txn_open = true;
  s.clone = CloneLife::kRegistered;
  apply(Prim::kAbortRollback, s, true);
  EXPECT_TRUE(s.aborted);
  EXPECT_FALSE(s.txn_open);
  EXPECT_EQ(s.clone, CloneLife::kAbsent);
  EXPECT_EQ(s.old_life, OldLife::kActive);
  EXPECT_TRUE(s.bound_to_old);
  EXPECT_TRUE(invariant_holds(4, s));
}

// --- the checker over shipped plans -----------------------------------------

TEST(Checker, EveryShippedPlanPasses) {
  for (const Plan& plan : shipped_plans()) {
    const PlanReport report = check_plan(plan);
    EXPECT_TRUE(report.ok) << plan.name << ":\n" << report.to_text();
    EXPECT_EQ(report.steps.size(), plan.steps.size());
    EXPECT_TRUE(report.violations.empty());
    if (plan.outcome == Outcome::kCommitted) {
      EXPECT_TRUE(report.end_state.committed) << plan.name;
    } else {
      EXPECT_TRUE(report.end_state.aborted) << plan.name;
    }
  }
}

TEST(Checker, ShippedPlanCountAndNamesAreStable) {
  const std::vector<Plan> plans = shipped_plans();
  ASSERT_EQ(plans.size(), 10u);
  EXPECT_EQ(plans[0].name, "replace");
  EXPECT_EQ(plans[5].name, "recover_rollback");
  EXPECT_EQ(plans[6].name, "recover_rollforward");
  EXPECT_EQ(plans[8].name, "group_rebuild");
  EXPECT_EQ(plans[9].name, "rebalance");
}

TEST(Checker, EstablishedStatusAppearsWhereAnInvariantFlipsOn) {
  // In the broken plan invariant 3 is violated at the early rebind and
  // then ESTABLISHED by the later divulge -- all three statuses occur.
  const PlanReport report = check_plan(plan_broken_rebind_before_divulge());
  bool saw_violated = false;
  bool saw_established = false;
  for (const StepReport& sr : report.steps) {
    if (sr.invariants[2] == InvStatus::kViolated) saw_violated = true;
    if (sr.invariants[2] == InvStatus::kEstablished) saw_established = true;
  }
  EXPECT_TRUE(saw_violated);
  EXPECT_TRUE(saw_established);
}

TEST(Checker, BrokenPlanFailsWithInvariant3) {
  const PlanReport report = check_plan(plan_broken_rebind_before_divulge());
  EXPECT_FALSE(report.ok);
  // The machine-readable diagnostic names the step, the invariant id, and
  // carries the counterexample state.
  bool pre_hit = false;
  bool boundary_hit = false;
  for (const Violation& v : report.violations) {
    EXPECT_EQ(v.invariant, 3) << v.kind << ": " << v.detail;
    if (v.kind == "precondition" && v.step == "rebind") pre_hit = true;
    if (v.kind == "boundary" && v.step == "rebind") boundary_hit = true;
    EXPECT_FALSE(v.state.empty());
  }
  EXPECT_TRUE(pre_hit) << report.to_text();
  EXPECT_TRUE(boundary_hit) << report.to_text();
  EXPECT_NE(report.to_json().find("\"invariant\":3"), std::string::npos);
}

TEST(Checker, BrokenAdoptPlanFailsWithInvariant7) {
  const PlanReport report = check_plan(plan_broken_adopt_before_divulge());
  EXPECT_FALSE(report.ok);
  bool pre_hit = false;
  bool boundary_hit = false;
  for (const Violation& v : report.violations) {
    EXPECT_EQ(v.invariant, 7) << v.kind << ": " << v.detail;
    if (v.kind == "precondition" && v.step == "adopt_dead_bindings") {
      pre_hit = true;
    }
    if (v.kind == "boundary" && v.step == "adopt_dead_bindings") {
      boundary_hit = true;
    }
  }
  EXPECT_TRUE(pre_hit) << report.to_text();
  EXPECT_TRUE(boundary_hit) << report.to_text();
  EXPECT_NE(report.to_json().find("\"invariant\":7"), std::string::npos);
}

TEST(Checker, JsonIsWellFormedEnoughForTheCiGate) {
  const PlanReport report = check_plan(plan_replace());
  const std::string json = report.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"plan\":\"replace\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"violations\":[]"), std::string::npos);
}

// --- golden-pinned diagnostics ----------------------------------------------

TEST(Checker, PlanCheckOutputMatchesGolden) {
  std::ostringstream got;
  const std::vector<Plan> plans = shipped_plans();
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (i != 0) got << "\n";
    got << check_plan(plans[i]).to_text();
  }
  std::ifstream in(std::string(SURGEON_GOLDEN_DIR) + "/plan_check.txt");
  ASSERT_TRUE(in.good()) << "tests/golden/plan_check.txt missing";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got.str(), want.str())
      << "plan_check diagnostics drifted; regenerate tests/golden/"
         "plan_check.txt from `tools/plan_check` if the change is intended";
}

// --- journal-boundary conformance: plans pinned to the real scripts ---------

/// Records the transaction-boundary sequence a script reports, in the same
/// currency as Plan::journal_boundaries().
class RecordingJournal : public reconfig::ScriptJournal {
 public:
  void begin(const std::string&, const std::string&,
             const std::string&) override {
    boundaries.push_back("begin");
  }
  void intent(const char* step) override { boundaries.push_back(step); }
  void divulged(const std::vector<std::uint8_t>&) override {
    divulge_records += 1;
  }
  void committed() override { committed_records += 1; }
  void aborted(const std::string&) override {
    boundaries.push_back("abort");
  }

  std::vector<std::string> boundaries;
  int divulge_records = 0;
  int committed_records = 0;
};

std::unique_ptr<app::Runtime> make_counter(int requests = 8) {
  auto rt = std::make_unique<app::Runtime>(2);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  rt->load_application(config, "counter", [&](const cfg::ModuleSpec& spec) {
    if (spec.name == "client") {
      return app::samples::counter_client_source(requests);
    }
    return app::samples::counter_server_source();
  });
  return rt;
}

TEST(Conformance, ReplacePlanMatchesTheScriptsJournalBoundaries) {
  auto rt = make_counter();
  RecordingJournal journal;
  reconfig::ReplaceOptions options;
  options.journal = &journal;
  (void)reconfig::replace_module(*rt, "server", options);
  EXPECT_EQ(journal.boundaries, plan_replace().journal_boundaries());
  EXPECT_EQ(journal.divulge_records, 1);
  EXPECT_EQ(journal.committed_records, 1);
}

TEST(Conformance, GroupRebuildPlanMatchesTheScriptsJournalBoundaries) {
  app::Runtime rt;
  replicate::KvOptions options;
  options.shards = 1;
  options.group_size = 2;
  options.machines = {"m0", "m1"};
  for (const auto& m : options.machines) rt.add_machine(m, net::arch_vax());
  rt.add_machine("sp0", net::arch_vax());
  rt.add_machine(options.control_machine, net::arch_vax());
  replicate::KvService service(rt, options);
  service.launch(60);  // long script: still mid-run at the kill
  (void)rt.run_for(20'000, 50'000'000);

  const auto members = service.router().members(0);
  ASSERT_EQ(members.size(), 2u);
  const std::string& dead = members[0];
  const std::string& survivor = members[1];
  (void)rt.crash_machine(rt.bus().module_info(dead).machine);

  RecordingJournal journal;
  replicate::RebuildGroupOptions opts;
  opts.target_machine = "sp0";
  opts.journal = &journal;
  opts.nudge = [&service] { service.router().nudge(0); };
  (void)replicate::rebuild_group(rt, survivor, dead, opts);
  EXPECT_EQ(journal.boundaries, plan_group_rebuild().journal_boundaries());
  EXPECT_EQ(journal.divulge_records, 1);
  EXPECT_EQ(journal.committed_records, 1);
}

TEST(Conformance, AbortPlanMatchesTheDivulgeTimeoutPath) {
  // The client has no reconfiguration points: the script signals, waits,
  // times out, and rolls back -- the abort_divulge_timeout plan.
  auto rt = make_counter();
  RecordingJournal journal;
  reconfig::ReplaceOptions options;
  options.journal = &journal;
  options.divulge_timeout_us = 50'000;
  EXPECT_THROW((void)reconfig::replace_module(*rt, "client", options),
               reconfig::ScriptError);
  EXPECT_EQ(journal.boundaries,
            plan_abort_divulge_timeout().journal_boundaries());
  EXPECT_EQ(journal.divulge_records, 0);
  EXPECT_EQ(journal.committed_records, 0);
}

}  // namespace
}  // namespace surgeon::verify
