#include <gtest/gtest.h>

#include "app/samples.hpp"
#include "cfg/parser.hpp"

namespace surgeon::cfg {
namespace {

using support::ParseError;

TEST(Cfg, ParsesTheMonitorSpecification) {
  // F2: the Figure 2 configuration parses and carries everything the
  // runtime needs, including the reconfiguration point clause.
  ConfigFile file = parse_config(app::samples::monitor_config_text());
  ASSERT_EQ(file.modules.size(), 3u);
  ASSERT_EQ(file.applications.size(), 1u);

  const ModuleSpec* compute = file.find_module("compute");
  ASSERT_NE(compute, nullptr);
  EXPECT_EQ(compute->source, "./compute.mc");
  ASSERT_EQ(compute->interfaces.size(), 2u);
  const bus::InterfaceSpec* display_if = compute->find_interface("display");
  ASSERT_NE(display_if, nullptr);
  EXPECT_EQ(display_if->role, bus::IfaceRole::kServer);
  EXPECT_EQ(display_if->pattern, "i");
  EXPECT_EQ(display_if->reply_pattern, "F");
  const bus::InterfaceSpec* sensor_if = compute->find_interface("sensor");
  ASSERT_NE(sensor_if, nullptr);
  EXPECT_EQ(sensor_if->role, bus::IfaceRole::kUse);

  ASSERT_EQ(compute->reconfig_points.size(), 1u);
  const ReconfigPointSpec& point = compute->reconfig_points[0];
  EXPECT_EQ(point.label, "R");
  ASSERT_EQ(point.vars.size(), 3u);
  EXPECT_EQ(point.vars[0], (StateVar{"num", false}));
  EXPECT_EQ(point.vars[1], (StateVar{"n", false}));
  EXPECT_EQ(point.vars[2], (StateVar{"rp", true}));

  const ApplicationSpec* monitor = file.find_application("monitor");
  ASSERT_NE(monitor, nullptr);
  ASSERT_EQ(monitor->instances.size(), 3u);
  EXPECT_EQ(monitor->instances[1].module, "compute");
  EXPECT_EQ(monitor->instances[1].machine, "vax");
  EXPECT_EQ(monitor->instances[2].machine, "sparc");
  ASSERT_EQ(monitor->binds.size(), 2u);
  EXPECT_EQ(monitor->binds[0].a, (bus::BindingEnd{"display", "temper"}));
  EXPECT_EQ(monitor->binds[0].b, (bus::BindingEnd{"compute", "display"}));
}

TEST(Cfg, DefineAndClientRoles) {
  ConfigFile file = parse_config(R"(
module m {
  define interface out pattern = {integer, float, string} ::
  client interface c pattern = {integer} accepts = {float} ::
}
)");
  const ModuleSpec* m = file.find_module("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->find_interface("out")->pattern, "iFs");
  EXPECT_EQ(m->find_interface("c")->role, bus::IfaceRole::kClient);
  EXPECT_EQ(m->find_interface("c")->reply_pattern, "F");
}

TEST(Cfg, UnknownAttributesAreCarried) {
  ConfigFile file = parse_config(R"(
module m { owner = "jp" :: machine = "vax" :: source = "./m.mc" :: }
)");
  const ModuleSpec* m = file.find_module("m");
  EXPECT_EQ(m->attributes.at("owner"), "jp");
  EXPECT_EQ(m->machine, "vax");
}

TEST(Cfg, CommentsAndSeparatorsAreFlexible) {
  ConfigFile file = parse_config(R"(
// line comment
# hash comment
module m {
  /* block
     comment */
  source = "./m.mc" ::
}
module n { source = "./n.mc" }
)");
  EXPECT_EQ(file.modules.size(), 2u);
}

TEST(Cfg, ReconfigPointWithoutVars) {
  ConfigFile file = parse_config(R"(
module m { reconfiguration point = {RP} :: }
)");
  ASSERT_EQ(file.modules[0].reconfig_points.size(), 1u);
  EXPECT_TRUE(file.modules[0].reconfig_points[0].vars.empty());
}

TEST(Cfg, MultipleReconfigPoints) {
  ConfigFile file = parse_config(R"(
module m {
  reconfiguration point = {R1} vars = {a} ::
  reconfiguration point = {R2} vars = {b, *p} ::
}
)");
  ASSERT_EQ(file.modules[0].reconfig_points.size(), 2u);
  EXPECT_EQ(file.modules[0].find_reconfig_point("R2")->vars[1].deref, true);
}

TEST(Cfg, InstanceAliasing) {
  ConfigFile file = parse_config(R"(
module worker { source = "./w.mc" :: }
application farm {
  instance worker as w1 on "vax" ::
  instance worker as w2 on "sparc" ::
  instance worker ::
  bind "w1 out" "w2 in" ::
}
)");
  const ApplicationSpec* farm = file.find_application("farm");
  ASSERT_NE(farm, nullptr);
  ASSERT_EQ(farm->instances.size(), 3u);
  EXPECT_EQ(farm->instances[0].instance_name(), "w1");
  EXPECT_EQ(farm->instances[0].module, "worker");
  EXPECT_EQ(farm->instances[1].instance_name(), "w2");
  EXPECT_EQ(farm->instances[2].instance_name(), "worker");  // default
  // Round trip preserves the alias.
  ConfigFile again = parse_config(to_text(*farm));
  EXPECT_EQ(again.applications[0].instances[0].name, "w1");
}

TEST(Cfg, ErrorsCarryLocations) {
  try {
    (void)parse_config("module m {\n  bogus stray\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.loc().line, 2u);
  }
}

TEST(Cfg, RejectsBadPatternType) {
  EXPECT_THROW(
      (void)parse_config("module m { use interface i pattern = {quux} :: }"),
      ParseError);
}

TEST(Cfg, RejectsMismatchedReplyClause) {
  // 'returns' belongs to servers, 'accepts' to clients.
  EXPECT_THROW((void)parse_config(
                   "module m { client interface c returns = {float} :: }"),
               ParseError);
  EXPECT_THROW((void)parse_config(
                   "module m { server interface s accepts = {float} :: }"),
               ParseError);
}

TEST(Cfg, RejectsBadBindString) {
  EXPECT_THROW((void)parse_config(R"(
application a { bind "onlyone" "m i" :: }
)"),
               ParseError);
}

TEST(Cfg, RejectsUnterminatedConstructs) {
  EXPECT_THROW((void)parse_config("module m {"), ParseError);
  EXPECT_THROW((void)parse_config("module m { source = \"x }"), ParseError);
  EXPECT_THROW((void)parse_config("/* never closed"), ParseError);
}

TEST(Cfg, RoundTripThroughText) {
  ConfigFile file = parse_config(app::samples::monitor_config_text());
  // Render each spec back to text and reparse; the result must agree.
  for (const auto& m : file.modules) {
    ConfigFile again = parse_config(to_text(m));
    ASSERT_EQ(again.modules.size(), 1u);
    EXPECT_EQ(again.modules[0].name, m.name);
    EXPECT_EQ(again.modules[0].interfaces, m.interfaces);
    EXPECT_EQ(again.modules[0].reconfig_points.size(),
              m.reconfig_points.size());
  }
  for (const auto& a : file.applications) {
    ConfigFile again = parse_config(to_text(a));
    ASSERT_EQ(again.applications.size(), 1u);
    EXPECT_EQ(again.applications[0].instances.size(), a.instances.size());
    EXPECT_EQ(again.applications[0].binds.size(), a.binds.size());
  }
}

}  // namespace
}  // namespace surgeon::cfg
