#include <gtest/gtest.h>

#include "vm/compiler.hpp"
#include "vm/machine.hpp"

namespace surgeon::vm {
namespace {

using support::VmError;

/// Compiles and runs a standalone program to completion; returns the machine.
std::unique_ptr<Machine> run_program(const std::string& src,
                                     net::Arch arch = net::arch_vax()) {
  auto prog = std::make_shared<CompiledProgram>(compile_source(src));
  auto m = std::make_unique<Machine>(*prog, arch);
  // Keep the program alive alongside the machine.
  static std::vector<std::shared_ptr<CompiledProgram>> keepalive;
  keepalive.push_back(prog);
  m->run(50'000'000);
  return m;
}

void expect_done(const Machine& m) {
  EXPECT_EQ(m.state(), RunState::kDone)
      << run_state_name(m.state()) << ": " << m.fault_message();
}

TEST(Vm, ArithmeticAndPrint) {
  auto m = run_program(R"(
void main() {
  int a; float b;
  a = (7 + 3) * 2 - 9 / 2;   // 20 - 4 = 16
  b = 7.0 / 2.0;
  print(a, b, 10 % 3, -a, !0, !5);
}
)");
  expect_done(*m);
  ASSERT_EQ(m->output().size(), 1u);
  EXPECT_EQ(m->output()[0], "16 3.5 1 -16 1 0");
}

TEST(Vm, NumericPromotionAndCasts) {
  auto m = run_program(R"(
void main() {
  float f; int i;
  f = 1;            // int -> float on assignment
  f = f + 1;        // promotion inside arithmetic
  i = (int)(f * 2.5);
  print(f, i);
}
)");
  expect_done(*m);
  EXPECT_EQ(m->output()[0], "2 5");
}

TEST(Vm, StringOperations) {
  auto m = run_program(R"(
void main() {
  string s;
  s = "ab" + "cd";
  print(s, s == "abcd", s != "abcd", s < "b", "zz" > "za");
}
)");
  expect_done(*m);
  EXPECT_EQ(m->output()[0], "abcd 1 0 1 1");
}

TEST(Vm, ControlFlowWhileIfGoto) {
  auto m = run_program(R"(
void main() {
  int i; int sum;
  i = 0; sum = 0;
  while (i < 10) {
    if (i % 2 == 0) { sum = sum + i; }
    else { sum = sum - 1; }
    i = i + 1;
  }
  goto skip;
  sum = 0;
skip:
  print(sum);
}
)");
  expect_done(*m);
  EXPECT_EQ(m->output()[0], "15");  // 0+2+4+6+8 - 5
}

TEST(Vm, ForLoopSemantics) {
  auto m = run_program(R"(
void main() {
  int sum;
  sum = 0;
  for (int i = 1; i <= 5; i = i + 1) { sum = sum + i; }
  print(sum);                     // 15
  for (sum = 0; sum < 7; sum = sum + 3) ;
  print(sum);                     // 9
  sum = 0;
  for (;;) {
    sum = sum + 1;
    if (sum >= 4) { break; }
  }
  print(sum);                     // 4
}
)");
  expect_done(*m);
  EXPECT_EQ(m->output(),
            (std::vector<std::string>{"15", "9", "4"}));
}

TEST(Vm, ContinueExecutesTheStep) {
  // The classic for/continue pitfall: continue must run the step, or the
  // loop never advances.
  auto m = run_program(R"(
void main() {
  int evens;
  evens = 0;
  for (int i = 0; i < 10; i = i + 1) {
    if (i % 2 == 1) { continue; }
    evens = evens + 1;
  }
  print(evens);
}
)");
  expect_done(*m);
  EXPECT_EQ(m->output()[0], "5");
}

TEST(Vm, ContinueInWhileRechecksCondition) {
  auto m = run_program(R"(
void main() {
  int i; int hits;
  i = 0; hits = 0;
  while (i < 10) {
    i = i + 1;
    if (i % 3 != 0) { continue; }
    hits = hits + 1;
  }
  print(i, hits);
}
)");
  expect_done(*m);
  EXPECT_EQ(m->output()[0], "10 3");
}

TEST(Vm, NestedLoopsBreakInnermostOnly) {
  auto m = run_program(R"(
void main() {
  int count;
  count = 0;
  for (int i = 0; i < 3; i = i + 1) {
    for (int j = 0; j < 10; j = j + 1) {
      if (j == 2) { break; }
      count = count + 1;
    }
  }
  print(count);
}
)");
  expect_done(*m);
  EXPECT_EQ(m->output()[0], "6");  // 3 outer x 2 inner
}

TEST(Vm, ShortCircuitEvaluation) {
  // The right operand of && / || must not evaluate when short-circuited;
  // here evaluating it would fault (division by zero).
  auto m = run_program(R"(
void main() {
  int z;
  z = 0;
  print(0 && 1 / z, 1 || 1 / z);
}
)");
  expect_done(*m);
  EXPECT_EQ(m->output()[0], "0 1");
}

TEST(Vm, RecursionComputesFactorial) {
  auto m = run_program(R"(
int fact(int n) {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
void main() { print(fact(10)); }
)");
  expect_done(*m);
  EXPECT_EQ(m->output()[0], "3628800");
}

TEST(Vm, PointerOutParamsThroughCalls) {
  auto m = run_program(R"(
void inner(float *rp) { *rp = *rp + 0.5; }
void outer(float *rp) { inner(rp); inner(rp); }
void main() {
  float x;
  x = 1.0;
  outer(&x);
  print(x);
}
)");
  expect_done(*m);
  EXPECT_EQ(m->output()[0], "2");
}

TEST(Vm, GlobalsSharedAcrossCalls) {
  auto m = run_program(R"(
int counter = 5;
void bump() { counter = counter + 1; }
void main() { bump(); bump(); print(counter); }
)");
  expect_done(*m);
  EXPECT_EQ(m->output()[0], "7");
  EXPECT_EQ(std::get<std::int64_t>(m->global("counter")), 7);
}

TEST(Vm, HeapAllocIndexFree) {
  auto m = run_program(R"(
void main() {
  int* v; int i; int sum;
  v = mh_alloc_int(5);
  i = 0;
  while (i < 5) { v[i] = i * i; i = i + 1; }
  sum = 0;
  i = 0;
  while (i < 5) { sum = sum + v[i]; i = i + 1; }
  print(sum, *v, v[4]);
  mh_free(v);
}
)");
  expect_done(*m);
  EXPECT_EQ(m->output()[0], "30 0 16");
  EXPECT_EQ(m->heap_stats().objects, 0u);
}

TEST(Vm, NullPointerComparisons) {
  auto m = run_program(R"(
void main() {
  int* p;
  print(p == null);
  p = mh_alloc_int(1);
  print(p == null, p != null);
  mh_free(p);
}
)");
  expect_done(*m);
  EXPECT_EQ(m->output()[0], "1");
  EXPECT_EQ(m->output()[1], "0 1");
}

struct FaultCase {
  const char* name;
  const char* source;
  const char* expect_substring;
};

class VmFaults : public ::testing::TestWithParam<FaultCase> {};

TEST_P(VmFaults, FaultsWithDiagnostic) {
  auto m = run_program(GetParam().source);
  EXPECT_EQ(m->state(), RunState::kFault) << GetParam().name;
  EXPECT_NE(m->fault_message().find(GetParam().expect_substring),
            std::string::npos)
      << "actual: " << m->fault_message();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, VmFaults,
    ::testing::Values(
        FaultCase{"div_zero", "void main() { int z; z = 0; print(1 / z); }",
                  "division by zero"},
        FaultCase{"mod_zero", "void main() { int z; z = 0; print(1 % z); }",
                  "modulo by zero"},
        FaultCase{"null_deref",
                  "void main() { int* p; print(*p); }",
                  "null pointer"},
        FaultCase{"null_store",
                  "void main() { int* p; *p = 1; }",
                  "null pointer"},
        FaultCase{"use_after_free",
                  "void main() { int* p; p = mh_alloc_int(1); mh_free(p); "
                  "print(*p); }",
                  "dangling heap pointer"},
        FaultCase{"double_free",
                  "void main() { int* p; p = mh_alloc_int(1); mh_free(p); "
                  "mh_free(p); }",
                  "double free"},
        FaultCase{"oob_index",
                  "void main() { int* p; p = mh_alloc_int(2); print(p[5]); }",
                  "out of bounds"},
        FaultCase{"negative_index",
                  "void main() { int* p; int i; i = -1; p = mh_alloc_int(2); "
                  "print(p[i]); }",
                  "negative pointer index"},
        FaultCase{"stack_overflow",
                  "void f() { f(); } void main() { f(); }",
                  "stack overflow"},
        FaultCase{"bus_builtin_standalone",
                  "void main() { int x; mh_read(\"a\", \"i\", &x); }",
                  "requires a software bus"},
        FaultCase{"restore_without_decode",
                  "void main() { int x; mh_restore(\"i\", &x); }",
                  "before mh_decode"},
        FaultCase{"random_bad_bound",
                  "void main() { print(random(0)); }",
                  "bound must be positive"},
        FaultCase{"alloc_negative",
                  "void main() { int* p; int n; n = -3; "
                  "p = mh_alloc_int(n); }",
                  "bad size"}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return info.param.name;
    });

TEST(Vm, FaultStateIsSticky) {
  auto m = run_program("void main() { int z; z = 0; print(1 / z); }");
  EXPECT_EQ(m->state(), RunState::kFault);
  auto r = m->step(100);
  EXPECT_EQ(r.state, RunState::kFault);
  EXPECT_EQ(r.instructions, 0u);
}

TEST(Vm, DanglingFrameRefFaults) {
  // A pointer to a local escapes via a global, and the frame dies: C would
  // silently corrupt memory; the VM faults at the dereference.
  auto m = run_program(R"(
int* gp;
void f() { int x; x = 3; gp = &x; }
void main() { f(); print(*gp); }
)");
  EXPECT_EQ(m->state(), RunState::kFault);
  EXPECT_NE(m->fault_message().find("activation record no longer exists"),
            std::string::npos);
}

TEST(Vm, SleepSuspendsAndResumes) {
  auto prog = std::make_shared<CompiledProgram>(compile_source(R"(
void main() { print("a"); sleep(3); print("b"); }
)"));
  Machine m(*prog, net::arch_vax());
  auto r = m.step(1000);
  EXPECT_EQ(r.state, RunState::kSleeping);
  EXPECT_EQ(r.sleep_us, 3'000'000u);
  EXPECT_EQ(m.output().size(), 1u);
  r = m.step(1000);
  EXPECT_EQ(r.state, RunState::kDone);
  EXPECT_EQ(m.output().size(), 2u);
}

TEST(Vm, StepBudgetIsHonored) {
  auto prog = std::make_shared<CompiledProgram>(compile_source(R"(
void main() { int i; i = 0; while (1) { i = i + 1; } }
)"));
  Machine m(*prog, net::arch_vax());
  auto r = m.step(1000);
  EXPECT_EQ(r.state, RunState::kRunnable);
  EXPECT_EQ(r.instructions, 1000u);
  EXPECT_EQ(m.instructions_executed(), 1000u);
}

TEST(Vm, SignalHandlerRunsAtStatementBoundary) {
  auto prog = std::make_shared<CompiledProgram>(compile_source(R"(
int hits = 0;
void handler() { hits = hits + 1; }
void main() {
  int i;
  mh_signal(handler);
  i = 0;
  while (i < 100) { i = i + 1; }
  print(hits);
}
)"));
  Machine m(*prog, net::arch_vax());
  (void)m.step(50);
  m.raise_signal();
  m.run(1'000'000);
  EXPECT_EQ(m.state(), RunState::kDone);
  EXPECT_EQ(m.output()[0], "1");
}

TEST(Vm, SignalWithoutHandlerIsHeldUntilRegistered) {
  auto prog = std::make_shared<CompiledProgram>(compile_source(R"(
int hits = 0;
void handler() { hits = hits + 1; }
void main() {
  int i;
  i = 0;
  while (i < 10) { i = i + 1; }   // signal raised here, no handler yet
  mh_signal(handler);
  i = 0;
  while (i < 10) { i = i + 1; }
  print(hits);
}
)"));
  Machine m(*prog, net::arch_vax());
  (void)m.step(20);
  m.raise_signal();
  m.run(1'000'000);
  EXPECT_EQ(m.state(), RunState::kDone);
  EXPECT_EQ(m.output()[0], "1");
}

TEST(Vm, CaptureEncodeStandalone) {
  auto m = run_program(R"(
void main() {
  int a; float b;
  a = 42; b = 2.5;
  mh_capture("iF", a, b);
  mh_capture("i", 7);
  mh_encode();
}
)");
  expect_done(*m);
  const auto& state = m->last_encoded_state();
  ASSERT_TRUE(state.has_value());
  ASSERT_EQ(state->frame_count(), 2u);
  EXPECT_EQ(state->frames()[0].values[0].as_int(), 42);
  EXPECT_DOUBLE_EQ(state->frames()[0].values[1].as_real(), 2.5);
  EXPECT_EQ(state->frames()[1].values[0].as_int(), 7);
}

TEST(Vm, DecodeRestoreStandalone) {
  auto prog = std::make_shared<CompiledProgram>(compile_source(R"(
void main() {
  int a; float b;
  mh_decode();
  mh_restore("iF", &a, &b);
  print(a, b);
}
)"));
  Machine m(*prog, net::arch_vax());
  ser::StateBuffer state;
  state.push_frame(
      ser::StateFrame{{ser::Value(std::int64_t{9}), ser::Value(1.25)}});
  m.inject_incoming_state(std::move(state));
  m.run(1'000'000);
  EXPECT_EQ(m.state(), RunState::kDone);
  EXPECT_EQ(m.output()[0], "9 1.25");
}

TEST(Vm, DecodeBlocksUntilStateArrives) {
  auto prog = std::make_shared<CompiledProgram>(compile_source(R"(
void main() { mh_decode(); print("resumed"); }
)"));
  Machine m(*prog, net::arch_vax());
  auto r = m.step(1000);
  EXPECT_EQ(r.state, RunState::kBlockedDecode);
  ser::StateBuffer state;
  m.inject_incoming_state(std::move(state));
  r = m.step(1000);
  EXPECT_EQ(r.state, RunState::kDone);
}

TEST(Vm, HeapSwizzleRoundTrip) {
  // Capture a linked pair of heap objects via 'p' format, restore in a
  // machine of the opposite architecture, and follow the pointers.
  auto prog1 = std::make_shared<CompiledProgram>(compile_source(R"(
void main() {
  int* head; int* tail;
  tail = mh_alloc_int(2);
  tail[0] = 30; tail[1] = 40;
  head = mh_alloc_int(2);
  head[0] = 20;
  mh_capture("pp", head, tail);
  mh_encode();
}
)"));
  Machine producer(*prog1, net::arch_vax());
  producer.run(1'000'000);
  ASSERT_EQ(producer.state(), RunState::kDone) << producer.fault_message();
  auto state = *producer.last_encoded_state();
  EXPECT_EQ(state.heap().size(), 2u);

  auto prog2 = std::make_shared<CompiledProgram>(compile_source(R"(
void main() {
  int* head; int* tail;
  mh_decode();
  mh_restore("pp", &head, &tail);
  print(head[0], tail[0], tail[1]);
}
)"));
  Machine consumer(*prog2, net::arch_sparc());
  consumer.inject_incoming_state(std::move(state));
  consumer.run(1'000'000);
  ASSERT_EQ(consumer.state(), RunState::kDone) << consumer.fault_message();
  EXPECT_EQ(consumer.output()[0], "20 30 40");
}

TEST(Vm, CaptureOfStackPointerFaults) {
  // Pointers into activation records are not expressible in the abstract
  // state (the paper's noted difficulty); the capture faults loudly rather
  // than producing a corrupt state.
  auto m = run_program(R"(
void main() {
  int x; int* p;
  p = &x;
  mh_capture("p", p);
}
)");
  EXPECT_EQ(m->state(), RunState::kFault);
  EXPECT_NE(m->fault_message().find("abstract state format"),
            std::string::npos);
}

TEST(Vm, RawFrameImageRoundTripsSameArch) {
  auto prog = std::make_shared<CompiledProgram>(compile_source(R"(
void deep(int n) { if (n > 0) { deep(n - 1); } sleep(1); print(n); }
void main() { deep(3); }
)"));
  Machine m(*prog, net::arch_vax());
  // Run until the innermost frame sleeps: 5 frames on the stack.
  while (m.state() != RunState::kSleeping) (void)m.step(1);
  EXPECT_EQ(m.stack_depth(), 5u);
  auto image = m.raw_frame_image();

  Machine clone(*prog, net::arch_vax());
  clone.restore_raw_frame_image(image);
  // Each restored frame still has its own sleep(1) ahead; keep stepping
  // through the sleeps until the program completes.
  for (int i = 0; i < 100 && clone.state() != RunState::kDone &&
                  clone.state() != RunState::kFault;
       ++i) {
    (void)clone.step(1'000'000);
  }
  EXPECT_EQ(clone.state(), RunState::kDone) << clone.fault_message();
  ASSERT_EQ(clone.output().size(), 4u);
  EXPECT_EQ(clone.output()[0], "0");
  EXPECT_EQ(clone.output()[3], "3");
}

TEST(Vm, RawFrameImageFailsAcrossArchitectures) {
  // The binary-copy baseline: a native frame image made on a little-endian
  // machine is rejected or garbled on a big-endian one. This negative
  // result is why the abstract state format exists (Section 1.2).
  auto prog = std::make_shared<CompiledProgram>(compile_source(R"(
void deep(int n) { if (n > 0) { deep(n - 1); } sleep(1); print(n); }
void main() { deep(3); }
)"));
  Machine m(*prog, net::arch_vax());
  while (m.state() != RunState::kSleeping) (void)m.step(1);
  auto image = m.raw_frame_image();

  Machine clone(*prog, net::arch_sparc());
  EXPECT_THROW(clone.restore_raw_frame_image(image), VmError);
}

TEST(Vm, CheckpointRollbackRestoresEverything) {
  auto prog = std::make_shared<CompiledProgram>(compile_source(R"(
int g = 0;
void main() {
  int i;
  int* h;
  h = mh_alloc_int(1);
  i = 0;
  while (i < 100) {
    g = g + 1;
    h[0] = h[0] + 2;
    i = i + 1;
  }
  print(g, h[0]);
}
)"));
  Machine m(*prog, net::arch_vax());
  (void)m.step(200);
  auto snap = m.checkpoint();
  auto g_at_snap = std::get<std::int64_t>(m.global("g"));
  (void)m.step(200);
  EXPECT_GT(std::get<std::int64_t>(m.global("g")), g_at_snap);
  m.rollback(*snap);
  EXPECT_EQ(std::get<std::int64_t>(m.global("g")), g_at_snap);
  m.run(10'000'000);
  EXPECT_EQ(m.state(), RunState::kDone);
  EXPECT_EQ(m.output()[0], "100 200");
  EXPECT_GT(Machine::snapshot_size(*snap), 0u);
}

TEST(Vm, DeterministicAcrossRuns) {
  const char* src = R"(
void main() {
  int i;
  i = 0;
  while (i < 10) { print(random(100)); i = i + 1; }
}
)";
  auto m1 = run_program(src);
  auto m2 = run_program(src);
  EXPECT_EQ(m1->output(), m2->output());
}

TEST(Vm, DumpStackShowsFramesAndSlots) {
  auto prog = std::make_shared<CompiledProgram>(compile_source(R"(
void inner(int depth) { sleep(1); }
void outer(int x) { inner(x + 1); }
void main() { outer(41); }
)"));
  Machine m(*prog, net::arch_vax());
  while (m.state() != RunState::kSleeping) (void)m.step(1);
  std::string dump = m.dump_stack();
  EXPECT_NE(dump.find("#0 inner"), std::string::npos) << dump;
  EXPECT_NE(dump.find("depth=42"), std::string::npos) << dump;
  EXPECT_NE(dump.find("outer"), std::string::npos);
  EXPECT_NE(dump.find("x=41"), std::string::npos);
  EXPECT_NE(dump.find("main"), std::string::npos);
}

TEST(Vm, DisassemblerCoversProgram) {
  auto prog = compile_source("void main() { int x; x = 1 + 2; print(x); }");
  std::string dis = prog.disassemble();
  EXPECT_NE(dis.find("main"), std::string::npos);
  EXPECT_NE(dis.find("push_const"), std::string::npos);
  EXPECT_NE(dis.find("store_slot"), std::string::npos);
  EXPECT_GT(prog.total_instructions(), 5u);
}

}  // namespace
}  // namespace surgeon::vm
