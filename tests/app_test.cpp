// Unit tests of the application runtime: module lifecycle, cooperative
// scheduling (slices, sleeps, blocking), fault reporting, instance naming,
// configuration loading, and virtual-time accounting.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"

namespace surgeon::app {
namespace {

using support::BusError;

std::unique_ptr<Runtime> two_machines(std::uint64_t seed = 1) {
  auto rt = std::make_unique<Runtime>(seed);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  return rt;
}

ModuleImage image_of(const std::string& src,
                     std::vector<bus::InterfaceSpec> ifaces = {}) {
  minic::Program prog = minic::parse_program(src);
  minic::analyze(prog);
  ModuleImage image;
  image.spec.name = "m";
  image.spec.interfaces = std::move(ifaces);
  image.program = std::make_shared<const vm::CompiledProgram>(
      vm::compile(prog));
  return image;
}

TEST(Runtime, ModuleLifecycle) {
  auto rt = two_machines();
  rt->install_module("m", image_of("void main() { print(1); }"), "vax",
                     "new");
  EXPECT_TRUE(rt->bus().has_module("m"));
  EXPECT_FALSE(rt->module_running("m"));
  rt->start_module("m");
  EXPECT_TRUE(rt->module_running("m"));
  rt->run_until_idle();
  EXPECT_TRUE(rt->module_finished("m"));
  rt->remove_module("m");
  EXPECT_FALSE(rt->bus().has_module("m"));
  EXPECT_EQ(rt->machine_of("m"), nullptr);
}

TEST(Runtime, LifecycleErrors) {
  auto rt = two_machines();
  EXPECT_THROW(rt->start_module("nosuch"), BusError);
  rt->install_module("m", image_of("void main() { }"), "vax", "new");
  rt->start_module("m");
  EXPECT_THROW(rt->start_module("m"), BusError);  // already running
  EXPECT_THROW(
      rt->install_module("m2", image_of("void main() { }"), "", "new"),
      BusError);  // no machine anywhere
}

TEST(Runtime, MachinePlacementPrecedence) {
  auto rt = two_machines();
  ModuleImage image = image_of("void main() { }");
  image.spec.machine = "sparc";
  rt->install_module("a", image, "", "new");       // spec's machine
  rt->install_module("b", image, "vax", "new");    // override wins
  EXPECT_EQ(rt->bus().module_info("a").machine, "sparc");
  EXPECT_EQ(rt->bus().module_info("b").machine, "vax");
}

TEST(Runtime, SleepAdvancesVirtualTime) {
  auto rt = two_machines();
  rt->install_module(
      "m", image_of("void main() { sleep(3); sleep(2); print(clock()); }"),
      "vax", "new");
  rt->start_module("m");
  rt->run_until_idle();
  EXPECT_TRUE(rt->module_finished("m"));
  EXPECT_EQ(rt->now(), 5'000'000u);
  EXPECT_EQ(rt->machine_of("m")->output()[0], "5000000");
}

TEST(Runtime, SleepingModuleIgnoresMessageWakeups) {
  // A message arriving mid-sleep must not cut the sleep short.
  auto rt = two_machines();
  std::vector<bus::InterfaceSpec> sleeper_if = {
      bus::InterfaceSpec{"in", bus::IfaceRole::kUse, "i", ""}};
  ModuleImage sleeper = image_of(R"(
void main() {
  int x;
  sleep(10);
  print("woke", clock());
  mh_read("in", "i", &x);
  print("read", x);
}
)",
                                 sleeper_if);
  sleeper.spec.name = "sleeper";
  rt->install_module("sleeper", std::move(sleeper), "vax", "new");
  rt->start_module("sleeper");

  std::vector<bus::InterfaceSpec> sender_if = {
      bus::InterfaceSpec{"out", bus::IfaceRole::kDefine, "i", ""}};
  ModuleImage sender = image_of(R"(
void main() {
  sleep(1);
  mh_write("out", "i", 7);
}
)",
                                sender_if);
  sender.spec.name = "sender";
  rt->install_module("sender", std::move(sender), "vax", "new");
  rt->start_module("sender");
  rt->bus().add_binding({"sender", "out"}, {"sleeper", "in"});

  rt->run_until_idle();
  rt->check_faults();
  const auto& out = rt->machine_of("sleeper")->output();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "woke 10000000");  // the full 10s elapsed
  EXPECT_EQ(out[1], "read 7");
}

TEST(Runtime, FaultsAreReportedNotThrown) {
  auto rt = two_machines();
  rt->install_module(
      "m", image_of("void main() { int z; z = 0; print(1 / z); }"), "vax",
      "new");
  rt->start_module("m");
  rt->run_until_idle();
  ASSERT_TRUE(rt->first_fault().has_value());
  EXPECT_EQ(rt->first_fault()->first, "m");
  EXPECT_NE(rt->first_fault()->second.find("division by zero"),
            std::string::npos);
  EXPECT_THROW(rt->check_faults(), BusError);
}

TEST(Runtime, FreshInstanceNamesNeverCollide) {
  auto rt = two_machines();
  std::string a = rt->fresh_instance_name("compute");
  std::string b = rt->fresh_instance_name("compute");
  std::string c = rt->fresh_instance_name(a);  // from a previous clone name
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.substr(0, 8), "compute@");
  EXPECT_EQ(c.substr(0, 8), "compute@");
}

TEST(Runtime, LoadApplicationWiresEverything) {
  auto rt = two_machines();
  cfg::ConfigFile config =
      cfg::parse_config(samples::monitor_config_text());
  rt->load_application(config, "monitor", samples::monitor_source_of);
  EXPECT_TRUE(rt->module_running("display"));
  EXPECT_TRUE(rt->module_running("compute"));
  EXPECT_TRUE(rt->module_running("sensor"));
  EXPECT_EQ(rt->bus().bindings().size(), 2u);
  EXPECT_EQ(rt->bus().module_info("sensor").machine, "sparc");
  // The compute module was transformed (it declares a reconfiguration
  // point): its program defines the mh_ machinery.
  const ModuleImage* image = rt->image_of("compute");
  ASSERT_NE(image, nullptr);
  bool has_flag = false;
  for (const auto& g : image->program->globals) {
    if (g.name == "mh_reconfig") has_flag = true;
  }
  EXPECT_TRUE(has_flag);
}

TEST(Runtime, LoadApplicationWithAliasedInstances) {
  // Two instances of the same module specification, with distinct names
  // and placements, each independently reconfigurable.
  auto rt = two_machines();
  cfg::ConfigFile config = cfg::parse_config(R"(
module echo {
  server interface req pattern = {integer} returns = {integer} ::
  reconfiguration point = {RP} ::
}
module driver {
  client interface a pattern = {integer} accepts = {integer} ::
  client interface b pattern = {integer} accepts = {integer} ::
}
application farm {
  instance echo as e1 on "vax" ::
  instance echo as e2 on "sparc" ::
  instance driver on "vax" ::
  bind "driver a" "e1 req" ::
  bind "driver b" "e2 req" ::
}
)");
  rt->load_application(config, "farm", [](const cfg::ModuleSpec& spec) {
    if (spec.name == "echo") {
      return std::string(R"(
int served = 0;
void main() {
  int x;
  while (1) {
    mh_read("req", "i", &x);
RP:
    served = served + 1;
    mh_write("req", "i", x * 2);
  }
}
)");
    }
    return std::string(R"(
void main() {
  int i; int ra; int rb;
  i = 1;
  while (i <= 5) {
    mh_write("a", "i", i);
    mh_write("b", "i", i * 10);
    mh_read("a", "i", &ra);
    mh_read("b", "i", &rb);
    print(ra, rb);
    i = i + 1;
  }
  print("driver-done");
}
)");
  });
  EXPECT_TRUE(rt->module_running("e1"));
  EXPECT_TRUE(rt->module_running("e2"));
  EXPECT_EQ(rt->bus().module_info("e2").machine, "sparc");
  ASSERT_TRUE(rt->run_until(
      [&] { return rt->module_finished("driver"); }, 10'000'000));
  rt->check_faults();
  const auto& out = rt->machine_of("driver")->output();
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], "2 20");
  EXPECT_EQ(out[4], "10 100");
  // Each instance served exactly its own stream.
  EXPECT_EQ(std::get<std::int64_t>(rt->machine_of("e1")->global("served")),
            5);
  EXPECT_EQ(std::get<std::int64_t>(rt->machine_of("e2")->global("served")),
            5);
}

TEST(Runtime, LoadApplicationErrors) {
  auto rt = two_machines();
  cfg::ConfigFile config =
      cfg::parse_config(samples::monitor_config_text());
  EXPECT_THROW(rt->load_application(config, "nosuch",
                                    samples::monitor_source_of),
               BusError);
  cfg::ConfigFile bad = cfg::parse_config(R"(
application broken { instance ghost on "vax" :: }
)");
  EXPECT_THROW(
      rt->load_application(bad, "broken", samples::monitor_source_of),
      BusError);
}

TEST(Runtime, LoadsTheOnDiskMonitorApplication) {
  // The shipped examples/apps/monitor files (what mh_run consumes) load,
  // run, and reconfigure exactly like the embedded samples.
  namespace fs = std::filesystem;
  fs::path base = fs::path(SURGEON_APPS_DIR) / "monitor";
  auto read_file = [](const fs::path& p) {
    std::ifstream in(p);
    EXPECT_TRUE(in.good()) << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  auto rt = two_machines();
  cfg::ConfigFile config = cfg::parse_config(read_file(base / "monitor.cfg"));
  rt->load_application(config, "monitor", [&](const cfg::ModuleSpec& spec) {
    return read_file(base / spec.source);
  });
  rt->run_for(10'000'000);
  rt->check_faults();
  EXPECT_GE(rt->machine_of("display")->output().size(), 2u);
}

TEST(Runtime, RunUntilStopsWhenIdle) {
  auto rt = two_machines();
  bool result = rt->run_until([] { return false; }, 1000);
  EXPECT_FALSE(result);  // idle immediately, predicate still false
}

TEST(Runtime, InstructionCostChargesVirtualTime) {
  auto rt = two_machines();
  rt->set_instruction_cost_ns(1000);  // 1us per instruction
  rt->install_module("m", image_of(R"(
void main() {
  int i;
  i = 0;
  while (i < 100) { i = i + 1; }
}
)"),
                     "vax", "new");
  rt->start_module("m");
  rt->run_until_idle();
  // ~5 instructions per loop iteration at 1us each: several hundred us.
  EXPECT_GT(rt->now(), 100u);
  EXPECT_EQ(rt->now(),
            rt->machine_of("m")->instructions_executed() * 1000 / 1000);
}

TEST(Runtime, SliceBoundsInterleaving) {
  // Two compute-bound modules must interleave: with a small slice neither
  // can monopolize the scheduler.
  auto rt = two_machines();
  rt->set_slice(100);
  const char* src = R"(
void main() {
  int i;
  i = 0;
  while (i < 2000) { i = i + 1; }
  print(clock());
}
)";
  ModuleImage a = image_of(src);
  ModuleImage b = image_of(src);
  rt->install_module("a", std::move(a), "vax", "new");
  rt->install_module("b", std::move(b), "sparc", "new");
  rt->start_module("a");
  rt->start_module("b");
  // Run exactly one scheduling round: both must have progressed.
  ASSERT_TRUE(rt->step());
  EXPECT_EQ(rt->machine_of("a")->instructions_executed(), 100u);
  EXPECT_EQ(rt->machine_of("b")->instructions_executed(), 100u);
  rt->run_until_idle();
  EXPECT_TRUE(rt->module_finished("a"));
  EXPECT_TRUE(rt->module_finished("b"));
}

TEST(Runtime, StopModuleLeavesBusRegistration) {
  auto rt = two_machines();
  rt->install_module("m", image_of("void main() { sleep(100); }"), "vax",
                     "new");
  rt->start_module("m");
  (void)rt->step();
  rt->stop_module("m");
  EXPECT_TRUE(rt->bus().has_module("m"));  // messages can still queue
  EXPECT_FALSE(rt->module_running("m"));
  // And it can be started again (fresh VM, fresh state).
  rt->start_module("m");
  EXPECT_TRUE(rt->module_running("m"));
}

}  // namespace
}  // namespace surgeon::app
